"""Shared benchmark fixtures.

Simulation-driven benchmarks (Figs 8-13, Table 5) run on a reduced grid
(three rates, 0.1 s horizon) so `pytest benchmarks/ --benchmark-only`
completes in minutes while still regenerating every artifact and
asserting its qualitative claims. Run the `repro.experiments.*` modules
directly for the full-resolution sweeps.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "full_fleet: minutes-long full-size fleet benchmark; runs only "
        "under --benchmark-only (i.e. via `repro bench cluster_sharded`)",
    )


def pytest_collection_modifyitems(config, items):
    # Plain `pytest` collects benchmarks/ alongside tests/ — the reduced
    # grids are cheap enough to ride along, but the full-size fleet
    # points take minutes each and must stay an explicit opt-in.
    if config.getoption("--benchmark-only", False):
        return
    skip = pytest.mark.skip(
        reason="full-size fleet benchmark: run via `repro bench cluster_sharded`"
    )
    for item in items:
        if item.get_closest_marker("full_fleet"):
            item.add_marker(skip)


#: Reduced Memcached grid shared by the figure benchmarks.
BENCH_RATES_KQPS = [10, 100, 400]
BENCH_HORIZON = 0.1
BENCH_SEED = 42


@pytest.fixture(scope="session", autouse=True)
def _warm_shared_runs():
    """Pre-warm the memoised simulation points shared across benchmarks
    so each benchmark measures its own work, not its neighbours'."""
    yield


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a simulation-scale function with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
