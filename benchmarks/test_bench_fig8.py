"""Benchmark regenerating Fig 8 (Memcached vs baseline).

Asserts the panel shapes: declining savings with load, < ~1% server-side
worst-case degradation, negligible end-to-end impact.
"""

import pytest

from benchmarks.conftest import BENCH_HORIZON, BENCH_RATES_KQPS, BENCH_SEED, run_once
from repro.experiments import fig8
from repro.experiments.common import clear_cache


def test_bench_fig8(benchmark):
    clear_cache()
    points = run_once(
        benchmark,
        fig8.run,
        rates_kqps=BENCH_RATES_KQPS,
        horizon=BENCH_HORIZON,
        seed=BENCH_SEED,
        with_scalability=False,
    )
    # Panel (a): load pushes residency toward C0/C1.
    assert points[-1].residency.get("C0", 0) > points[0].residency.get("C0", 0)
    # Panel (b): savings decline with load and stay positive.
    assert points[0].power_reduction > points[-1].power_reduction > 0.05
    # Panel (c): worst case bounds expected case; e2e is negligible.
    for p in points:
        assert p.expected_server_degradation <= p.worst_case_server_degradation + 1e-9
        assert p.worst_case_e2e_degradation < 0.005
        assert p.worst_case_server_degradation < 0.02
