"""Benchmark regenerating Fig 11 (idle states x Turbo interaction).

Asserts the Sec 7.3 observations: C6A sustains Turbo grants longer than
the C1-parked configuration and achieves the best average latency at
high load.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import fig11
from repro.experiments.common import clear_cache

#: Fig 11 needs high load and enough time for the turbo tank to deplete.
RATES = [10, 300, 500]
HORIZON = 0.4


def test_bench_fig11(benchmark):
    clear_cache()
    sweep = run_once(
        benchmark, fig11.run, rates_kqps=RATES, horizon=HORIZON, seed=BENCH_SEED
    )
    high = len(RATES) - 1
    # C6A sustains turbo grants at least as well everywhere, strictly
    # better at high load.
    c6a_grants = sweep.turbo_grant_rates("T_C6A_No_C6_No_C1E")
    c1_grants = sweep.turbo_grant_rates("T_No_C6_No_C1E")
    assert all(a >= b - 1e-9 for a, b in zip(c6a_grants, c1_grants))
    assert c6a_grants[high] > c1_grants[high]
    # And the best average latency of the Turbo configs at high load.
    c6a_lat = sweep.avg_latency_us("T_C6A_No_C6_No_C1E")[high]
    for other in ("T_No_C6", "T_No_C6_No_C1E"):
        assert c6a_lat <= sweep.avg_latency_us(other)[high] + 0.1
