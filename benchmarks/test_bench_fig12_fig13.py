"""Benchmarks regenerating Fig 12 (MySQL) and Fig 13 (Kafka).

Asserts the Sec 7.4 claims: C6-heavy baselines, latency gains from
disabling C6 at low/mid rates, and large C6A power recovery.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import fig12, fig13
from repro.experiments.common import clear_cache


def test_bench_fig12_mysql(benchmark):
    clear_cache()
    points = run_once(benchmark, fig12.run, horizon=1.0, seed=BENCH_SEED)
    by_label = {p.label: p for p in points}
    # Baseline holds >= 40% C6 at every rate.
    for p in points:
        assert p.baseline_residency.get("C6", 0.0) >= 0.4
    # Disabling C6 helps latency at low/mid rates.
    assert by_label["low"].avg_latency_reduction > 0.0
    assert by_label["mid"].avg_latency_reduction > 0.0
    # C6A recovers large power vs the C6-disabled configuration.
    for p in points:
        assert p.aw_power_reduction > 0.2


def test_bench_fig13_kafka(benchmark):
    points = run_once(benchmark, fig13.run, horizon=0.5, seed=BENCH_SEED)
    by_label = {p.label: p for p in points}
    # Low rate: > 60% C6; high rate: C6 never entered.
    assert by_label["low"].baseline_residency.get("C6", 0.0) > 0.6
    assert by_label["high"].baseline_residency.get("C6", 0.0) < 0.1
    # High rate: no latency gain from disabling C6 (it wasn't used).
    assert abs(by_label["high"].avg_latency_reduction) < 0.02
    # C6A saves heavily at both rates.
    for p in points:
        assert p.aw_power_reduction > 0.3
