"""Benchmarks regenerating Tables 1-4 and the Sec 2 motivation analysis.

These are analytic (no simulation), so they run at full benchmark
resolution and double as regression checks on the derived numbers.
"""

import pytest

from repro.experiments import latency_breakdown, motivation, table1, table2, table3, table4


def test_bench_table1(benchmark):
    rows = benchmark(table1.run)
    names = [row[0] for row in rows]
    assert "C6A (P1)" in names and "C6AE (Pn)" in names
    # C6A shares C1's target residency (its ~100 ns of extra hardware
    # latency shows as 2.1us vs 2.0us in the transition column).
    by_name = {row[0]: row for row in rows}
    assert by_name["C6A (P1)"][2] == by_name["C1 (P1)"][2]


def test_bench_table2(benchmark):
    rows = benchmark(table2.run)
    assert len(rows) == 6
    by_name = {row[0]: row for row in rows}
    assert by_name["C6A"][2] == "on"       # PLL stays on
    assert by_name["C6"][2] == "off"


def test_bench_table3(benchmark):
    breakdown = benchmark(table3.run)
    low, high = breakdown.total_power_range("C6A")
    assert low == pytest.approx(0.290, rel=0.03)
    assert high == pytest.approx(0.315, rel=0.03)
    low_e, high_e = breakdown.total_power_range("C6AE")
    assert low_e == pytest.approx(0.227, rel=0.03)
    assert high_e == pytest.approx(0.243, rel=0.03)


def test_bench_table4(benchmark):
    rows = benchmark(table4.run)
    aw = rows[-1]
    assert aw[0] == "AW (this work)"
    wake_ns = float(aw[4].strip("~ ns"))
    assert wake_ns < 70.0


def test_bench_motivation(benchmark):
    rows = benchmark(motivation.run)
    fractions = [savings for _, _, savings in rows]
    assert fractions[0] == pytest.approx(0.23, abs=0.01)
    assert fractions[1] == pytest.approx(0.41, abs=0.01)
    assert fractions[2] == pytest.approx(0.55, abs=0.01)


def test_bench_latency_breakdown(benchmark):
    report = benchmark(latency_breakdown.run)
    assert report.c6_round_trip == pytest.approx(133e-6, rel=0.01)
    assert report.c6a_round_trip < 100e-9
    assert report.speedup >= 500  # three orders of magnitude
