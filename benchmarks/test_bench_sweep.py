"""Benchmarks for the sweep runner: serial vs process-pool execution.

Not a paper artifact — tracks the orchestration overhead of the scenario
layer (spec dispatch, memoisation, pool fan-out) so regressions in the
sweep subsystem are visible alongside the engine benchmarks.
"""

import pytest

from repro.sweep import ScenarioGrid, SweepRunner

#: A small but non-trivial grid: 2 configs x 3 rates, ~7 ms of simulated
#: time per point, sized so pool spin-up does not dwarf the work.
GRID = ScenarioGrid.product(
    configs=["baseline", "AW"],
    qps=[20_000, 60_000, 100_000],
    horizons=[0.02],
    seeds=[7],
)


def test_bench_sweep_serial(benchmark):
    def run_cold():
        return SweepRunner(cache={}).run_grid(GRID)

    results = benchmark.pedantic(run_cold, rounds=2, iterations=1)
    assert len(results) == len(GRID)
    assert all(r.completed > 0 for r in results)


def test_bench_sweep_process_pool(benchmark):
    def run_cold():
        return SweepRunner(executor="process", jobs=4, cache={}).run_grid(GRID)

    results = benchmark.pedantic(run_cold, rounds=2, iterations=1)
    assert len(results) == len(GRID)
    assert all(r.completed > 0 for r in results)


def test_bench_sweep_cache_hits(benchmark):
    cache = {}
    runner = SweepRunner(cache=cache)
    runner.run_grid(GRID)  # warm

    def run_warm():
        return runner.run_grid(GRID)

    results = benchmark(run_warm)
    assert len(results) == len(GRID)


def test_bench_sweep_store_hits(benchmark, tmp_path):
    """Cost of serving a whole grid from the persistent store (sqlite
    read + exact result deserialization), with a cold memo each round."""
    from repro.store import ResultStore

    store = ResultStore(tmp_path, salt="bench")
    SweepRunner(cache={}, store=store).run_grid(GRID)  # fill the store

    def run_from_store():
        return SweepRunner(cache={}, store=store).run_grid(GRID)

    results = benchmark(run_from_store)
    assert len(results) == len(GRID)
    assert all(r.completed > 0 for r in results)


def test_parallel_results_match_serial():
    serial = SweepRunner(cache={}).run_grid(GRID)
    parallel = SweepRunner(executor="process", jobs=4, cache={}).run_grid(GRID)
    for s, p in zip(serial, parallel):
        assert s.avg_core_power == pytest.approx(p.avg_core_power, abs=0.0)
        assert s.completed == p.completed
