"""Observability overhead benchmarks.

The telemetry probes must be free when disarmed: with ``telemetry_hz``
unset the engine runs its plain event loop and pays nothing beyond one
branch at run start. These benchmarks pin that down on the same
100 KQPS server-node scenario as ``test_bench_server_node_100k_qps``:

- ``probes_off`` is that scenario verbatim (telemetry unset) — gated
  against the committed baseline like any other suite, so a probes
  regression fails ``repro bench obs_overhead``;
- ``probes_on_10hz`` arms the sampler at 10 samples per simulated
  second, the report-typical rate; it is committed to the baseline as a
  trajectory number; the in-process 1.5x bound lives in
  ``tests/test_obs_timeline.py`` (it runs under plain pytest, which
  ``--benchmark-only`` would skip here).
"""

from repro.server import named_configuration, simulate
from repro.workloads import memcached_workload


def _run_node(telemetry_hz=None):
    return simulate(
        memcached_workload(), named_configuration("baseline"),
        qps=100_000, horizon=0.05, seed=1, telemetry_hz=telemetry_hz,
    )


def test_bench_obs_probes_off(benchmark):
    """Baseline: telemetry disarmed — must match the plain node run."""
    result = benchmark.pedantic(_run_node, rounds=3, iterations=1)
    assert result.completed > 3_000
    assert result.timeline is None


def test_bench_obs_probes_on_10hz(benchmark):
    """Sampler armed at 10 Hz simulated: bounded, visible overhead."""
    result = benchmark.pedantic(
        _run_node, args=(10.0,), rounds=3, iterations=1
    )
    assert result.completed > 3_000
    assert result.timeline is not None
    assert result.timeline["hz"] == 10.0


