"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these track the performance of the event engine
and server node so regressions in the substrate are visible.
"""

import pytest

from repro.server import named_configuration, simulate
from repro.simkit import Simulator
from repro.workloads import memcached_workload


def test_bench_event_engine_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1e-6, tick)

        sim.schedule(1e-6, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_bench_server_node_100k_qps(benchmark):
    def run_node():
        return simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=100_000, horizon=0.05, seed=1,
        )

    result = benchmark.pedantic(run_node, rounds=2, iterations=1)
    assert result.completed > 3_000


def test_bench_streaming_arrival_heap(benchmark):
    """Streaming arrivals keep the heap O(cores + in-flight), not O(qps*horizon)."""
    from repro.server import ServerNode

    def run_node():
        node = ServerNode(
            memcached_workload(), named_configuration("baseline"),
            qps=200_000, horizon=0.05, seed=1,
        )
        node.run()
        return node.sim.peak_pending_events

    peak = benchmark.pedantic(run_node, rounds=2, iterations=1)
    # 200 KQPS x 0.05 s = 10 000 arrivals; eager scheduling pinned them all.
    assert peak < 1_000


def test_bench_server_node_40_cores(benchmark):
    """Many-core scaling: with O(1) incremental power accounting, 4x the
    cores at 4x the rate costs ~4x the events — not the 16x of the old
    per-event O(cores) package-power re-sum."""

    def run_node():
        return simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=400_000, cores=40, horizon=0.02, seed=1,
        )

    result = benchmark.pedantic(run_node, rounds=2, iterations=1)
    assert result.completed > 5_000


def test_bench_aw_design_build(benchmark):
    from repro.core import AgileWattsDesign

    def build():
        design = AgileWattsDesign()
        return design.breakdown

    breakdown = benchmark(build)
    assert breakdown.c6a_power == pytest.approx(0.3, rel=0.05)
