"""Benchmarks for sharded cluster execution: the fleet-scale path.

Tracks the tentpole win of partitioned/sharded execution over the classic
shared-simulator cluster at fleet scale: a 1000-node random-balancer
point at 25 MQPS x 0.4 s (10^7 requests, sketch-backed latency). Three
views of the same point:

- ``classic``   — the shared-simulator :class:`Cluster` (one heap, one
  O(nodes) balancer scan per arrival): the single-process comparator.
- ``partitioned`` — per-node independent simulation with exact arrival
  thinning and an exact merge, in-process.
- ``sharded_s4``  — the same node ranges over a 4-process pool
  (bit-identical result; adds real parallelism on multicore hosts).

The full-size point takes minutes per round (that is the point) and is
benchmarked cold with one round. ``REPRO_BENCH_QUICK=1`` switches to a
100-node scaled replica under *different benchmark names*, so CI's quick
numbers never gate against the committed full-size floors (unbaselined /
missing entries are informational in the comparator).
"""

import os

import pytest

from repro.cluster import Cluster
from repro.cluster.sharding import execute_partitioned, run_sharded
from repro.sweep import ScenarioSpec

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

_skip_when_quick = pytest.mark.skipif(
    QUICK, reason="REPRO_BENCH_QUICK set: full-size fleet bench skipped"
)


def full_size(fn):
    """Full-size points additionally carry the ``full_fleet`` marker:
    plain ``pytest`` collects this directory too, and a plain run must
    not absorb ~18 minutes of fleet benchmarks (the benchmarks/
    conftest skips ``full_fleet`` unless ``--benchmark-only`` is set,
    which `repro bench` always passes)."""
    return pytest.mark.full_fleet(_skip_when_quick(fn))


quick_size = pytest.mark.skipif(
    not QUICK, reason="quick replica only runs with REPRO_BENCH_QUICK=1"
)

#: 25 KQPS per 4-core node — the memcached mid-load operating point.
PER_NODE_QPS = 25_000.0


def _fleet_spec(nodes: int, horizon: float) -> ScenarioSpec:
    return ScenarioSpec(
        workload="memcached", config="baseline",
        qps=PER_NODE_QPS * nodes, nodes=nodes, cores=4,
        horizon=horizon, seed=7, balancer="random", sketch_error=0.01,
    )


#: The acceptance point: 1000 nodes x 25 KQPS x 0.4 s = 10^7 requests.
FULL_SPEC = _fleet_spec(nodes=1000, horizon=0.4)

#: CI replica: 100 nodes x 25 KQPS x 0.02 s = 5 x 10^4 requests.
QUICK_SPEC = _fleet_spec(nodes=100, horizon=0.02)


def _run_classic(spec: ScenarioSpec):
    """The pre-sharding execution: every node on one shared simulator."""
    cluster = Cluster(
        workload_factory=spec.build_workload,
        configuration=spec.build_configuration(),
        qps=spec.qps, nodes=spec.nodes, cores=spec.cores,
        horizon=spec.horizon, seed=spec.seed, balancer=spec.balancer,
        fanout=spec.fanout, snoops_enabled=spec.snoops,
        governor_factory=spec.governor_factory(),
        sketch_error=spec.sketch_error,
    )
    return cluster.run()


def _check(spec: ScenarioSpec, result) -> None:
    assert result.completed > 0
    assert len(result.node_detail) == spec.nodes
    # The sketch keeps the latency tracker at O(bins), not O(requests):
    # the memory story that lets the 10^7-request point fit flat.
    assert result.server_latency.sketch.num_bins <= 2048
    assert result.server_latency.count == result.completed


@full_size
def test_bench_fleet_1000n_classic_shared_sim(benchmark):
    result = benchmark.pedantic(
        lambda: _run_classic(FULL_SPEC), rounds=1, iterations=1
    )
    _check(FULL_SPEC, result)


@full_size
def test_bench_fleet_1000n_partitioned(benchmark):
    result = benchmark.pedantic(
        lambda: execute_partitioned(FULL_SPEC), rounds=1, iterations=1
    )
    _check(FULL_SPEC, result)


@full_size
def test_bench_fleet_1000n_sharded_s4(benchmark):
    result = benchmark.pedantic(
        lambda: run_sharded(FULL_SPEC, shards=4), rounds=1, iterations=1
    )
    _check(FULL_SPEC, result)


@quick_size
def test_bench_fleet_quick_100n_classic_shared_sim(benchmark):
    result = benchmark.pedantic(
        lambda: _run_classic(QUICK_SPEC), rounds=1, iterations=1
    )
    _check(QUICK_SPEC, result)


@quick_size
def test_bench_fleet_quick_100n_partitioned(benchmark):
    result = benchmark.pedantic(
        lambda: execute_partitioned(QUICK_SPEC), rounds=1, iterations=1
    )
    _check(QUICK_SPEC, result)


@quick_size
def test_bench_fleet_quick_100n_sharded_s4(benchmark):
    result = benchmark.pedantic(
        lambda: run_sharded(QUICK_SPEC, shards=4), rounds=1, iterations=1
    )
    _check(QUICK_SPEC, result)
