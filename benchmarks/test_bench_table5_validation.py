"""Benchmarks regenerating Table 5 (cost savings) and the Sec 6.3 / 7.5
analytical artifacts."""

import pytest

from benchmarks.conftest import BENCH_HORIZON, BENCH_RATES_KQPS, BENCH_SEED, run_once
from repro.experiments import snoop, table5, validation
from repro.experiments.common import clear_cache


def test_bench_table5(benchmark):
    clear_cache()
    savings = run_once(
        benchmark, table5.run,
        rates_kqps=BENCH_RATES_KQPS, horizon=BENCH_HORIZON, seed=BENCH_SEED,
    )
    # Positive savings at every rate, same order of magnitude as the
    # paper's $0.33-0.59M band.
    assert all(0.1 <= v <= 3.0 for v in savings.values())


def test_bench_validation(benchmark):
    results = benchmark(validation.run)
    accuracies = {r.workload: r.accuracy_percent for r in results}
    assert accuracies["SPECpower"] == pytest.approx(96.1, abs=0.3)
    assert all(a >= 94.0 for a in accuracies.values())


def test_bench_snoop(benchmark):
    report = benchmark(snoop.run)
    assert report.bounds.savings_no_snoops == pytest.approx(0.79, abs=0.01)
    assert report.bounds.savings_full_snoops == pytest.approx(0.68, abs=0.01)
    assert report.bounds.savings_loss == pytest.approx(0.11, abs=0.01)
