"""Benchmarks for the extension artifacts: ablation, sensitivity,
governor study and energy proportionality."""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import ablation, governor_study, proportionality, sensitivity
from repro.experiments.common import clear_cache


def test_bench_ablation(benchmark):
    variants = benchmark(ablation.run)
    full = variants[0]
    # Each single-idea ablation lands in the microsecond class.
    for variant in variants[1:4]:
        assert variant.round_trip > 1e-6
    assert full.round_trip < 100e-9


def test_bench_sensitivity(benchmark):
    entries = benchmark(sensitivity.run)
    # Robustness: savings stay double-digit under every perturbation.
    for entry in entries[:-1]:  # model constants
        assert entry.savings_low > 0.10
        assert entry.savings_high > 0.10
    # The workload lever dwarfs every model constant.
    assert entries[-1].swing > max(e.swing for e in entries[:-1])


def test_bench_governor_study(benchmark):
    clear_cache()
    points = run_once(
        benchmark, governor_study.run, qps=80_000, horizon=0.08, seed=BENCH_SEED
    )
    aw_menu = next(
        p for p in points if p.config == "NT_AW" and p.governor == "menu"
    ).result
    legacy_oracle = next(
        p for p in points if p.config == "NT_Baseline" and p.governor == "oracle"
    ).result
    # The hierarchy, not the predictor, is the bottleneck.
    assert aw_menu.avg_core_power < legacy_oracle.avg_core_power


def test_bench_proportionality(benchmark):
    clear_cache()
    comparison = run_once(
        benchmark, proportionality.run,
        rates_kqps=[10, 100, 400], horizon=0.1, seed=BENCH_SEED,
    )
    assert comparison.agilewatts.dynamic_range > comparison.baseline.dynamic_range
    assert (
        comparison.agilewatts.proportionality_gap
        < comparison.baseline.proportionality_gap
    )
