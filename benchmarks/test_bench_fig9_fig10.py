"""Benchmarks regenerating Fig 9 (tuned configs) and Fig 10 (AW vs tuned).

Asserts the Sec 7.2 claims: No_C1E trades power for latency; AW wins
power against all three tuned configs (peak ~70%) at comparable-or-better
latency.
"""

import pytest

from benchmarks.conftest import BENCH_HORIZON, BENCH_RATES_KQPS, BENCH_SEED, run_once
from repro.experiments import fig9, fig10
from repro.experiments.common import clear_cache


def test_bench_fig9(benchmark):
    clear_cache()
    sweep = run_once(
        benchmark, fig9.run,
        rates_kqps=BENCH_RATES_KQPS, horizon=BENCH_HORIZON, seed=BENCH_SEED,
    )
    low = 0
    # NT_No_C6_No_C1E: lowest latency, highest power at low load.
    latencies = {c: sweep.results[c][low].avg_latency for c in fig9.TUNED_CONFIGS}
    powers = {c: sweep.results[c][low].avg_core_power for c in fig9.TUNED_CONFIGS}
    assert latencies["NT_No_C6_No_C1E"] == min(latencies.values())
    assert powers["NT_No_C6_No_C1E"] == max(powers.values())
    # Disabling C6 cuts the low-load tail.
    assert (
        sweep.results["NT_No_C6"][low].tail_latency
        < sweep.results["NT_Baseline"][low].tail_latency
    )


def test_bench_fig10(benchmark):
    points = run_once(
        benchmark, fig10.run,
        rates_kqps=BENCH_RATES_KQPS, horizon=BENCH_HORIZON, seed=BENCH_SEED,
    )
    # AW saves power against every tuned config at every rate.
    for p in points:
        for config in fig9.TUNED_CONFIGS:
            assert p.power_reduction[config] > 0.0
    # Peak in the paper's "up to ~71%" band.
    assert 0.55 <= fig10.peak_power_reduction(points) <= 0.85
    # Latency within 1% of the latency-optimal tuned config.
    for p in points:
        assert p.avg_latency_reduction["NT_No_C6_No_C1E"] > -0.01
