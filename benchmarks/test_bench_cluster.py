"""Benchmarks for the cluster subsystem: composition overhead vs nodes.

Not a paper artifact — tracks the cost of the shared-simulator
composition (K nodes, balancer picks per arrival, fan-out join
bookkeeping) so regressions in `repro.cluster` are visible alongside the
sweep benchmarks. The single-node point doubles as a check that the
cluster axes add no overhead to the classic path (it dispatches straight
to ServerNode).
"""

from repro.sweep import ScenarioSpec, SweepRunner


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=80_000,
        cores=4, horizon=0.05, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_bench_single_node_path(benchmark):
    spec = _spec()

    def run_cold():
        return SweepRunner(cache={}).run(spec)

    result = benchmark.pedantic(run_cold, rounds=2, iterations=1)
    assert result.completed > 0


def test_bench_cluster_four_nodes_fanout(benchmark):
    spec = _spec(nodes=4, fanout=4, balancer="jsq")

    def run_cold():
        return SweepRunner(cache={}).run(spec)

    result = benchmark.pedantic(run_cold, rounds=2, iterations=1)
    assert result.completed > 0
    assert len(result.node_detail) == 4


def test_bench_cluster_hedged(benchmark):
    spec = _spec(nodes=4, fanout=2, balancer="power_of_two", hedge_ms=0.05)

    def run_cold():
        return SweepRunner(cache={}).run(spec)

    result = benchmark.pedantic(run_cold, rounds=2, iterations=1)
    assert result.completed > 0
