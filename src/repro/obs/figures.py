"""Figure rendering for the HTML report: matplotlib or pure-SVG fallback.

:func:`render_figure` turns a backend-independent
:class:`~repro.experiments.api.FigureSpec` into an HTML fragment:

* with **matplotlib** installed (CI installs it via requirements-dev),
  the figure renders through the headless ``Agg`` backend to a base64
  PNG ``<img>``;
* without it (the default container), a small pure-Python SVG line/bar
  renderer produces an inline ``<svg>`` — fewer frills, zero deps.

Either way the output embeds in the self-contained report page; the
chosen backend is reported so tests can assert on it.
"""

from __future__ import annotations

import base64
import html
import io
import math
from typing import List, Sequence, Tuple

try:  # pragma: no cover - exercised only where matplotlib is installed
    import matplotlib

    matplotlib.use("Agg")  # headless: never require a display
    import matplotlib.pyplot as _plt
except Exception:  # pragma: no cover - ModuleNotFoundError and friends
    _plt = None

#: SVG canvas size (px) for the fallback renderer.
SVG_WIDTH = 560
SVG_HEIGHT = 340
_MARGIN_L = 64
_MARGIN_R = 16
_MARGIN_T = 34
_MARGIN_B = 46

#: Fallback series palette (matplotlib's default cycle, abridged).
_COLORS = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
    "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
)


def matplotlib_available() -> bool:
    """Whether the matplotlib backend will be used."""
    return _plt is not None


def render_figure(figure) -> str:
    """HTML fragment (``<img>`` or inline ``<svg>``) for one FigureSpec."""
    if _plt is not None:
        return _render_matplotlib(figure)
    return render_svg(figure)


# -- matplotlib backend ------------------------------------------------------

def _render_matplotlib(figure) -> str:  # pragma: no cover - CI-only path
    fig, ax = _plt.subplots(figsize=(6.0, 3.6), dpi=110)
    try:
        for i, series in enumerate(figure.series):
            color = _COLORS[i % len(_COLORS)]
            if figure.kind == "bar":
                ax.bar(series.x, series.y, label=series.label, color=color)
            else:
                ax.plot(
                    series.x, series.y, marker="o", markersize=3,
                    label=series.label, color=color,
                )
        ax.set_title(figure.title, fontsize=10)
        ax.set_xlabel(figure.x_label, fontsize=9)
        ax.set_ylabel(figure.y_label, fontsize=9)
        if figure.log_y:
            ax.set_yscale("log")
        if len(figure.series) > 1:
            ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        buffer = io.BytesIO()
        fig.savefig(buffer, format="png")
    finally:
        _plt.close(fig)
    encoded = base64.b64encode(buffer.getvalue()).decode("ascii")
    alt = html.escape(figure.title)
    return (
        f'<img class="figure" alt="{alt}" '
        f'src="data:image/png;base64,{encoded}"/>'
    )


# -- pure-SVG fallback -------------------------------------------------------

def _data_range(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        # Flat data: pad so the scale stays finite and the line centred.
        pad = abs(lo) * 0.5 if lo else 1.0
        return lo - pad, hi + pad
    return lo, hi


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """A few round-ish tick positions across [lo, hi]."""
    span = hi - lo
    if span <= 0 or not math.isfinite(span):
        return [lo]
    raw = span / max(n - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:g}"


def render_svg(figure) -> str:
    """Inline-SVG rendering of one FigureSpec (no dependencies)."""
    xs = [v for s in figure.series for v in s.x]
    ys = [v for s in figure.series for v in s.y]
    if not xs or not ys:
        return (
            f'<svg class="figure" width="{SVG_WIDTH}" height="60">'
            f'<text x="10" y="30">{html.escape(figure.title)}: no data'
            "</text></svg>"
        )
    if figure.log_y and all(y > 0 for y in ys):
        transform = math.log10
        ys_t = [transform(y) for y in ys]
    else:
        transform = None
        ys_t = list(ys)
    x_lo, x_hi = _data_range(xs)
    y_lo, y_hi = _data_range(ys_t)
    plot_w = SVG_WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = SVG_HEIGHT - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        y_v = transform(y) if transform is not None and y > 0 else y
        return _MARGIN_T + plot_h - (y_v - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = [
        f'<svg class="figure" width="{SVG_WIDTH}" height="{SVG_HEIGHT}" '
        f'viewBox="0 0 {SVG_WIDTH} {SVG_HEIGHT}" '
        'xmlns="http://www.w3.org/2000/svg" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{SVG_WIDTH}" height="{SVG_HEIGHT}" fill="white"/>',
        f'<text x="{SVG_WIDTH / 2:.0f}" y="18" text-anchor="middle" '
        f'font-size="13">{html.escape(figure.title)}</text>',
    ]
    # Axes frame + grid + tick labels.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#999"/>'
    )
    for tick in _ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#eee"/>'
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    y_tick_vals = _ticks(y_lo, y_hi)
    for tick in y_tick_vals:
        y = _MARGIN_T + plot_h - (tick - y_lo) / (y_hi - y_lo) * plot_h
        label = 10 ** tick if transform is not None else tick
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
            f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#eee"/>'
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(label)}</text>'
        )
    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.0f}" y="{SVG_HEIGHT - 8}" '
        f'text-anchor="middle">{html.escape(figure.x_label)}</text>'
        f'<text x="14" y="{_MARGIN_T + plot_h / 2:.0f}" '
        f'text-anchor="middle" transform="rotate(-90 14 '
        f'{_MARGIN_T + plot_h / 2:.0f})">{html.escape(figure.y_label)}</text>'
    )
    bar_groups = len(figure.series)
    for i, series in enumerate(figure.series):
        color = _COLORS[i % len(_COLORS)]
        if figure.kind == "bar":
            slot = plot_w / max(len(series.x), 1)
            width = max(slot / max(bar_groups, 1) * 0.8, 2.0)
            for x, y in zip(series.x, series.y):
                left = px(x) - slot * 0.4 + i * width
                top = py(y)
                parts.append(
                    f'<rect x="{left:.1f}" y="{top:.1f}" '
                    f'width="{width:.1f}" '
                    f'height="{_MARGIN_T + plot_h - top:.1f}" '
                    f'fill="{color}" fill-opacity="0.8"/>'
                )
        else:
            points = " ".join(
                f"{px(x):.1f},{py(y):.1f}"
                for x, y in zip(series.x, series.y)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
            for x, y in zip(series.x, series.y):
                parts.append(
                    f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" '
                    f'fill="{color}"/>'
                )
        # Legend entry.
        if len(figure.series) > 1:
            ly = _MARGIN_T + 8 + i * 14
            parts.append(
                f'<rect x="{_MARGIN_L + plot_w - 110}" y="{ly - 8}" '
                f'width="10" height="10" fill="{color}"/>'
                f'<text x="{_MARGIN_L + plot_w - 96}" y="{ly + 1}">'
                f"{html.escape(series.label)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)


def timeline_figures(timeline, prefix: str = "") -> List[object]:
    """FigureSpecs for a sampled telemetry timeline dict.

    Produces a power plot (package/core watts), an occupancy plot (one
    series per sampled C-state) and a load plot (in-flight/queued), so a
    telemetry-enabled report shows the run's simulated-time dynamics.
    """
    from repro.experiments.api import FigureSeries, FigureSpec

    if not timeline:
        return []
    times = tuple(timeline.get("times") or ())
    series = timeline.get("series") or {}
    if not times or not series:
        return []

    def spec(fig_id: str, title: str, y_label: str, keys: List[str]):
        picked = [
            FigureSeries(label=key, x=times, y=tuple(series[key]))
            for key in keys
            if key in series
        ]
        if not picked:
            return None
        return FigureSpec(
            id=f"{prefix}timeline:{fig_id}",
            title=title,
            x_label="simulated time (s)",
            y_label=y_label,
            series=tuple(picked),
        )

    cstates = sorted(k for k in series if k.startswith("cstate."))
    out = [
        spec("power", "Telemetry: socket power", "watts",
             ["package_power", "core_power"]),
        spec("cstates", "Telemetry: core C-state occupancy", "cores",
             cstates),
        spec("load", "Telemetry: offered load", "requests",
             ["in_flight", "queued"]),
    ]
    return [f for f in out if f is not None]
