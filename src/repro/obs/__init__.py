"""Observability: telemetry probes, trace export, run manifests, reports.

``repro.obs`` is the layer that makes runs *inspectable* without ever
perturbing them:

- :mod:`repro.obs.timeline` — :class:`~repro.obs.timeline.TimelineSampler`
  samples simulated-time series (C-state occupancy, package power, queue
  depth, frequency) on engine ticks that read but never mutate sim state.
- :mod:`repro.obs.chrometrace` — exports :class:`~repro.simkit.trace.
  TraceRecorder` events as Chrome trace-event JSON for Perfetto /
  ``chrome://tracing`` (``repro trace run ... -o trace.json``).
- :mod:`repro.obs.manifest` — append-only JSONL lifecycle stream for
  sweep points (claimed/started/finished/memo-hit/.../killed) plus
  worker heartbeats: the liveness substrate the distributed executor's
  lease recovery and fleet report consume.
- :mod:`repro.obs.figures` / :mod:`repro.obs.report` — figure rendering
  (matplotlib when available, pure-SVG fallback otherwise) and the
  self-contained ``repro report`` HTML page.

This module keeps its imports stdlib-only so simulation-layer modules
(``cluster.sharding`` merges timelines) can import it without cycles.
"""

from repro.obs.manifest import RunManifest, tail_summary  # noqa: F401
from repro.obs.timeline import (  # noqa: F401
    TIMELINE_VERSION,
    TimelineSampler,
    aggregate_node_series,
    merge_timelines,
)

__all__ = [
    "RunManifest",
    "tail_summary",
    "TIMELINE_VERSION",
    "TimelineSampler",
    "aggregate_node_series",
    "merge_timelines",
]
