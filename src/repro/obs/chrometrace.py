"""Chrome trace-event export: open a simulation run in Perfetto.

Converts a :class:`~repro.simkit.trace.TraceRecorder`'s flat event list
into the Chrome trace-event JSON format (the ``chrome://tracing`` /
`Perfetto <https://ui.perfetto.dev>`_ interchange format):

* per-core **C-state intervals** become complete (``"X"``) duration
  events on a ``pid=node, tid=core`` lane — the idle span from
  ``enter_idle`` to the matching ``wake`` is labelled with the C-state
  name, and the active span between a wake and the next idle entry is
  labelled ``C0``, so every core track is gap-free;
* **request lifecycles** become async (``"b"``/``"e"``) spans — a node
  request spans arrival to service completion; a cluster's logical
  request spans dispatch to last-leaf completion with one nested span
  per leaf, and a hedge shows up as an async-instant (``"n"``) mark on
  the leaf span it duplicates (the duplicate *shares* the original's
  ``(lid, ordinal)`` span id, so the race is visible on one track);
* **snoops** become thread-scoped instant (``"i"``) events.

Sources are mapped to process lanes by their cluster prefix:
``n{i}.core{k}`` → ``pid=i+1, tid=k``; unprefixed ``core{k}``
(standalone node) → ``pid=1``; the dispatcher's ``lb`` source →
``pid=0``. Timestamps are microseconds, as the format requires.

Simulated time is the only clock: the export is a pure function of the
recorded events, so equal seeds give byte-identical trace files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simkit.trace import TraceEvent, TraceRecorder

#: Process id of the load-balancer / dispatcher lane.
LB_PID = 0

#: Event categories used in the export (handy for Perfetto queries).
CATEGORY_CSTATE = "cstate"
CATEGORY_REQUEST = "request"
CATEGORY_SNOOP = "snoop"


def _us(time_s: float) -> float:
    """Seconds → microseconds (the trace-event time unit)."""
    return time_s * 1e6


def source_lane(source: str) -> Tuple[int, int]:
    """``(pid, tid)`` lane for a trace source string.

    ``n{i}.core{k}`` → ``(i + 1, k)``; bare ``core{k}`` → ``(1, k)``;
    ``lb`` (optionally prefixed) → ``(LB_PID, 0)``; anything else lands
    on thread 0 of its node lane.
    """
    node = 0
    rest = source
    if source.startswith("n"):
        head, dot, tail = source.partition(".")
        if dot and head[1:].isdigit():
            node = int(head[1:])
            rest = tail
    if rest == "lb":
        return (LB_PID, 0)
    if rest.startswith("core") and rest[4:].isdigit():
        return (node + 1, int(rest[4:]))
    return (node + 1, 0)


def _meta(pid: int, name: str, tid: Optional[int] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def trace_to_chrome(
    events: Sequence[TraceEvent],
    horizon: float,
    dropped: int = 0,
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for a recorded run.

    Args:
        events: the recorder's events (any order; sorted internally by
            time with recording order as the tiebreak).
        horizon: run end time in simulated seconds — closes C-state
            intervals still open when the simulation stopped.
        dropped: events the recorder discarded at capacity; surfaced in
            the document metadata so capped traces are never silently
            partial.

    Returns:
        A JSON-safe dict: ``{"traceEvents": [...], "displayTimeUnit":
        "ms", "metadata": {...}}``.
    """
    ordered = sorted(
        enumerate(events), key=lambda pair: (pair[1].time, pair[0])
    )
    out: List[Dict[str, Any]] = []
    lanes: Dict[Tuple[int, int], str] = {}
    # Per-core open interval: (start_s, state_name) — the track alternates
    # idle (enter_idle → wake) and active C0 (wake → enter_idle) spans.
    open_state: Dict[Tuple[int, int], Tuple[float, str]] = {}

    def close_interval(lane: Tuple[int, int], end_s: float) -> None:
        started = open_state.pop(lane, None)
        if started is None:
            return
        start_s, name = started
        out.append({
            "name": name,
            "cat": CATEGORY_CSTATE,
            "ph": "X",
            "ts": _us(start_s),
            "dur": _us(max(end_s - start_s, 0.0)),
            "pid": lane[0],
            "tid": lane[1],
        })

    for _, event in ordered:
        lane = source_lane(event.source)
        lanes.setdefault(lane, event.source)
        pid, tid = lane
        kind = event.kind
        payload = event.payload
        if kind == "enter_idle":
            # Close the preceding active span; open the idle one.
            close_interval(lane, event.time)
            open_state[lane] = (event.time, str(payload))
        elif kind == "wake":
            close_interval(lane, event.time)
            open_state[lane] = (event.time, "C0")
        elif kind == "snoop":
            out.append({
                "name": f"snoop:{payload}",
                "cat": CATEGORY_SNOOP,
                "ph": "i",
                "s": "t",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
            })
        elif kind == "arrival":
            out.append({
                "name": "request",
                "cat": CATEGORY_REQUEST,
                "ph": "b",
                "id": f"req{pid}.{payload}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
            })
        elif kind == "complete" and pid != LB_PID:
            out.append({
                "name": "request",
                "cat": CATEGORY_REQUEST,
                "ph": "e",
                "id": f"req{pid}.{payload}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
            })
        elif kind == "dispatch":
            lid, targets = payload
            out.append({
                "name": "logical",
                "cat": CATEGORY_REQUEST,
                "ph": "b",
                "id": f"lid{lid}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
                "args": {"targets": list(targets)},
            })
        elif kind == "complete":  # pid == LB_PID: logical completion
            out.append({
                "name": "logical",
                "cat": CATEGORY_REQUEST,
                "ph": "e",
                "id": f"lid{payload}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
            })
        elif kind == "leaf":
            lid, ordinal, home = payload
            out.append({
                "name": "leaf",
                "cat": CATEGORY_REQUEST,
                "ph": "b",
                "id": f"lid{lid}.{ordinal}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
                "args": {"home": home},
            })
        elif kind == "leaf_done":
            lid, ordinal = payload
            out.append({
                "name": "leaf",
                "cat": CATEGORY_REQUEST,
                "ph": "e",
                "id": f"lid{lid}.{ordinal}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
            })
        elif kind == "hedge":
            lid, ordinal, alt = payload
            # The duplicate shares the original leaf's span id, so the
            # hedge mark lands on the span it races.
            out.append({
                "name": "hedge",
                "cat": CATEGORY_REQUEST,
                "ph": "n",
                "id": f"lid{lid}.{ordinal}",
                "ts": _us(event.time),
                "pid": pid,
                "tid": tid,
                "args": {"alt": alt},
            })
        # Unknown kinds are skipped: the exporter only maps the stable
        # vocabulary above; new trace points appear once mapped here.

    # Close intervals still open when the run stopped, in lane order
    # (deterministic output ordering).
    for lane in sorted(open_state):
        close_interval(lane, horizon)

    metadata_events: List[Dict[str, Any]] = []
    pids = sorted({pid for pid, _ in lanes})
    for pid in pids:
        name = "lb" if pid == LB_PID else f"node{pid - 1}"
        metadata_events.append(_meta(pid, name))
    for pid, tid in sorted(lanes):
        if pid != LB_PID:
            metadata_events.append(_meta(pid, f"core{tid}", tid=tid))

    return {
        "traceEvents": metadata_events + out,
        "displayTimeUnit": "ms",
        "metadata": {
            "recorded_events": len(events),
            "dropped_events": dropped,
            "horizon_s": horizon,
        },
    }


def run_traced(
    spec: "Any",
    capacity: Optional[int] = None,
    log: Optional[Any] = None,
) -> Tuple["Any", TraceRecorder]:
    """Execute a :class:`~repro.sweep.spec.ScenarioSpec` with tracing on.

    Mirrors ``spec.execute()`` but always uses the in-process execution
    styles that carry a recorder: a standalone node for single-node
    specs, the shared-simulator :class:`~repro.cluster.Cluster` for
    *every* cluster spec (the partitioned/sharded fast path has no
    shared recorder). Results are bit-identical either way, so the trace
    annotates exactly the run the untraced spec would produce.

    Returns:
        ``(RunResult, TraceRecorder)``.
    """
    trace = TraceRecorder(capacity=capacity, log=log)
    if spec.is_cluster or spec.nodes > 1:
        from repro.cluster import Cluster

        cluster = Cluster(
            workload_factory=spec.build_workload,
            configuration=spec.build_configuration(),
            qps=spec.qps,
            nodes=spec.nodes,
            cores=spec.cores,
            horizon=spec.horizon,
            seed=spec.seed,
            balancer=spec.balancer,
            fanout=spec.fanout,
            hedge_s=None if spec.hedge_ms is None else spec.hedge_ms / 1e3,
            snoops_enabled=spec.snoops,
            governor_factory=spec.governor_factory(),
            sketch_error=spec.sketch_error,
            trace=trace,
            telemetry_hz=spec.telemetry_hz,
        )
        return cluster.run(), trace

    from repro.server.node import ServerNode

    node = ServerNode(
        workload=spec.build_workload(),
        configuration=spec.build_configuration(),
        qps=spec.qps,
        cores=spec.cores,
        horizon=spec.horizon,
        seed=spec.seed,
        snoops_enabled=spec.snoops,
        governor_factory=spec.governor_factory(),
        trace=trace,
        sketch_error=spec.sketch_error,
        telemetry_hz=spec.telemetry_hz,
    )
    return node.run(), trace


def export_chrome_trace(
    spec: "Any",
    path: str,
    capacity: Optional[int] = None,
    log: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run ``spec`` traced and write the Chrome trace JSON to ``path``.

    Returns the document's ``metadata`` block (event/drop counts) for
    caller-side reporting.
    """
    result, trace = run_traced(spec, capacity=capacity, log=log)
    document = trace_to_chrome(
        trace.events, horizon=result.horizon, dropped=trace.dropped
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"), sort_keys=False)
        handle.write("\n")
    return dict(document["metadata"])
