"""Append-only JSONL run manifests for sweep execution.

A :class:`RunManifest` records the lifecycle of every point a sweep
executes — claimed by a worker, finished with wall-time and events/sec,
answered from the memo cache or the result store, timed out, retried,
killed — as one JSON object per line, flushed as written. The format is
deliberately dumb so it doubles as the heartbeat/progress stream a
distributed executor can tail: a consumer that reads half a line sees
valid JSON up to the previous newline, and a hard-killed producer loses
at most the line it was writing.

Every line carries:

* ``event`` — the event name (``sweep``, ``claimed``, ``finished``,
  ``memo_hit``, ``store_hit``, ``retry``, ``timeout``, ``killed``,
  ``failed``, ``heartbeat`` — a distributed worker extending the lease
  of the point it is simulating, the liveness signal the coordinator's
  recovery is keyed off — plus worker lifecycle events
  ``worker_start``/``worker_exit``/``released``, ...);
* ``t`` — seconds since the manifest was opened (monotonic clock, so
  per-point wall times are robust against wall-clock steps);
* ``wall`` — absolute POSIX time, for cross-process correlation;

plus event-specific fields (``point`` index, ``attempt``, ``worker``,
``wall_s``, ``events_per_s``, spec ``key`` strings...).

Timing fields describe *execution*, never simulation: results stay a
pure function of the spec, the manifest is observability sidecar data.
"""

from __future__ import annotations

import json
import time
from types import TracebackType
from typing import IO, Any, Optional, Type, Union


class RunManifest:
    """Append-only JSONL event log (see module docstring).

    Args:
        path_or_stream: file path (opened in append mode) or an already
            open text stream (not closed by :meth:`close`).
        worker: identity stamped on every line (e.g. ``"main"`` locally,
            a host/pid pair under a distributed executor).
    """

    def __init__(
        self, path_or_stream: Union[str, IO[str]], worker: str = "main"
    ):
        if isinstance(path_or_stream, str):
            self._stream: IO[str] = open(path_or_stream, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = path_or_stream
            self._owns_stream = False
        self.worker = worker
        self._t0 = time.monotonic()
        self._closed = False
        self.emitted = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line and flush it.

        Extra ``fields`` must be JSON-serialisable; reserved keys
        (``event``/``t``/``wall``/``worker``) cannot be overridden.
        """
        if self._closed:
            return
        row = {
            "event": event,
            "t": round(time.monotonic() - self._t0, 6),
            "wall": time.time(),
            "worker": self.worker,
        }
        for key, value in fields.items():
            if key not in row:
                row[key] = value
        self._stream.write(json.dumps(row, sort_keys=False) + "\n")
        self._stream.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def spec_key(spec: Any) -> str:
    """Compact stable identity string for a spec in manifest lines."""
    return repr(tuple(spec.cache_key))


def tail_summary(path: str) -> dict:
    """Crash-tolerant summary of one manifest file (fleet-view helper).

    A SIGKILLed worker may die mid-``write``, leaving a torn final line;
    this reader treats any undecodable line as the torn tail and keeps
    everything before it, so consumers (``repro report --manifest`` over
    a directory of per-worker manifests) never fail on a dead worker's
    file. Returns::

        {"path", "worker",            # last writer identity, or None
         "events",                    # well-formed lines read
         "counts",                    # {event: count}
         "last_event", "last_wall",   # final well-formed line, or None
         "torn_tail"}                 # True if any line failed to parse

    Unlike a torn *final* line, a torn line in the middle would mean
    interleaved writers — still not fatal here, it just sets
    ``torn_tail`` and skips the line.
    """
    counts: dict = {}
    worker = None
    last_event = None
    last_wall = None
    events = 0
    torn = False
    try:
        handle = open(path, encoding="utf-8", errors="replace")
    except OSError:
        return {
            "path": path, "worker": None, "events": 0, "counts": {},
            "last_event": None, "last_wall": None, "torn_tail": True,
        }
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError("manifest line is not an object")
            except ValueError:
                torn = True
                continue
            events += 1
            event = str(row.get("event", "?"))
            counts[event] = counts.get(event, 0) + 1
            last_event = event
            if "worker" in row:
                worker = str(row["worker"])
            if isinstance(row.get("wall"), (int, float)):
                last_wall = float(row["wall"])
    return {
        "path": path,
        "worker": worker,
        "events": events,
        "counts": counts,
        "last_event": last_event,
        "last_wall": last_wall,
        "torn_tail": torn,
    }
