"""``repro report``: one self-contained HTML page for a repro run.

The report stitches together everything this repository can say about
the reproduction in a single file with zero external references:

- **experiments** — every selected experiment's figures (rendered by
  :mod:`repro.obs.figures`; inline SVG without matplotlib, base64 PNG
  with it) plus its legacy text table;
- **telemetry** — simulated-time power/C-state/load plots when the
  report run samples a timeline (``--telemetry-hz``);
- **manifest** — an event-count and throughput summary of a sweep run
  manifest JSONL (``--manifest``);
- **bench trend** — the committed benchmark baseline next to any
  ``BENCH_*.json`` documents from recent ``repro bench`` runs.

Everything embeds as markup or data URIs, so the artifact can be mailed,
attached to CI, or archived as-is.
"""

from __future__ import annotations

import glob
import html
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.figures import matplotlib_available, render_figure, timeline_figures

#: Report page version (bump when the structure changes meaningfully).
REPORT_VERSION = 1

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       max-width: 1200px; margin: 0 auto; padding: 0 24px 64px;
       color: #1a1a2e; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: 8px; }
h2 { margin-top: 40px; border-bottom: 1px solid #ccc; padding-bottom: 4px; }
h3 { margin-bottom: 4px; }
pre { background: #f6f8fa; padding: 12px; overflow-x: auto;
      font-size: 12px; border-radius: 6px; }
table.summary { border-collapse: collapse; font-size: 13px; }
table.summary th, table.summary td { border: 1px solid #ccc;
      padding: 4px 10px; text-align: right; }
table.summary th { background: #f0f2f5; }
table.summary td:first-child, table.summary th:first-child {
      text-align: left; }
.figure { margin: 8px 12px 8px 0; vertical-align: top; }
.meta { color: #666; font-size: 12px; }
.notes { font-size: 13px; color: #444; }
.regressed { color: #c0392b; font-weight: bold; }
.improved { color: #27ae60; }
details > summary { cursor: pointer; color: #1f77b4; font-size: 13px; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


# -- manifest summary ---------------------------------------------------------

def summarize_manifest(path: str) -> Dict[str, object]:
    """Reduce a sweep run-manifest JSONL to a summary dict.

    Returns event counts, distinct workers, total finished wall time and
    aggregate simulated-event throughput; malformed lines are counted,
    not fatal (a manifest from a killed run may end mid-line).
    """
    counts: Dict[str, int] = {}
    workers = set()
    wall_total = 0.0
    events_rates: List[float] = []
    malformed = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            event = str(record.get("event", "?"))
            counts[event] = counts.get(event, 0) + 1
            if "worker" in record:
                workers.add(str(record["worker"]))
            if event == "finished":
                wall = record.get("wall_s")
                if isinstance(wall, (int, float)):
                    wall_total += float(wall)
                rate = record.get("events_per_s")
                if isinstance(rate, (int, float)):
                    events_rates.append(float(rate))
    return {
        "path": path,
        "counts": counts,
        "workers": sorted(workers),
        "finished_wall_s": wall_total,
        "mean_events_per_s": (
            sum(events_rates) / len(events_rates) if events_rates else None
        ),
        "malformed_lines": malformed,
    }


def summarize_manifest_dir(path: str) -> Dict[str, object]:
    """Fleet view: crash-tolerant summary of a directory of manifests.

    A distributed sweep leaves one per-worker manifest under
    ``<queue_dir>/manifests/``; this merges their
    :func:`~repro.obs.manifest.tail_summary` digests (torn final lines
    from SIGKILLed workers included) into one summary with per-worker
    rows and fleet-wide event counts.
    """
    from repro.obs.manifest import tail_summary

    tails = [
        tail_summary(p)
        for p in sorted(glob.glob(os.path.join(path, "*.jsonl")))
    ]
    counts: Dict[str, int] = {}
    for tail in tails:
        for event, count in tail["counts"].items():
            counts[event] = counts.get(event, 0) + count
    return {"path": path, "workers": tails, "counts": counts}


def _fleet_section(summary: Dict[str, object]) -> str:
    tails = summary["workers"]
    counts = summary["counts"]
    if not tails:
        return (
            "<h2>Distributed fleet</h2>"
            f'<p class="meta">{_esc(summary["path"])} &middot; '
            "no worker manifests found</p>"
        )
    torn = sum(1 for tail in tails if tail["torn_tail"])
    rows = []
    for tail in tails:
        tail_counts = tail["counts"]
        settled = tail_counts.get("finished", 0) + tail_counts.get("store_hit", 0)
        flag = ' <span class="regressed">torn tail</span>' if tail["torn_tail"] else ""
        rows.append(
            f"<tr><td>{_esc(tail['worker'] or os.path.basename(tail['path']))}"
            f"{flag}</td>"
            f"<td>{tail['events']}</td>"
            f"<td>{settled}</td>"
            f"<td>{tail_counts.get('heartbeat', 0)}</td>"
            f"<td>{tail_counts.get('retry', 0) + tail_counts.get('failed', 0)}</td>"
            f"<td>{_esc(tail['last_event'] or '—')}</td></tr>"
        )
    event_rows = "".join(
        f"<tr><td>{_esc(event)}</td><td>{counts[event]}</td></tr>"
        for event in sorted(counts)
    )
    torn_note = ""
    if torn:
        torn_note = (
            f'<p class="regressed">{torn} worker manifest(s) end mid-line '
            "— those workers were killed; their points were recovered by "
            "lease expiry.</p>"
        )
    return (
        "<h2>Distributed fleet</h2>"
        f'<p class="meta">{_esc(summary["path"])} &middot; '
        f"{len(tails)} worker manifest(s)</p>"
        '<table class="summary"><tr><th>worker</th><th>events</th>'
        "<th>settled</th><th>heartbeats</th><th>retried/failed</th>"
        f"<th>last event</th></tr>{''.join(rows)}</table>"
        f"{torn_note}"
        '<table class="summary" style="margin-top:12px">'
        "<tr><th>event</th><th>count</th></tr>"
        f"{event_rows}</table>"
    )


def _manifest_section(summary: Dict[str, object]) -> str:
    counts = summary["counts"]
    rows = "".join(
        f"<tr><td>{_esc(event)}</td><td>{counts[event]}</td></tr>"
        for event in sorted(counts)
    )
    mean_rate = summary["mean_events_per_s"]
    rate_text = f"{mean_rate:,.0f} events/s" if mean_rate else "n/a"
    extras = ""
    if summary["malformed_lines"]:
        extras = (
            f'<p class="regressed">{summary["malformed_lines"]} malformed '
            "line(s) — the producing run may have been killed mid-write.</p>"
        )
    return (
        f"<h2>Sweep manifest</h2>"
        f'<p class="meta">{_esc(summary["path"])} &middot; '
        f'workers: {_esc(", ".join(summary["workers"]) or "none")} &middot; '
        f"finished wall time {summary['finished_wall_s']:.2f}s &middot; "
        f"mean simulated throughput {rate_text}</p>"
        f'<table class="summary"><tr><th>event</th><th>count</th></tr>'
        f"{rows}</table>{extras}"
    )


# -- bench trend --------------------------------------------------------------

def load_bench_documents(root: str) -> List[Tuple[str, Dict[str, object]]]:
    """The committed baseline plus any ``BENCH_*.json`` run documents.

    Returns ``(label, results)`` pairs, baseline first; unreadable or
    schema-mismatched files are skipped (the report must not fail
    because a stray artifact is corrupt).
    """
    docs: List[Tuple[str, Dict[str, object]]] = []
    candidates = [
        ("baseline", os.path.join(root, "benchmarks", "BENCH_baseline.json"))
    ]
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        candidates.append((os.path.basename(path), path))
    for label, path in candidates:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        results = data.get("results")
        if isinstance(results, dict) and results:
            docs.append((label, results))
    return docs


def _bench_section(root: str) -> str:
    docs = load_bench_documents(root)
    if not docs:
        return "<h2>Benchmark trend</h2><p class='meta'>no BENCH documents found</p>"
    names: List[str] = []
    for _, results in docs:
        for name in results:
            if name not in names:
                names.append(name)
    names.sort()
    header = "".join(f"<th>{_esc(label)}</th>" for label, _ in docs)
    body_rows = []
    baseline_results = docs[0][1]
    for name in names:
        cells = []
        base = baseline_results.get(name, {}).get("min_s")
        for _, results in docs:
            entry = results.get(name)
            if entry is None:
                cells.append("<td>&mdash;</td>")
                continue
            min_s = entry.get("min_s", 0.0)
            css = ""
            if base and results is not baseline_results:
                ratio = min_s / base
                if ratio > 1.25:
                    css = ' class="regressed"'
                elif ratio < 0.9:
                    css = ' class="improved"'
            cells.append(f"<td{css}>{min_s * 1000:,.2f} ms</td>")
        body_rows.append(f"<tr><td>{_esc(name)}</td>{''.join(cells)}</tr>")
    return (
        "<h2>Benchmark trend</h2>"
        '<p class="meta">minimum observed time per benchmark; red marks a '
        "&gt;25% regression vs the committed baseline, green a &gt;10% "
        "improvement</p>"
        f'<table class="summary"><tr><th>benchmark</th>{header}</tr>'
        f"{''.join(body_rows)}</table>"
    )


# -- experiments --------------------------------------------------------------

def _experiment_section(experiment, result) -> str:
    figures = experiment.figures(result)
    rendered = "".join(render_figure(fig) for fig in figures)
    notes = "".join(
        f'<p class="notes">{_esc(note)}</p>' for note in result.notes
    )
    table = _esc(experiment.render_text(result))
    return (
        f'<h3 id="{_esc(experiment.id)}">{_esc(experiment.id)} '
        f"&mdash; {_esc(result.title)}</h3>"
        f'<p class="meta">reproduces: {_esc(result.artifact)} &middot; '
        f"{len(result.records)} record(s) &middot; "
        f"{len(figures)} figure(s)</p>"
        f"{rendered}{notes}"
        f"<details><summary>data table</summary><pre>{table}</pre></details>"
    )


def _telemetry_section(timeline: Dict[str, object], label: str) -> str:
    figures = timeline_figures(timeline)
    if not figures:
        return ""
    rendered = "".join(render_figure(fig) for fig in figures)
    return (
        "<h2>Telemetry timeline</h2>"
        f'<p class="meta">{_esc(label)} &middot; sampled at '
        f"{timeline.get('hz')} Hz simulated &middot; "
        f"{len(timeline.get('times', []))} samples</p>"
        f"{rendered}"
    )


# -- page ---------------------------------------------------------------------

def build_report(
    experiments: Sequence[object],
    results: Dict[str, object],
    timeline: Optional[Dict[str, object]] = None,
    timeline_label: str = "",
    manifest_path: Optional[str] = None,
    root: Optional[str] = None,
    subtitle: str = "",
) -> str:
    """Assemble the self-contained HTML report page.

    Args:
        experiments: Experiment instances, in display order.
        results: their analyzed ExperimentResults keyed by experiment id.
        timeline: a sampled telemetry timeline dict to plot, if any.
        timeline_label: caption for the telemetry section.
        manifest_path: sweep run-manifest JSONL to summarize, if any; a
            *directory* renders the distributed-fleet view instead (one
            crash-tolerant tail summary per worker manifest inside it).
        root: repository root for the benchmark trend (skipped if None).
        subtitle: free-text line under the page title.
    """
    backend = "matplotlib" if matplotlib_available() else "inline SVG"
    sections: List[str] = []
    toc = "".join(
        f'<li><a href="#{_esc(e.id)}">{_esc(e.id)}</a></li>'
        for e in experiments
    )
    if experiments:
        sections.append(f"<h2>Experiments</h2><ul class='meta'>{toc}</ul>")
        for experiment in experiments:
            result = results.get(experiment.id)
            if result is None:
                continue
            sections.append(_experiment_section(experiment, result))
    if timeline:
        sections.append(_telemetry_section(timeline, timeline_label))
    if manifest_path:
        if os.path.isdir(manifest_path):
            # A distributed sweep's per-worker manifest directory.
            sections.append(_fleet_section(summarize_manifest_dir(manifest_path)))
        else:
            sections.append(_manifest_section(summarize_manifest(manifest_path)))
    if root is not None:
        sections.append(_bench_section(root))
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>repro report</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>repro report &mdash; AgileWatts (MICRO 2022)</h1>"
        f'<p class="meta">report v{REPORT_VERSION} &middot; '
        f"figure backend: {backend}"
        f"{' &middot; ' + _esc(subtitle) if subtitle else ''}</p>"
        f"{''.join(sections)}"
        "</body></html>"
    )
