"""Simulated-time telemetry timelines.

A :class:`TimelineSampler` rides the engine's tick hook
(:meth:`~repro.simkit.engine.Simulator.set_tick_hook`): at every tick
``k / hz`` of *simulated* time it reads — and never mutates — the
instantaneous observables of one or more server nodes (per-C-state core
occupancy, package power from the O(1) incremental accounting, in-flight
and queued requests, the frequency point, cumulative energy) and appends
one row per node. Ticks are not heap events, so a sampled run executes
the exact same event sequence as an unsampled one; the golden-digest
tests pin this bit-identity.

The collected timeline is a plain JSON-safe dict (see
:data:`TIMELINE_VERSION` for the shape) so it can ride inside
``RunResult`` through the store codec, be merged across shards, and be
plotted by ``repro report``::

    {
      "version": 1,
      "hz": 10.0,
      "times": [0.0, 0.1, ...],
      "series": {"package_power": [...], "cstate.C0": [...], ...},
      "nodes": [ {per-node series}, ... ]     # clusters only
    }

Aggregation across nodes always folds **in node order** (node 0 first),
both for a shared-simulator cluster and for the sharded per-node path
(:func:`merge_timelines`), so the two execution strategies produce
bit-identical aggregate series.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Version tag stamped into every timeline dict.
TIMELINE_VERSION = 1

#: Series that aggregate across nodes as a mean; everything else
#: (occupancy counts, powers, energies, queue depths) is additive.
MEAN_SERIES = frozenset({"frequency_ghz"})


def rows_to_series(rows: Sequence[Dict[str, float]]) -> Dict[str, List[float]]:
    """Column-orient sampled rows; missing keys zero-fill.

    Keys are sorted so series layout is a function of the observed state
    names, never of dict insertion history.
    """
    if not rows:
        return {}
    keys: set = set()
    for row in rows:
        keys.update(row.keys())
    return {key: [row.get(key, 0.0) for row in rows] for key in sorted(keys)}


def aggregate_node_series(
    length: int, node_series: Sequence[Dict[str, List[float]]]
) -> Dict[str, List[float]]:
    """Fold per-node series into cluster aggregates, in node order.

    Additive series sum across nodes; :data:`MEAN_SERIES` average. The
    accumulation order is node 0, node 1, ... — the same order
    :func:`~repro.cluster.sharding.merge_node_results` uses for scalars —
    so shared-sim and sharded execution agree bit-for-bit.
    """
    keys: set = set()
    for series in node_series:
        keys.update(series.keys())
    aggregate: Dict[str, List[float]] = {}
    for key in sorted(keys):
        total = [0.0] * length
        for series in node_series:
            column = series.get(key)
            if column is None:
                continue
            for i, value in enumerate(column):
                total[i] += value
        if key in MEAN_SERIES and node_series:
            count = float(len(node_series))
            total = [value / count for value in total]
        aggregate[key] = total
    return aggregate


class TimelineSampler:
    """Samples one or more nodes' observables on engine ticks.

    Args:
        hz: sampling rate in *simulated* Hz (ticks at ``k / hz``).
        nodes: objects exposing ``telemetry_sample(time) -> dict`` (see
            :meth:`repro.server.node.ServerNode.telemetry_sample`); for a
            cluster, pass the nodes in node order.
    """

    def __init__(self, hz: float, nodes: Sequence[Any]):
        if not (hz > 0):
            raise ValueError(f"telemetry rate must be positive, got {hz}")
        self.hz = float(hz)
        self._nodes = list(nodes)
        self.times: List[float] = []
        self._rows: List[List[Dict[str, float]]] = [[] for _ in self._nodes]

    def attach(self, sim: Any) -> None:
        """Install this sampler as ``sim``'s tick hook."""
        sim.set_tick_hook(self.hz, self.sample)

    def sample(self, time: float) -> None:
        """Record one row per node at simulated ``time`` (read-only)."""
        self.times.append(time)
        for store, node in zip(self._rows, self._nodes):
            store.append(node.telemetry_sample(time))

    def finish(self) -> Dict[str, Any]:
        """Column-orient the samples into the timeline dict."""
        length = len(self.times)
        node_series = [rows_to_series(rows) for rows in self._rows]
        timeline: Dict[str, Any] = {
            "version": TIMELINE_VERSION,
            "hz": self.hz,
            "times": list(self.times),
        }
        if len(node_series) == 1:
            timeline["series"] = node_series[0]
        else:
            timeline["series"] = aggregate_node_series(length, node_series)
            timeline["nodes"] = node_series
        return timeline


def merge_timelines(
    timelines: Sequence[Optional[Dict[str, Any]]]
) -> Optional[Dict[str, Any]]:
    """Merge per-node single-node timelines into one cluster timeline.

    ``timelines`` must be ordered by node index (the sharded executor's
    node order); the aggregate series then match a shared-simulator
    cluster sampling the same nodes bit-for-bit. Returns ``None`` when no
    node carried a timeline; raises if only some did or the tick grids
    disagree (both indicate a plumbing bug, not bad data).
    """
    present = [t for t in timelines if t is not None]
    if not present:
        return None
    if len(present) != len(timelines):
        raise ValueError("cannot merge timelines: some nodes sampled, some did not")
    first = present[0]
    hz = first["hz"]
    times = first["times"]
    for timeline in present[1:]:
        if timeline["hz"] != hz or timeline["times"] != times:
            raise ValueError("cannot merge timelines with different tick grids")
    if len(present) == 1:
        return dict(first)
    node_series = [t["series"] for t in present]
    return {
        "version": TIMELINE_VERSION,
        "hz": hz,
        "times": list(times),
        "series": aggregate_node_series(len(times), node_series),
        "nodes": [dict(series) for series in node_series],
    }
