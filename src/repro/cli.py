"""Command-line interface: regenerate paper artifacts by name.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table3           # one experiment to stdout
    python -m repro run fig8 fig10       # several
    python -m repro run --all            # everything
    python -m repro run --all -o results # everything, one file per id
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import os
import sys
from typing import List

#: Experiment ids in a sensible reading order.
EXPERIMENT_IDS: List[str] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "motivation",
    "latency_breakdown",
    "validation",
    "snoop",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table5",
    "ablation",
    "governor_study",
    "proportionality",
    "sensitivity",
]


def _load(experiment_id: str):
    if experiment_id not in EXPERIMENT_IDS:
        raise SystemExit(
            f"unknown experiment {experiment_id!r}; run `python -m repro list`"
        )
    return importlib.import_module(f"repro.experiments.{experiment_id}")


def cmd_list() -> int:
    """Print the experiment ids with their one-line descriptions."""
    for experiment_id in EXPERIMENT_IDS:
        module = _load(experiment_id)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {experiment_id:<18} {summary}")
    return 0


def cmd_run(ids: List[str], run_all: bool, output_dir: str = None) -> int:
    """Run experiments, printing to stdout or one file per id."""
    targets = EXPERIMENT_IDS if run_all else ids
    if not targets:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return 2
    for experiment_id in targets:
        module = _load(experiment_id)
        if output_dir:
            os.makedirs(output_dir, exist_ok=True)
            path = os.path.join(output_dir, f"{experiment_id}.txt")
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                module.main()
            with open(path, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"wrote {path}")
        else:
            print(f"\n{'=' * 72}\n{experiment_id}\n{'=' * 72}")
            module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate AgileWatts (MICRO 2022) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run experiments")
    run.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    run.add_argument("--all", action="store_true", help="run everything")
    run.add_argument("-o", "--output-dir", help="write one .txt per experiment")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    return cmd_run(args.ids, args.all, args.output_dir)


if __name__ == "__main__":
    raise SystemExit(main())
