"""Command-line interface: regenerate paper artifacts by name.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table3           # one experiment to stdout
    python -m repro run fig8 fig10       # several
    python -m repro run --all            # everything
    python -m repro run --all --jobs 4   # everything, 4 worker processes
    python -m repro run --all -o results # everything, one file per id
    python -m repro sweep --config baseline AW --kqps 10 100 500 --jobs 4

Exit codes: 0 on success, 1 on simulation/configuration errors, 2 on
usage errors (unknown experiment, empty selection, bad sweep axis).
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import json
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.common import format_table
from repro.sweep import (
    ScenarioGrid,
    configure_default_runner,
    default_runner,
    result_record,
)
from repro.sweep.spec import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    GOVERNOR_FACTORIES,
)
from repro.units import seconds_to_us

#: Exit codes (sysexits-style: 2 matches argparse's own usage errors).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

#: Experiment ids in a sensible reading order.
EXPERIMENT_IDS: List[str] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "motivation",
    "latency_breakdown",
    "validation",
    "snoop",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table5",
    "ablation",
    "governor_study",
    "proportionality",
    "sensitivity",
]


def _load(experiment_id: str):
    if experiment_id not in EXPERIMENT_IDS:
        print(
            f"unknown experiment {experiment_id!r}; run `python -m repro list`",
            file=sys.stderr,
        )
        raise SystemExit(EXIT_USAGE)
    return importlib.import_module(f"repro.experiments.{experiment_id}")


def _configure_jobs(jobs: Optional[int]) -> None:
    """Point the process-wide runner at a parallel executor when asked."""
    if jobs is not None and jobs > 1:
        configure_default_runner(executor="process", jobs=jobs)


def cmd_list() -> int:
    """Print the experiment ids with their one-line descriptions."""
    for experiment_id in EXPERIMENT_IDS:
        module = _load(experiment_id)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {experiment_id:<18} {summary}")
    return EXIT_OK


def cmd_run(
    ids: List[str],
    run_all: bool,
    output_dir: Optional[str] = None,
    jobs: Optional[int] = None,
) -> int:
    """Run experiments, printing to stdout or one file per id."""
    targets = EXPERIMENT_IDS if run_all else ids
    if not targets:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return EXIT_USAGE
    unknown = [i for i in targets if i not in EXPERIMENT_IDS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "run `python -m repro list`",
            file=sys.stderr,
        )
        return EXIT_USAGE
    _configure_jobs(jobs)
    for experiment_id in targets:
        module = _load(experiment_id)
        if output_dir:
            os.makedirs(output_dir, exist_ok=True)
            path = os.path.join(output_dir, f"{experiment_id}.txt")
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                module.main()
            with open(path, "w") as handle:
                handle.write(buffer.getvalue())
            print(f"wrote {path}")
        else:
            print(f"\n{'=' * 72}\n{experiment_id}\n{'=' * 72}")
            module.main()
    return EXIT_OK


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a declarative scenario grid and emit per-point results."""
    qps = list(args.qps or []) + [k * 1000.0 for k in args.kqps or []]
    if not qps:
        print("sweep needs at least one rate: pass --qps or --kqps", file=sys.stderr)
        return EXIT_USAGE
    turbo = None
    if args.turbo:
        turbo = True
    elif args.no_turbo:
        turbo = False
    try:
        grid = ScenarioGrid.product(
            workloads=args.workload,
            configs=args.config,
            qps=qps,
            cores=args.cores,
            horizons=args.horizon,
            seeds=args.seed,
            governors=args.governor,
            turbo=turbo,
            snoops=not args.no_snoops,
        )
    except ReproError as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return EXIT_USAGE

    _configure_jobs(args.jobs)
    runner = default_runner()
    previous_progress = runner.progress
    if args.progress:
        runner.progress = lambda done, total, spec: print(
            f"[{done}/{total}] {spec.workload}/{spec.config} @ {spec.qps:.0f} QPS",
            file=sys.stderr,
        )
    try:
        results = runner.run_grid(grid)
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        # The default runner is process-wide; don't leak the hook into
        # later programmatic uses.
        runner.progress = previous_progress

    records = [result_record(spec, result) for spec, result in zip(grid, results)]
    if args.output:
        with open(args.output, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        print(f"wrote {len(records)} points to {args.output}")
        return EXIT_OK

    rows = [
        [
            record["workload"],
            record["config"],
            f"{record['qps'] / 1000:.0f}K",
            record["seed"],
            f"{record['avg_core_power']:.2f}W",
            f"{record['package_power']:.1f}W",
            f"{seconds_to_us(record['avg_latency']):.1f}us",
            f"{seconds_to_us(record['p99_latency']):.1f}us",
            record["completed"],
        ]
        for record in records
    ]
    print(
        format_table(
            ["workload", "config", "QPS", "seed", "core P", "pkg P",
             "avg lat", "p99 lat", "completed"],
            rows,
        )
    )
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate AgileWatts (MICRO 2022) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run experiments")
    run.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    run.add_argument("--all", action="store_true", help="run everything")
    run.add_argument("-o", "--output-dir", help="write one .txt per experiment")
    run.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="simulate sweep points over N worker processes",
    )

    sweep = sub.add_parser(
        "sweep", help="run a scenario grid (workload x config x rate x seed)"
    )
    sweep.add_argument(
        "--workload", nargs="+", default=["memcached"],
        help="workload names (default: memcached)",
    )
    sweep.add_argument(
        "--config", nargs="+", default=["baseline"],
        help="named configurations (default: baseline)",
    )
    sweep.add_argument(
        "--qps", nargs="+", type=float, help="request rates in queries/second"
    )
    sweep.add_argument(
        "--kqps", nargs="+", type=float, help="request rates in thousands of QPS"
    )
    sweep.add_argument("--cores", nargs="+", type=int, default=[DEFAULT_CORES])
    sweep.add_argument("--horizon", nargs="+", type=float, default=[DEFAULT_HORIZON])
    sweep.add_argument("--seed", nargs="+", type=int, default=[DEFAULT_SEED])
    sweep.add_argument(
        "--governor", nargs="+", default=["menu"],
        help=f"idle governors (choices: {sorted(GOVERNOR_FACTORIES)})",
    )
    turbo_group = sweep.add_mutually_exclusive_group()
    turbo_group.add_argument(
        "--turbo", action="store_true", help="force Turbo on for every config"
    )
    turbo_group.add_argument(
        "--no-turbo", action="store_true", help="force Turbo off for every config"
    )
    sweep.add_argument(
        "--no-snoops", action="store_true", help="disable background snoop traffic"
    )
    sweep.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="simulate points over N worker processes",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="print per-point progress to stderr"
    )
    sweep.add_argument(
        "-o", "--output", metavar="FILE",
        help="write one JSON record per point (JSONL) instead of a table",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "sweep":
        return cmd_sweep(args)
    return cmd_run(args.ids, args.all, args.output_dir, args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
