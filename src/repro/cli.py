"""Command-line interface: regenerate paper artifacts by name.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table3           # one experiment to stdout
    python -m repro run fig8 fig10       # several
    python -m repro run --all            # everything, one batched sweep
    python -m repro run --all --jobs 4   # everything, 4 worker processes
    python -m repro run --all --format jsonl --out results   # structured
    python -m repro run --all --quick    # reduced grids (CI smoke)
    python -m repro run fanout_tail --quick             # tail-at-scale figure
    python -m repro run fanout_tail --params nodes=16 fanouts=1,4,16
    python -m repro sweep --config baseline AW --kqps 10 100 500 --jobs 4
    python -m repro sweep --nodes 8 --fanout 4 --kqps 320 --jobs 4  # cluster
    python -m repro sweep --grid grid.jsonl --on-error skip -o out.jsonl
    python -m repro sweep --kqps 100 --telemetry-hz 50 --manifest runs.jsonl
    python -m repro trace --kqps 100 -o trace.json      # Perfetto trace
    python -m repro trace --nodes 4 --fanout 4 --hedge-ms 0.4 -o trace.json
    python -m repro report --all --quick -o report.html # one-page HTML
    python -m repro report fig8 table3 --telemetry-hz 20 -o report.html
    python -m repro cache stats          # result-store hygiene
    python -m repro cache prune --max-bytes 100000000   # LRU size cap
    python -m repro bench --quick        # substrate benchmarks + gate
    python -m repro bench cluster --tolerance 0.5       # one named suite
    python -m repro bench --quick --update-baseline     # refresh floor
    python -m repro lint src             # determinism/invariant analysis
    python -m repro lint --rules         # print the rule catalog
    python -m repro lint src --format json              # machine-readable
    python -m repro lint --update-codec-manifest        # after codec bumps

Experiments come from the declarative registry
(:mod:`repro.experiments.api`): ``run`` collects the union of every
selected experiment's scenario grid, executes it as *one* deduplicated
batched sweep (shared points — Fig 10 ⊇ Fig 9, Table 5 ⊇ Fig 8 — are
simulated once process-wide), then analyzes and renders each experiment
from the shared result map. ``--format`` selects table (default), json,
jsonl or csv output; ``--out DIR`` writes one file per experiment.

Simulated points persist in an on-disk result store (``--cache-dir``,
``$REPRO_CACHE_DIR``, default ``~/.cache/repro``), so repeated
invocations only simulate what the store has not seen for the current
code version. ``--no-cache`` disables it; ``repro cache`` inspects,
prunes or clears it.

Exit codes: 0 on success, 1 on simulation/configuration errors (including
sweeps that completed with skipped/recorded point failures), 2 on usage
errors (unknown experiment, empty selection, bad sweep axis or grid file).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Iterator, List, Optional

from repro.errors import ReproError
from repro.experiments.api import (
    FORMATS,
    experiment_ids,
    get_experiment,
    output_extension,
    parse_param_overrides,
    render,
    run_experiments,
)
from repro.experiments.common import format_table
from repro.store import ResultStore
from repro.sweep import (
    FailurePolicy,
    ProgressRenderer,
    ScenarioGrid,
    ShardedExecutor,
    SweepRunner,
    configure_default_runner,
    default_runner,
    failure_record,
    result_record,
    set_default_runner,
)
from repro.sweep.runner import EMIT_LEVELS
from repro.sweep.spec import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    GOVERNOR_FACTORIES,
)
from repro.units import seconds_to_us

#: Exit codes (sysexits-style: 2 matches argparse's own usage errors).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

#: Experiment ids in registry (reading) order. Kept as a module-level
#: list for backwards compatibility; the registry is the source of truth.
EXPERIMENT_IDS: List[str] = experiment_ids()


def _make_store(no_cache: bool, cache_dir: Optional[str]) -> Optional[ResultStore]:
    """Open the persistent result store unless disabled; never fatal."""
    import sqlite3

    if no_cache:
        return None
    try:
        return ResultStore(cache_dir)
    except (OSError, sqlite3.Error) as exc:
        # Unwritable directory, corrupt database, incompatible sqlite:
        # run uncached rather than refusing to run at all.
        print(f"warning: result store disabled ({exc})", file=sys.stderr)
        return None


@contextlib.contextmanager
def _configured_runner(
    jobs: Optional[int] = None,
    no_cache: bool = False,
    cache_dir: Optional[str] = None,
    policy: Optional[FailurePolicy] = None,
    progress: Optional[ProgressRenderer] = None,
    shards: Optional[int] = None,
    manifest=None,
    queue_dir: Optional[str] = None,
) -> Iterator[SweepRunner]:
    """Point the process-wide runner at this command's configuration.

    The previous runner is restored on exit, so CLI flags (store location,
    failure policy, progress hooks) never leak into later programmatic use
    of :func:`repro.sweep.default_runner` in the same process.
    """
    from repro.errors import ConfigurationError

    previous = default_runner()
    store = _make_store(no_cache, cache_dir)
    if queue_dir is not None:
        # --distributed: coordinate lease-claiming worker processes over
        # a shared queue directory; the store is the result channel.
        from repro.distrib import DistributedExecutor

        if store is None:
            raise ConfigurationError(
                "--distributed requires a writable result store: workers "
                "return results through it (do not pass --no-cache)"
            )
        executor: object = DistributedExecutor(
            queue_dir,
            store_dir=str(store.root),
            jobs=jobs if jobs is not None else 3,
            policy=policy,
        )
    elif shards is not None:
        # --shards parallelises *within* each cluster point (node-range
        # sharding, exact merge) instead of across points.
        executor = ShardedExecutor(shards, jobs=jobs, policy=policy)
    else:
        executor = "process" if jobs is not None and jobs > 1 else "serial"
    runner = configure_default_runner(
        executor=executor,
        jobs=jobs,
        progress=progress,
        store=store,
        policy=policy,
        manifest=manifest,
    )
    try:
        yield runner
    finally:
        if progress is not None:
            progress.close()
        set_default_runner(previous)


def cmd_list() -> int:
    """Print the experiment ids with their one-line descriptions."""
    for experiment_id in experiment_ids():
        experiment = get_experiment(experiment_id)
        print(f"  {experiment_id:<18} {experiment.title}")
    return EXIT_OK


def cmd_run(
    ids: List[str],
    run_all: bool,
    output_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    no_cache: bool = False,
    cache_dir: Optional[str] = None,
    fmt: str = "table",
    quick: bool = False,
    params: Optional[List[str]] = None,
    distributed: Optional[str] = None,
) -> int:
    """Run experiments through one batched sweep; print or write files."""
    known = experiment_ids()
    targets = known if run_all else ids
    if not targets:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return EXIT_USAGE
    if distributed is not None and no_cache:
        print(
            "--distributed cannot be combined with --no-cache: workers "
            "return results through the shared store",
            file=sys.stderr,
        )
        return EXIT_USAGE
    unknown = [i for i in targets if i not in known]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "run `python -m repro list`",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if params and len(targets) != 1:
        # key=value overrides target ONE Params dataclass; applying the
        # same keys across experiments would fail (or worse, silently
        # mean different things), so require an unambiguous selection.
        print(
            "--params overrides the parameters of exactly one experiment; "
            f"got {len(targets)} selected",
            file=sys.stderr,
        )
        return EXIT_USAGE
    experiments = [get_experiment(experiment_id) for experiment_id in targets]
    if quick:
        experiments = [experiment.quick() for experiment in experiments]
    if params:
        try:
            # Overrides layer on top of --quick, so `--quick --params
            # nodes=2` keeps the reduced grid with one knob changed.
            experiments = [parse_param_overrides(experiments[0], params)]
        except ReproError as exc:
            print(f"invalid --params: {exc}", file=sys.stderr)
            return EXIT_USAGE
    progress = None
    if jobs is not None and jobs > 1:
        progress = ProgressRenderer(label="run")
    with _configured_runner(
        jobs, no_cache, cache_dir, progress=progress, queue_dir=distributed,
    ) as runner:
        # One deduplicated batched sweep for the union of all grids:
        # shared points (Fig 10 ⊇ Fig 9, Table 5 ⊇ Fig 8) simulate once.
        try:
            results = run_experiments(experiments, runner=runner)
        except ReproError as exc:
            # e.g. a --params override that is type-valid but
            # domain-invalid only once the grid's specs are built.
            print(f"run failed: {exc}", file=sys.stderr)
            return EXIT_ERROR

    json_envelopes = []
    for experiment in experiments:
        result = results[experiment.id]
        if output_dir:
            os.makedirs(output_dir, exist_ok=True)
            path = os.path.join(
                output_dir, f"{experiment.id}.{output_extension(fmt)}"
            )
            with open(path, "w") as handle:
                handle.write(render(experiment, result, fmt) + "\n")
            print(f"wrote {path}")
        elif fmt == "table":
            print(f"\n{'=' * 72}\n{experiment.id}\n{'=' * 72}")
            print(render(experiment, result, fmt))
        elif fmt == "json":
            # Collected into one parseable JSON array below.
            json_envelopes.append(result.to_json_dict())
        else:
            print(render(experiment, result, fmt))
    if json_envelopes:
        print(json.dumps(json_envelopes, indent=2))
    return EXIT_OK


def _load_grid_file(path: str) -> ScenarioGrid:
    """Parse a grid file: a JSON array of spec dicts, or JSONL (one per line).

    Raises:
        ReproError: on unreadable/empty/malformed files or invalid specs.
    """
    from repro.errors import ConfigurationError

    try:
        with open(path) as handle:
            text = handle.read().strip()
    except OSError as exc:
        raise ConfigurationError(f"cannot read grid file {path}: {exc}") from exc
    if not text:
        raise ConfigurationError(f"grid file {path} is empty")
    try:
        if text.startswith("["):
            dicts = json.loads(text)
        else:
            dicts = [json.loads(line) for line in text.splitlines() if line.strip()]
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"grid file {path} is not valid JSON/JSONL: {exc}") from exc
    if not isinstance(dicts, list) or not all(isinstance(d, dict) for d in dicts):
        raise ConfigurationError(
            f"grid file {path} must hold a list of ScenarioSpec dicts"
        )
    if not dicts:
        raise ConfigurationError(f"grid file {path} holds no points")
    return ScenarioGrid.from_dicts(dicts)


def _build_sweep_grid(args: argparse.Namespace) -> ScenarioGrid:
    """The swept grid: from ``--grid FILE`` or the axis flags.

    Raises:
        ReproError: on invalid axes, grid files, or conflicting inputs.
    """
    from repro.errors import ConfigurationError

    qps = list(args.qps or []) + [k * 1000.0 for k in args.kqps or []]
    if args.grid:
        # A grid file defines every axis itself; silently ignoring axis
        # flags would let `--grid f --governor oracle` lie to the user.
        axis_flags = [
            ("--qps/--kqps", bool(qps)),
            ("--workload", args.workload != ["memcached"]),
            ("--config", args.config != ["baseline"]),
            ("--cores", args.cores != [DEFAULT_CORES]),
            ("--horizon", args.horizon != [DEFAULT_HORIZON]),
            ("--seed", args.seed != [DEFAULT_SEED]),
            ("--governor", args.governor != ["menu"]),
            ("--turbo/--no-turbo", args.turbo or args.no_turbo),
            ("--no-snoops", args.no_snoops),
            ("--nodes", args.nodes != [1]),
            ("--balancer", args.balancer != ["random"]),
            ("--fanout", args.fanout != [1]),
            ("--hedge-ms", args.hedge_ms is not None),
            ("--sketch-error", args.sketch_error is not None),
            ("--telemetry-hz", args.telemetry_hz is not None),
        ]
        conflicting = [name for name, given in axis_flags if given]
        if conflicting:
            raise ConfigurationError(
                f"pass either --grid or axis flags, not both "
                f"(got {', '.join(conflicting)})"
            )
        return _load_grid_file(args.grid)
    if not qps:
        raise ConfigurationError("sweep needs at least one rate: pass --qps or --kqps")
    turbo = None
    if args.turbo:
        turbo = True
    elif args.no_turbo:
        turbo = False
    return ScenarioGrid.product(
        workloads=args.workload,
        configs=args.config,
        qps=qps,
        cores=args.cores,
        horizons=args.horizon,
        seeds=args.seed,
        governors=args.governor,
        turbo=turbo,
        snoops=not args.no_snoops,
        nodes=args.nodes,
        balancers=args.balancer,
        fanouts=args.fanout,
        hedge_ms=args.hedge_ms,
        sketch_error=args.sketch_error,
        telemetry_hz=args.telemetry_hz,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a declarative scenario grid and emit per-point results."""
    try:
        from repro.errors import ConfigurationError

        if args.distributed is not None:
            # Checked before the generic --timeout/--jobs rules: under
            # --distributed, --jobs counts worker processes, and the
            # distributed-specific messages are the useful ones.
            if args.no_cache:
                raise ConfigurationError(
                    "--distributed cannot be combined with --no-cache: "
                    "workers return results through the shared store"
                )
            if args.shards is not None:
                raise ConfigurationError(
                    "--distributed cannot be combined with --shards"
                )
            if args.timeout is not None:
                raise ConfigurationError(
                    "--distributed does not take --timeout: runaway "
                    "points are bounded by lease expiry instead"
                )
            if _make_store(False, args.cache_dir) is None:
                raise ConfigurationError(
                    "--distributed requires a writable result store"
                )
        if args.timeout is not None and args.distributed is None and (
            args.jobs is None or args.jobs <= 1
        ):
            # Accepting the flag but never enforcing it would be worse
            # than rejecting it: serial execution cannot interrupt a
            # running point.
            raise ConfigurationError("--timeout requires --jobs N (N > 1)")
        if args.timeout is not None and args.shards is not None:
            # The sharded executor runs points in order in this process;
            # like the serial executor it cannot interrupt one.
            raise ConfigurationError(
                "--timeout cannot be combined with --shards"
            )
        if args.shards is not None and args.shards <= 0:
            raise ConfigurationError(
                f"--shards must be positive, got {args.shards}"
            )
        grid = _build_sweep_grid(args)
        policy = FailurePolicy(
            mode=args.on_error, timeout=args.timeout, retries=args.retries
        )
    except ReproError as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return EXIT_USAGE

    progress = ProgressRenderer(label="sweep") if args.progress else None
    if args.manifest:
        from repro.obs import RunManifest

        manifest_scope: "contextlib.AbstractContextManager" = RunManifest(
            args.manifest
        )
    else:
        manifest_scope = contextlib.nullcontext()
    with manifest_scope as manifest, _configured_runner(
        args.jobs, args.no_cache, args.cache_dir, policy=policy,
        progress=progress, shards=args.shards, manifest=manifest,
        queue_dir=args.distributed,
    ) as runner:
        try:
            results = runner.run_grid(grid)
        except ReproError as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return EXIT_ERROR
        failures = dict(runner.last_failures)
    if args.manifest:
        print(f"sweep: run manifest appended to {args.manifest}", file=sys.stderr)

    # skip: failed points are omitted from the table/JSONL (clean output);
    # record: they appear inline as error records. Either way every
    # failure is reported on stderr, so it is never silent.
    records = []
    n_failed = 0
    for spec, result in zip(grid, results):
        failure = failures.get(spec.cache_key)
        if result is None or failure is not None:
            n_failed += 1
            print(
                f"sweep: point failed: {spec.workload}/{spec.config} "
                f"@ {spec.qps:.0f} QPS seed {spec.seed}: "
                f"{failure.error if failure else 'unknown error'}",
                file=sys.stderr,
            )
            if policy.mode == "record":
                records.append(failure_record(spec, failure))
        else:
            records.append(result_record(spec, result, emit=args.emit))
    if n_failed:
        print(
            f"sweep: {n_failed} of {len(grid)} point(s) failed "
            f"(policy: {policy.mode})",
            file=sys.stderr,
        )

    if args.output:
        with open(args.output, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        print(f"wrote {len(records)} points to {args.output}")
        return EXIT_ERROR if n_failed else EXIT_OK

    rows = []
    for record in records:
        prefix = [
            record["workload"],
            record["config"],
            f"{record['qps'] / 1000:.0f}K",
            record["seed"],
        ]
        if "error" in record:
            rows.append(prefix + ["-", "-", "-", "-", f"FAILED: {record['error']}"])
        else:
            rows.append(
                prefix
                + [
                    f"{record['avg_core_power']:.2f}W",
                    f"{record['package_power']:.1f}W",
                    f"{seconds_to_us(record['avg_latency']):.1f}us",
                    f"{seconds_to_us(record['p99_latency']):.1f}us",
                    record["completed"],
                ]
            )
    print(
        format_table(
            ["workload", "config", "QPS", "seed", "core P", "pkg P",
             "avg lat", "p99 lat", "completed"],
            rows,
        )
    )
    return EXIT_ERROR if n_failed else EXIT_OK


def cmd_worker(args: argparse.Namespace) -> int:
    """Join a distributed sweep as one lease-claiming worker process."""
    from repro.distrib.worker import default_worker_id, worker_main
    from repro.errors import ConfigurationError

    try:
        if args.lease <= 0:
            raise ConfigurationError(f"--lease must be positive, got {args.lease}")
        if args.retries < 0:
            raise ConfigurationError(
                f"--retries must be >= 0, got {args.retries}"
            )
        if args.max_points is not None and args.max_points <= 0:
            raise ConfigurationError(
                f"--max-points must be positive, got {args.max_points}"
            )
    except ReproError as exc:
        print(f"invalid worker: {exc}", file=sys.stderr)
        return EXIT_USAGE
    log = (lambda message: print(message, file=sys.stderr)) if args.verbose else None
    return worker_main(
        queue_dir=args.queue,
        store_dir=args.store,
        worker_id=args.id or default_worker_id(),
        lease_s=args.lease,
        retries=args.retries,
        drain=not args.no_drain,
        max_points=args.max_points,
        log=log,
    )


def _trace_spec(args: argparse.Namespace):
    """Build the single ScenarioSpec a ``repro trace`` run records."""
    from repro.sweep.spec import ScenarioSpec

    if (args.qps is None) == (args.kqps is None):
        from repro.errors import ConfigurationError

        raise ConfigurationError("trace needs exactly one rate: --qps or --kqps")
    qps = args.qps if args.qps is not None else args.kqps * 1000.0
    turbo = True if args.turbo else (False if args.no_turbo else None)
    return ScenarioSpec(
        workload=args.workload, config=args.config, qps=qps,
        cores=args.cores, horizon=args.horizon, seed=args.seed,
        governor=args.governor, turbo=turbo, snoops=not args.no_snoops,
        nodes=args.nodes, balancer=args.balancer, fanout=args.fanout,
        hedge_ms=args.hedge_ms, telemetry_hz=args.telemetry_hz,
    )


def cmd_trace(args: argparse.Namespace) -> int:
    """Record one scenario into a Chrome trace-event JSON for Perfetto."""
    from repro.obs.chrometrace import export_chrome_trace

    from repro.errors import ConfigurationError

    try:
        spec = _trace_spec(args)
    except ConfigurationError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        meta = export_chrome_trace(spec, args.output, capacity=args.capacity)
    except ReproError as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return EXIT_ERROR
    dropped = meta.get("dropped_events", 0)
    note = f" ({dropped} dropped; raise --capacity)" if dropped else ""
    print(
        f"wrote {meta['recorded_events']} trace events to {args.output}{note}\n"
        "open in https://ui.perfetto.dev or chrome://tracing"
    )
    return EXIT_OK


def cmd_report(args: argparse.Namespace) -> int:
    """Build the one-page self-contained HTML repro report."""
    from repro.bench import find_repo_root
    from repro.errors import ConfigurationError
    from repro.obs.report import build_report

    known = experiment_ids()
    targets = known if args.all else args.ids
    if not targets and args.manifest is None:
        print(
            "nothing to report: name experiments, pass --all, or pass "
            "--manifest for a manifest-only report",
            file=sys.stderr,
        )
        return EXIT_USAGE
    unknown = [i for i in targets if i not in known]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "run `python -m repro list`",
            file=sys.stderr,
        )
        return EXIT_USAGE
    experiments = [get_experiment(experiment_id) for experiment_id in targets]
    if args.quick:
        experiments = [experiment.quick() for experiment in experiments]
    progress = None
    if args.jobs is not None and args.jobs > 1:
        progress = ProgressRenderer(label="report")
    timeline = None
    timeline_label = ""
    with _configured_runner(
        args.jobs, args.no_cache, args.cache_dir, progress=progress
    ) as runner:
        try:
            results = run_experiments(experiments, runner=runner)
            if args.telemetry_hz is not None:
                from repro.sweep.spec import ScenarioSpec

                spec = ScenarioSpec(
                    workload="memcached", config="baseline", qps=100_000.0,
                    horizon=0.05 if args.quick else DEFAULT_HORIZON,
                    telemetry_hz=args.telemetry_hz,
                )
                timeline = runner.run(spec).timeline
                timeline_label = (
                    f"{spec.workload}/{spec.config} @ {spec.qps:.0f} QPS, "
                    f"horizon {spec.horizon}s"
                )
        except ReproError as exc:
            print(f"report failed: {exc}", file=sys.stderr)
            return EXIT_ERROR
    try:
        root: Optional[str] = find_repo_root()
    except ConfigurationError:
        root = None  # no benchmarks/ nearby: skip the trend section
    page = build_report(
        experiments, results,
        timeline=timeline, timeline_label=timeline_label,
        manifest_path=args.manifest, root=root,
        subtitle=f"{len(experiments)} experiment(s)"
        + (", quick grids" if args.quick else ""),
    )
    with open(args.output, "w") as handle:
        handle.write(page)
    print(f"wrote {args.output} ({len(page) / 1024:.0f} KiB, self-contained)")
    return EXIT_OK


def cmd_cache(args: argparse.Namespace) -> int:
    """Result-store hygiene: stats, prune stale salts, clear everything."""
    import sqlite3

    if args.max_bytes is not None and args.action != "prune":
        # Accepting the flag on stats/clear and silently ignoring it
        # would be worse than rejecting it.
        print(
            f"--max-bytes only applies to `cache prune`, not `cache {args.action}`",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        store = ResultStore(args.cache_dir)
    except (OSError, sqlite3.Error) as exc:
        print(f"cannot open result store: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        if args.action == "stats":
            print(f"store:           {store.path}")
            print(f"code salt:       {store.salt}")
            print(f"current records: {len(store)}")
            print(f"stale records:   {store.stale_records()} (other code versions)")
            print(f"total records:   {store.total_records()}")
            print(f"size on disk:    {store.size_bytes()} bytes")
        elif args.action == "prune":
            removed = store.prune_stale()
            print(f"pruned {removed} stale record(s) from {store.path}")
            if args.max_bytes is not None:
                try:
                    evicted = store.prune_lru(args.max_bytes)
                except ReproError as exc:
                    print(f"invalid --max-bytes: {exc}", file=sys.stderr)
                    return EXIT_USAGE
                print(
                    f"evicted {evicted} least-recently-used record(s) "
                    f"to fit {args.max_bytes} bytes "
                    f"(database now {store.db_bytes()} bytes)"
                )
        else:  # clear
            total = store.total_records()
            store.clear()
            print(f"cleared {total} record(s) from {store.path}")
    except sqlite3.Error as exc:
        print(f"result store error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate AgileWatts (MICRO 2022) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def add_cache_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--no-cache", action="store_true",
            help="do not read or write the persistent result store",
        )
        command.add_argument(
            "--cache-dir", metavar="DIR",
            help="result store location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )

    run = sub.add_parser("run", help="run experiments (one batched sweep)")
    run.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    run.add_argument("--all", action="store_true", help="run everything")
    run.add_argument(
        "-f", "--format", choices=list(FORMATS), default="table", dest="format",
        help="output format: human tables (default) or structured records",
    )
    run.add_argument(
        "-o", "--out", "--output-dir", dest="output_dir", metavar="DIR",
        help="write one file per experiment (.txt/.json/.jsonl/.csv by format)",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="reduced grids (one light rate, short horizon) for smoke runs",
    )
    run.add_argument(
        "--params", nargs="+", metavar="KEY=VALUE", default=None,
        help="override fields of the selected experiment's Params dataclass "
             "(typed by the field annotation; tuples parse from "
             "comma-separated items, e.g. fanouts=1,2,4); requires exactly "
             "one experiment",
    )
    run.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="simulate sweep points over N worker processes (with progress meter)",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help="run with the runtime sim-sanitizer (SAN rules): checked "
             "engine loop plus periodic deep audits; results stay "
             "bit-identical, simulation runs a constant factor slower",
    )
    run.add_argument(
        "--distributed", metavar="QUEUE_DIR", default=None,
        help="fan sweep points out to lease-claiming worker processes "
             "over this queue directory (-j sets the local worker count; "
             "external `repro worker` processes may join); rerunning "
             "with the same directory resumes a crashed run",
    )
    add_cache_flags(run)

    sweep = sub.add_parser(
        "sweep", help="run a scenario grid (workload x config x rate x governor)"
    )
    sweep.add_argument(
        "--grid", metavar="FILE",
        help="read the grid from a JSON/JSONL file of ScenarioSpec dicts "
             "(instead of the axis flags)",
    )
    sweep.add_argument(
        "--workload", nargs="+", default=["memcached"],
        help="workload names (default: memcached)",
    )
    sweep.add_argument(
        "--config", nargs="+", default=["baseline"],
        help="named configurations (default: baseline)",
    )
    sweep.add_argument(
        "--qps", nargs="+", type=float, help="request rates in queries/second"
    )
    sweep.add_argument(
        "--kqps", nargs="+", type=float, help="request rates in thousands of QPS"
    )
    sweep.add_argument("--cores", nargs="+", type=int, default=[DEFAULT_CORES])
    sweep.add_argument("--horizon", nargs="+", type=float, default=[DEFAULT_HORIZON])
    sweep.add_argument("--seed", nargs="+", type=int, default=[DEFAULT_SEED])
    sweep.add_argument(
        "--governor", nargs="+", default=["menu"],
        help=f"idle governors (choices: {sorted(GOVERNOR_FACTORIES)})",
    )
    turbo_group = sweep.add_mutually_exclusive_group()
    turbo_group.add_argument(
        "--turbo", action="store_true", help="force Turbo on for every config"
    )
    turbo_group.add_argument(
        "--no-turbo", action="store_true", help="force Turbo off for every config"
    )
    sweep.add_argument(
        "--no-snoops", action="store_true", help="disable background snoop traffic"
    )
    sweep.add_argument(
        "--nodes", nargs="+", type=int, default=[1],
        help="cluster sizes: simulate N server nodes behind a load "
             "balancer (default: 1, the single-node path)",
    )
    sweep.add_argument(
        "--balancer", nargs="+", default=["random"],
        help="cluster load balancers (random, round_robin, jsq, power_of_two)",
    )
    sweep.add_argument(
        "--fanout", nargs="+", type=int, default=[1],
        help="leaf sub-requests per logical request (completes at the "
             "slowest leaf); must not exceed --nodes",
    )
    sweep.add_argument(
        "--hedge-ms", type=float, default=None, metavar="MS",
        help="hedged requests: duplicate leaves still outstanding after "
             "MS milliseconds onto another node (first answer wins)",
    )
    sweep.add_argument(
        "--sketch-error", type=float, default=None, metavar="FRAC",
        help="track latency with a mergeable bounded-memory DDSketch at "
             "this relative-error guarantee (e.g. 0.01) instead of exact "
             "samples — the fleet-scale memory knob",
    )
    sweep.add_argument(
        "--telemetry-hz", type=float, default=None, metavar="HZ",
        help="sample a simulated-time telemetry timeline (power, C-state "
             "occupancy, load) at HZ samples per simulated second into "
             "each result; metrics stay bit-identical to an unsampled run",
    )
    sweep.add_argument(
        "--manifest", metavar="FILE",
        help="append a run manifest (one JSON line per lifecycle event: "
             "claimed/finished/retry/timeout/killed/memo_hit/store_hit) "
             "to FILE while the sweep runs",
    )
    sweep.add_argument(
        "--shards", type=int, default=None, metavar="S",
        help="split each cluster point into S node-range shards run on a "
             "process pool and merged exactly (bit-identical to the "
             "serial result); requires stateless balancing "
             "(random/round_robin), fanout 1 and no hedging",
    )
    sweep.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="simulate points over N worker processes (with --shards: "
             "pool width for in-point sharding instead)",
    )
    sweep.add_argument(
        "--emit", choices=list(EMIT_LEVELS), default="headline",
        help="per-point record detail: headline metrics only (default), "
             "residency (adds C-state residency and transition-rate "
             "dicts), or perf (adds engine counters — events processed, "
             "heap high-water mark, events per request — for normalising "
             "wall time per unit of simulation work)",
    )
    sweep.add_argument(
        "--on-error", choices=["raise", "skip", "record"], default="raise",
        help="per-point failure mode: abort the sweep (raise), omit the "
             "point from the output (skip), or keep an inline error record "
             "in the output (record); skipped/recorded failures are always "
             "reported on stderr",
    )
    sweep.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-point wall-clock budget (requires --jobs: only the "
             "parallel executor can interrupt a point)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="resubmit a failed point up to N times before applying --on-error",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="render per-point progress on stderr"
    )
    sweep.add_argument(
        "-o", "--output", metavar="FILE",
        help="write one JSON record per point (JSONL) instead of a table",
    )
    sweep.add_argument(
        "--sanitize", action="store_true",
        help="run with the runtime sim-sanitizer (SAN rules); worker "
             "processes inherit the setting via REPRO_SANITIZE",
    )
    sweep.add_argument(
        "--distributed", metavar="QUEUE_DIR", default=None,
        help="fan points out to lease-claiming worker processes over "
             "this queue directory (-j sets the local worker count, "
             "default 3; external `repro worker --queue QUEUE_DIR` "
             "processes may join); rerunning with the same directory "
             "resumes a crashed run, skipping store-hit points",
    )
    add_cache_flags(sweep)

    worker = sub.add_parser(
        "worker",
        help="join a distributed sweep: claim points from a queue "
             "directory under a heartbeat-extended lease, write results "
             "to the shared store, exit when the queue drains",
    )
    worker.add_argument(
        "--queue", metavar="DIR", required=True,
        help="queue directory of the coordinating `repro sweep --distributed`",
    )
    worker.add_argument(
        "--store", metavar="DIR", default=None,
        help="shared result store — must be the coordinator's store "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    worker.add_argument(
        "--id", metavar="NAME", default=None,
        help="worker identity for leases and the manifest (default: host-pid)",
    )
    worker.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS",
        help="lease duration per claimed point; the heartbeat extends it "
             "at a third of this period (default: 30)",
    )
    worker.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="requeue a failing point up to N times (with backoff) "
             "before recording a terminal failure (default: 0)",
    )
    worker.add_argument(
        "--no-drain", action="store_true",
        help="stay parked for more work after the queue drains (until "
             "SIGTERM) instead of exiting",
    )
    worker.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="exit after settling N points (smoke tests)",
    )
    worker.add_argument(
        "--verbose", action="store_true",
        help="log worker lifecycle to stderr",
    )
    worker.add_argument(
        "--sanitize", action="store_true",
        help="run claimed points under the runtime sim-sanitizer",
    )

    trace = sub.add_parser(
        "trace",
        help="record one scenario as a Chrome trace-event JSON "
             "(Perfetto/chrome://tracing): per-core C-state intervals, "
             "request lifecycle spans, hedge and snoop marks",
    )
    trace.add_argument("--workload", default="memcached")
    trace.add_argument("--config", default="baseline")
    rate_group = trace.add_mutually_exclusive_group()
    rate_group.add_argument("--qps", type=float, help="request rate in QPS")
    rate_group.add_argument("--kqps", type=float, help="request rate in KQPS")
    trace.add_argument("--cores", type=int, default=DEFAULT_CORES)
    trace.add_argument(
        "--horizon", type=float, default=0.05,
        help="simulated seconds to record (default 0.05: traces grow "
             "with every C-state transition and request)",
    )
    trace.add_argument("--seed", type=int, default=DEFAULT_SEED)
    trace.add_argument("--governor", default="menu")
    trace_turbo = trace.add_mutually_exclusive_group()
    trace_turbo.add_argument("--turbo", action="store_true")
    trace_turbo.add_argument("--no-turbo", action="store_true")
    trace.add_argument("--no-snoops", action="store_true")
    trace.add_argument("--nodes", type=int, default=1)
    trace.add_argument("--balancer", default="random")
    trace.add_argument("--fanout", type=int, default=1)
    trace.add_argument("--hedge-ms", type=float, default=None, metavar="MS")
    trace.add_argument(
        "--telemetry-hz", type=float, default=None, metavar="HZ",
        help="additionally sample the telemetry timeline during the run",
    )
    trace.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="ring-buffer capacity in events (default: recorder default); "
             "overflow drops oldest events and is reported",
    )
    trace.add_argument(
        "-o", "--output", metavar="FILE", default="trace.json",
        help="output path (default: trace.json)",
    )

    report = sub.add_parser(
        "report",
        help="build a one-page self-contained HTML report: experiment "
             "figures, telemetry timeline, sweep manifest summary and "
             "benchmark trend",
    )
    report.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    report.add_argument("--all", action="store_true", help="report everything")
    report.add_argument(
        "--quick", action="store_true",
        help="reduced experiment grids (CI smoke, seconds per experiment)",
    )
    report.add_argument(
        "--telemetry-hz", type=float, default=None, metavar="HZ",
        help="include a telemetry-timeline section sampled at HZ from a "
             "representative 100 KQPS run",
    )
    report.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="include a summary of this sweep run-manifest JSONL; pass a "
             "distributed sweep's <queue_dir>/manifests directory for "
             "the per-worker fleet view (tolerates manifests from "
             "killed workers)",
    )
    report.add_argument(
        "-o", "--output", metavar="FILE", default="report.html",
        help="output path (default: report.html)",
    )
    report.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="simulate experiment points over N worker processes",
    )
    add_cache_flags(report)

    cache = sub.add_parser(
        "cache", help="inspect or clean the persistent result store"
    )
    cache.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help="stats: show counts/size; prune: drop records from other code "
             "versions (add --max-bytes for LRU eviction); clear: drop "
             "everything",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="with prune: additionally evict least-recently-accessed "
             "records until the store fits N bytes",
    )
    cache.add_argument(
        "--cache-dir", metavar="DIR",
        help="result store location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the pytest-benchmark suites, write BENCH_*.json, and "
             "gate against the committed baseline",
    )
    bench.add_argument(
        "suite", nargs="?", default=None,
        help="suite name (simulator, sweep, cluster, cluster_sharded, "
             "all); default: all, or simulator with --quick",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="run the fast substrate suite only (alias for `bench simulator`)",
    )
    bench.add_argument(
        "-o", "--out", metavar="FILE",
        help="machine-readable results file (default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--baseline", metavar="FILE",
        help="baseline to gate against (default: benchmarks/BENCH_baseline.json)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help="fractional slowdown allowed before failing (default: 0.25)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="merge this run's results into the baseline instead of gating",
    )
    bench.add_argument(
        "--no-compare", action="store_true",
        help="write results only; skip the baseline gate",
    )

    lint = sub.add_parser(
        "lint",
        help="static determinism & invariant analysis (DET/FAST/SPEC rules)",
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to analyze (default: the repro source "
             "tree this installation runs from)",
    )
    lint.add_argument(
        "-f", "--format", choices=["text", "json"], default="text",
        dest="format", help="report format (default: text)",
    )
    lint.add_argument(
        "-j", "--jobs", type=int, metavar="N",
        help="analyze files over N worker processes (default: auto-sized "
             "for large file sets, serial for small ones)",
    )
    lint.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog (id, title, rationale) and exit",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="accepted-findings baseline to compare against (default: the "
             "committed zero-finding baseline)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report raw findings without baseline comparison",
    )
    lint.add_argument(
        "--no-project-checks", action="store_true",
        help="skip the project-level SPEC invariant checks (cache-key / "
             "codec coverage), running only the per-file rules",
    )
    lint.add_argument(
        "--fix-stale", action="store_true",
        help="delete stale allow[...] suppression clauses (ANA003) from "
             "the analyzed files in place, then exit",
    )
    lint.add_argument(
        "--update-codec-manifest", action="store_true",
        help="re-fingerprint the store codec and write the committed "
             "manifest (run after an intentional, version-bumped codec "
             "change), then exit",
    )
    return parser


def cmd_bench(args: argparse.Namespace) -> int:
    """Run benchmark suites and gate against the committed baseline."""
    from repro import bench
    from repro.errors import ConfigurationError

    if args.tolerance is not None and args.tolerance < 0:
        print(f"--tolerance must be >= 0, got {args.tolerance}", file=sys.stderr)
        return EXIT_USAGE
    if args.suite is not None and args.quick:
        print("pass either a suite name or --quick, not both", file=sys.stderr)
        return EXIT_USAGE
    if args.suite is not None and args.suite not in bench.SUITES:
        print(
            f"unknown bench suite {args.suite!r}; "
            f"choose from {sorted(bench.SUITES)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        return bench.main(
            suite=args.suite,
            quick=args.quick,
            out=args.out,
            baseline=args.baseline,
            tolerance=(
                bench.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
            ),
            do_update_baseline=args.update_baseline,
            no_compare=args.no_compare,
        )
    except ConfigurationError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return EXIT_ERROR


def cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism/invariant analysis with the baseline gate."""
    from repro import analyze

    if args.rules:
        for rule_id, title, rationale in analyze.rule_catalog():
            print(f"{rule_id}  {title}")
            for line in rationale.splitlines():
                print(f"    {line}")
            print()
        return EXIT_OK
    if args.update_codec_manifest:
        try:
            manifest = analyze.update_codec_manifest()
        except ReproError as exc:
            print(f"cannot update codec manifest: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(
            f"wrote codec manifest: format_version="
            f"{manifest['format_version']} fingerprint={manifest['fingerprint']}"
        )
        return EXIT_OK

    # Default to the installed repro package so `python -m repro lint`
    # means "lint this codebase" from any working directory.
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    if args.fix_stale:
        try:
            removed = analyze.fix_stale_suppressions(paths, jobs=args.jobs)
        except ReproError as exc:
            print(f"lint --fix-stale failed: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(f"removed {removed} stale suppression clause(s)")
        return EXIT_OK
    try:
        result = analyze.run_lint(
            paths, jobs=args.jobs,
            project_checks=not args.no_project_checks,
        )
        if args.no_baseline:
            baseline = []
        elif args.baseline is not None:
            baseline = analyze.load_baseline(args.baseline)
        else:
            baseline = analyze.load_baseline()
    except ReproError as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return EXIT_USAGE

    gating = analyze.compare_to_baseline(result.findings, baseline)
    if args.format == "json":
        print(analyze.render_json(result))
    else:
        print(analyze.render_text(result))
        accepted = len(result.findings) - len(gating)
        if accepted:
            print(f"{accepted} finding(s) accepted by baseline")
    return EXIT_ERROR if gating else EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "sanitize", False):
        from repro.simkit import sanitizer

        scope: "contextlib.AbstractContextManager[None]" = sanitizer.enabled(True)
    else:
        scope = contextlib.nullcontext()
    try:
        with scope:
            if args.command == "list":
                return cmd_list()
            if args.command == "sweep":
                return cmd_sweep(args)
            if args.command == "worker":
                return cmd_worker(args)
            if args.command == "trace":
                return cmd_trace(args)
            if args.command == "report":
                return cmd_report(args)
            if args.command == "cache":
                return cmd_cache(args)
            if args.command == "bench":
                return cmd_bench(args)
            if args.command == "lint":
                return cmd_lint(args)
            return cmd_run(
                args.ids, args.all, args.output_dir, args.jobs,
                no_cache=args.no_cache, cache_dir=args.cache_dir,
                fmt=args.format, quick=args.quick, params=args.params,
                distributed=args.distributed,
            )
    except BrokenPipeError:
        # `repro ... | head` closes stdout early; that is the reader's
        # choice, not an error. Detach stdout so the interpreter's exit
        # flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
