"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so applications
can catch the whole family with one handler while still letting genuine
bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation was violated."""


class PointTimeoutError(SimulationError):
    """A sweep point exceeded its :class:`FailurePolicy` time budget."""


class ShardingError(SimulationError):
    """A cluster point cannot be executed as independent shards.

    Raised when sharded execution is requested for a point whose balancer
    is stateful (``jsq``/``power_of_two`` read live cross-node queue
    depths) or whose requests couple nodes (``fanout > 1``, hedging):
    those need every node on one simulator. Run such points single-process
    (drop ``--shards`` / use the serial or process executor), or switch to
    a stateless balancer (``random``/``round_robin``).
    """


class ConfigurationError(ReproError):
    """A model or experiment was configured with inconsistent parameters."""


class CStateError(ConfigurationError):
    """A C-state definition or transition request is invalid."""


class PowerModelError(ConfigurationError):
    """A power/PPA model was given out-of-range inputs."""


class WorkloadError(ConfigurationError):
    """A workload or load-generator parameterisation is invalid."""
