"""Cache Coherence and Sleep Mode (CCSM) — Sec 4.2 and 5.1.2.

AW's second key idea: do **not** flush L1/L2 when entering the deep state.
Keep the private caches power-ungated, drop their SRAM data arrays to a
retention voltage through sleep transistors (the same technique shipping
in Xeon L3 slices), clock-gate the whole cache domain, and keep a minimal
always-active sniffer so the core can still serve coherence (snoop)
traffic while "asleep".

Power derivation (Table 3 gamma): Intel published the leakage of a 2.5 MB
22 nm L3 slice with sleep mode; scale by capacity to the ~1.1 MB L1+L2 and
by node (22 -> 14 nm, alpha ~0.7, beta = 1.0 per [99]) to get ~55 mW for
the data arrays, plus ~55 mW for the rest of the power-ungated cache
subsystem (controllers, tags) at P1 — dropping to ~40 mW / ~33 mW at Pn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import PowerModelError
from repro.power.leakage import scale_leakage_power, sleep_transistor_efficiency
from repro.units import KB, MB, MILLIWATT

from repro.core.ufpg import V_P1, V_PN

#: Leakage of the reference 2.5 MB L3 slice with sleep mode at 22 nm [72, 98].
REFERENCE_L3_SLEEP_LEAKAGE = 180 * MILLIWATT
REFERENCE_L3_CAPACITY = 2.5 * MB

#: Retention voltage the sleep transistors hold the data array at.
V_RETENTION = 0.55


@dataclass(frozen=True)
class CCSMConfig:
    """Parameters of the CCSM subsystem.

    Attributes:
        l1_capacity_bytes / l2_capacity_bytes: private cache sizes of the
            Skylake server core (32 KB L1-I + 32 KB L1-D + 1 MB L2: ~1.1 MB).
        data_array_fraction: share of cache area that is SRAM data array
            and therefore placed in sleep-mode (> 90%).
        cache_area_fraction: share of core area the caches occupy (~30%,
            Fig 4 die photo).
        area_overhead_low/high: sleep transistors add 2-6% of the data
            array area (a recent implementation reports 2% [96]).
        clock_ungate_power: extra power while the cache domain is
            clock-ungated to serve snoops (~50 mW, Sec 7.5 baseline term).
        sleep_exit_extra_power: extra power while the data array is pulled
            out of sleep mode to serve snoops (~120 mW, Sec 7.5 AW term).
    """

    l1_capacity_bytes: float = 64 * KB
    l2_capacity_bytes: float = 1 * MB
    data_array_fraction: float = 0.90
    cache_area_fraction: float = 0.30
    area_overhead_low: float = 0.02
    area_overhead_high: float = 0.06
    clock_ungate_power: float = 50 * MILLIWATT
    sleep_exit_extra_power: float = 120 * MILLIWATT
    sleep_enter_cycles: int = 3
    sleep_exit_cycles: int = 2

    def __post_init__(self) -> None:
        if self.l1_capacity_bytes <= 0 or self.l2_capacity_bytes <= 0:
            raise PowerModelError("cache capacities must be positive")
        if not 0.5 <= self.data_array_fraction <= 1.0:
            raise PowerModelError("data array fraction expected in [0.5, 1.0]")
        if not 0.0 < self.cache_area_fraction < 1.0:
            raise PowerModelError("cache area fraction must be in (0, 1)")
        if not 0.0 <= self.area_overhead_low <= self.area_overhead_high:
            raise PowerModelError("area overhead bounds out of order")
        if self.clock_ungate_power < 0 or self.sleep_exit_extra_power < 0:
            raise PowerModelError("snoop powers must be >= 0")
        if self.sleep_enter_cycles < 1 or self.sleep_exit_cycles < 1:
            raise PowerModelError("sleep transition takes at least one cycle")

    @property
    def total_capacity_bytes(self) -> float:
        return self.l1_capacity_bytes + self.l2_capacity_bytes


class CCSM:
    """The CCSM subsystem of one core."""

    def __init__(self, config: CCSMConfig = CCSMConfig()):
        self.config = config

    # -- power -------------------------------------------------------------
    def data_array_sleep_power(self, rail: str = "P1") -> float:
        """Sleep-mode leakage of the L1/L2 data arrays on ``rail``.

        Scaled from the 22 nm L3 reference by capacity and node, then
        adjusted for the sleep transistor's LVR behaviour: the array holds
        V_RETENTION, so the rail-side draw scales with V_in / V_ret —
        lowering the rail toward retention (C6AE) *reduces* the draw
        (~55 mW at P1 -> ~40 mW at Pn).
        """
        v_in = self._rail_voltage(rail)
        capacity_ratio = self.config.total_capacity_bytes / REFERENCE_L3_CAPACITY
        at_14nm = scale_leakage_power(
            REFERENCE_L3_SLEEP_LEAKAGE * capacity_ratio, from_nm=22, to_nm=14
        )
        # Reference measurement is on a nominal rail; convert through the
        # LVR efficiency ratio for the actual rail.
        nominal_efficiency = sleep_transistor_efficiency(V_P1, V_RETENTION)
        actual_efficiency = sleep_transistor_efficiency(v_in, V_RETENTION)
        return at_14nm * (nominal_efficiency / actual_efficiency)

    def ungated_rest_power(self, rail: str = "P1") -> float:
        """Leakage of the power-ungated controllers/tags (no sleep mode).

        ~55 mW at P1; scales quadratically with voltage to ~33 mW at Pn
        (Table 3 'rest of the memory subsystem' row).
        """
        v_in = self._rail_voltage(rail)
        base = 55 * MILLIWATT
        return base * (v_in / V_P1) ** 2

    def idle_power(self, rail: str = "P1") -> float:
        """Total CCSM contribution to C6A/C6AE idle power."""
        return self.data_array_sleep_power(rail) + self.ungated_rest_power(rail)

    def snoop_service_power_delta(self) -> float:
        """Extra power while serving snoops in C6A vs. quiescent C6A.

        Clock-ungating the cache domain (~50 mW, same as the C1 baseline
        pays) plus the data-array sleep-mode exit (~120 mW): ~170 mW.
        """
        return self.config.clock_ungate_power + self.config.sleep_exit_extra_power

    @staticmethod
    def _rail_voltage(rail: str) -> float:
        voltages = {"P1": V_P1, "Pn": V_PN}
        if rail not in voltages:
            raise PowerModelError(f"unknown rail {rail!r}; choose P1 or Pn")
        return voltages[rail]

    # -- latency ------------------------------------------------------------
    @property
    def sleep_enter_cycles(self) -> int:
        """Cycles to drop the arrays into sleep + clock-gate (1-3)."""
        return self.config.sleep_enter_cycles

    @property
    def sleep_exit_cycles(self) -> int:
        """Cycles to clock-ungate + raise the arrays out of sleep (2).

        Cycle 1 ungates the clock; cycle 2 starts the tag access in
        parallel with the data-array wake, hiding the array's wake latency
        behind the tag/state lookup — hence zero performance penalty for
        cache accesses after wake (Sec 5.1.2 performance paragraph).
        """
        return self.config.sleep_exit_cycles

    @property
    def performance_penalty(self) -> float:
        """Zero: only the data array sleeps; tags run at nominal voltage."""
        return 0.0

    # -- area -----------------------------------------------------------------
    def area_overhead_range(self) -> Tuple[float, float]:
        """(low, high) extra core area from the sleep transistors.

        2-6% of the data array, which is ~90% of the ~30% of core area the
        caches occupy, plus <1% of the ungated remainder for isolation.
        """
        array_core_fraction = (
            self.config.cache_area_fraction * self.config.data_array_fraction
        )
        low = self.config.area_overhead_low * array_core_fraction
        high = self.config.area_overhead_high * array_core_fraction
        rest_bound = 0.01 * self.config.cache_area_fraction * (1 - self.config.data_array_fraction)
        return (low, high + rest_bound)
