"""AgileWatts: the paper's primary contribution.

This package implements the C6A/C6AE deep idle-state architecture:

- :mod:`~repro.core.cstates` — C-state model and catalogs (Tables 1 & 2).
- :mod:`~repro.core.ufpg` — Units' Fast Power-Gating (Sec 4.1, 5.1.1).
- :mod:`~repro.core.ccsm` — Cache Coherence & Sleep Mode (Sec 4.2, 5.1.2).
- :mod:`~repro.core.pma_flow` — the C6A power-management FSM (Sec 4.3).
- :mod:`~repro.core.latency` — transition-latency derivations (Sec 3, 5.2).
- :mod:`~repro.core.ppa` — power-performance-area model (Sec 5.1, Table 3).
- :mod:`~repro.core.architecture` — :class:`AgileWattsDesign`, tying the
  subsystems into a drop-in C-state catalog for simulation and analysis.
"""

from repro.core.cstates import (
    CState,
    CStateCatalog,
    ComponentStates,
    FrequencyPoint,
    agilewatts_catalog,
    skylake_baseline_catalog,
)
from repro.core.ufpg import UFPG, UFPGConfig
from repro.core.ccsm import CCSM, CCSMConfig
from repro.core.pma_flow import C6AFlow, FlowStep, PMAState
from repro.core.latency import (
    C6LatencyModel,
    C6ALatencyModel,
    CacheFlushModel,
)
from repro.core.ppa import PPABreakdown, PPAModel, PPAEntry
from repro.core.architecture import AgileWattsDesign

__all__ = [
    "CState",
    "CStateCatalog",
    "ComponentStates",
    "FrequencyPoint",
    "agilewatts_catalog",
    "skylake_baseline_catalog",
    "UFPG",
    "UFPGConfig",
    "CCSM",
    "CCSMConfig",
    "C6AFlow",
    "FlowStep",
    "PMAState",
    "C6LatencyModel",
    "C6ALatencyModel",
    "CacheFlushModel",
    "PPABreakdown",
    "PPAModel",
    "PPAEntry",
    "AgileWattsDesign",
]
