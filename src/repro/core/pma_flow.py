"""The C6A/C6AE power-management flow (Sec 4.3, Fig 6).

The flow lives in the core's power-management agent (PMA), an FSM in the
uncore, clocked at a few hundred MHz (500 MHz here, [108]). It orchestrates:

Entry (C0 -> C6A):
  1. clock-gate the UFPG domain, keep the PLL on
     (+ for C6AE: kick off a *non-blocking* DVFS transition to Pn);
  2. save the UFPG context in place (assert Ret, deassert Pwr);
  3. put L1/L2 into sleep-mode and clock-gate them.

Exit (C6A -> C0, on interrupt):
  4. clock-ungate L1/L2 and exit sleep-mode;
  5. power-ungate the UFPG zones (staggered, < 70 ns) and restore context;
  6. clock-ungate the UFPG domain.

Snoop service (while in C6A):
  a. clock-ungate the cache domain and exit sleep-mode;
  b. serve the outstanding snoops;
  c. re-enter sleep-mode and clock-gate.

The FSM is usable both standalone (unit tests drive it step by step) and
as a latency oracle (``entry_latency`` / ``exit_latency``) for the
C-state catalog and the server simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.errors import CStateError
from repro.units import MHZ, cycles_to_seconds

from repro.core.ccsm import CCSM
from repro.core.ufpg import UFPG

#: PMA controller clock (Sec 5.2 footnote: several hundred MHz, e.g. 500).
PMA_CLOCK_HZ = 500 * MHZ


class PMAState(Enum):
    """Top-level states of the C6A flow FSM."""

    C0 = "C0"
    ENTERING = "entering"
    IDLE = "idle"            # resident in C6A / C6AE
    SNOOP_SERVICE = "snoop"
    EXITING = "exiting"


@dataclass(frozen=True)
class FlowStep:
    """One step of the Fig 6 flow with its latency contribution."""

    label: str
    cycles: int = 0
    extra_time: float = 0.0

    @property
    def latency(self) -> float:
        return cycles_to_seconds(self.cycles, PMA_CLOCK_HZ) + self.extra_time


class C6AFlow:
    """The PMA finite-state machine for one core's C6A/C6AE states."""

    def __init__(
        self,
        ufpg: Optional[UFPG] = None,
        ccsm: Optional[CCSM] = None,
        enhanced: bool = False,
    ):
        self.ufpg = ufpg if ufpg is not None else UFPG()
        self.ccsm = ccsm if ccsm is not None else CCSM()
        self.enhanced = enhanced  # True => C6AE (adds non-blocking DVFS)
        self.state = PMAState.C0
        self.entries = 0
        self.exits = 0
        self.snoops_served = 0

    # -- step tables ----------------------------------------------------------
    def entry_steps(self) -> List[FlowStep]:
        """Steps 1-3 of Fig 6 with their cycle costs (Sec 5.2.1)."""
        return [
            FlowStep("1: clock-gate UFPG domain, keep PLL on", cycles=2),
            FlowStep(
                "2: save context in place (Ret then !Pwr)",
                cycles=self.ufpg.save_cycles,
            ),
            FlowStep(
                "3: L1/L2 enter sleep-mode and clock-gate",
                cycles=self.ccsm.sleep_enter_cycles,
            ),
        ]

    def exit_steps(self) -> List[FlowStep]:
        """Steps 4-6 of Fig 6 with their cycle costs (Sec 5.2.2)."""
        return [
            FlowStep(
                "4: clock-ungate L1/L2 and exit sleep-mode",
                cycles=self.ccsm.sleep_exit_cycles,
            ),
            FlowStep(
                "5: power-ungate UFPG zones (staggered) and restore context",
                cycles=self.ufpg.restore_cycles,
                extra_time=self.ufpg.wake_latency,
            ),
            FlowStep("6: clock-ungate UFPG domain", cycles=2),
        ]

    def snoop_steps(self) -> List[FlowStep]:
        """Steps a and c of the snoop flow (b's duration is traffic-bound)."""
        return [
            FlowStep(
                "a: clock-ungate caches and exit sleep-mode",
                cycles=self.ccsm.sleep_exit_cycles,
            ),
            FlowStep(
                "c: re-enter sleep-mode and clock-gate",
                cycles=self.ccsm.sleep_enter_cycles,
            ),
        ]

    # -- latency oracles --------------------------------------------------------
    @property
    def entry_latency(self) -> float:
        """Hardware C6A entry: < 10 PMA cycles => < 20 ns (Sec 5.2.1).

        The C6AE DVFS transition to Pn is non-blocking and therefore does
        not appear on this path.
        """
        return sum(step.latency for step in self.entry_steps())

    @property
    def exit_latency(self) -> float:
        """Hardware C6A exit: ~5 cycles + < 70 ns stagger => < 80 ns."""
        return sum(step.latency for step in self.exit_steps())

    @property
    def round_trip_latency(self) -> float:
        """Entry followed by immediate exit: < 100 ns (Sec 5.2)."""
        return self.entry_latency + self.exit_latency

    @property
    def snoop_wake_latency(self) -> float:
        """Step a only — the snoop waits just for the sleep-mode exit."""
        return self.snoop_steps()[0].latency

    # -- FSM operation ------------------------------------------------------------
    def request_entry(self) -> float:
        """MWAIT arrived: run steps 1-3. Returns the entry latency.

        Raises:
            CStateError: if the core is not in C0.
        """
        if self.state is not PMAState.C0:
            raise CStateError(f"cannot enter C6A from {self.state.value}")
        self.state = PMAState.ENTERING
        latency = self.entry_latency
        self.state = PMAState.IDLE
        self.entries += 1
        return latency

    def request_exit(self) -> float:
        """Interrupt arrived: run steps 4-6. Returns the exit latency.

        Raises:
            CStateError: if the core is not resident in C6A/C6AE.
        """
        if self.state is not PMAState.IDLE:
            raise CStateError(f"cannot exit C6A from {self.state.value}")
        self.state = PMAState.EXITING
        latency = self.exit_latency
        self.state = PMAState.C0
        self.exits += 1
        return latency

    def serve_snoops(self, service_time: float) -> float:
        """A snoop burst arrived while idle: run a-b-c.

        Args:
            service_time: duration of step b (handling the actual requests).

        Returns:
            Total time the cache domain is awake.

        Raises:
            CStateError: if not resident, or service_time negative.
        """
        if self.state is not PMAState.IDLE:
            raise CStateError(f"cannot serve snoops from {self.state.value}")
        if service_time < 0:
            raise CStateError("snoop service time must be >= 0")
        self.state = PMAState.SNOOP_SERVICE
        total = sum(step.latency for step in self.snoop_steps()) + service_time
        self.state = PMAState.IDLE
        self.snoops_served += 1
        return total

    @property
    def state_name(self) -> str:
        if self.state is PMAState.IDLE:
            return "C6AE" if self.enhanced else "C6A"
        return self.state.value

    def describe(self) -> str:
        """Human-readable flow summary (used by the quickstart example)."""
        from repro.units import pretty_time

        lines = [f"C6A{'E' if self.enhanced else ''} flow @ {PMA_CLOCK_HZ / MHZ:.0f} MHz PMA clock"]
        lines.append("entry:")
        for step in self.entry_steps():
            lines.append(f"  {step.label}: {pretty_time(step.latency)}")
        lines.append(f"  total entry: {pretty_time(self.entry_latency)}")
        lines.append("exit:")
        for step in self.exit_steps():
            lines.append(f"  {step.label}: {pretty_time(step.latency)}")
        lines.append(f"  total exit: {pretty_time(self.exit_latency)}")
        lines.append(f"round trip: {pretty_time(self.round_trip_latency)}")
        return "\n".join(lines)
