"""Ablations of AgileWatts' three key ideas (Sec 1 / Sec 4).

AW's < 100 ns transition rests on three techniques. Removing each one
re-introduces the corresponding C6 cost:

- **no in-place retention** (UFPG idea): context must serialise to the
  uncore S/R SRAM — ~9 us each way at the 800 MHz flow clock;
- **no cache sleep-mode** (CCSM idea): L1/L2 must be flushed on entry
  (~tens of us, dirtiness-dependent) and refilled after exit (charged
  here only as the flush, the paper does likewise);
- **no kept PLL**: exit pays the ADPLL relock (~5 us).

Each ablated variant also *changes idle power*: flushed caches stop
leaking (sleep-mode power disappears), serialised context needs no
retention power, an off PLL saves its 7 mW. The ablation therefore
reports both axes, showing each idea's latency-for-power trade and that
the full design is the only one with nanosecond transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.architecture import AgileWattsDesign
from repro.core.latency import C6LatencyModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AblatedVariant:
    """One ablation point.

    Attributes:
        name: which idea was removed ("full" = nothing removed).
        entry_latency / exit_latency: hardware transition latencies.
        idle_power: C6A-equivalent idle power of the variant.
    """

    name: str
    entry_latency: float
    exit_latency: float
    idle_power: float

    @property
    def round_trip(self) -> float:
        return self.entry_latency + self.exit_latency

    def slowdown_vs(self, other: "AblatedVariant") -> float:
        """How many times slower this variant's round trip is."""
        if other.round_trip <= 0:
            raise ConfigurationError("reference round trip must be positive")
        return self.round_trip / other.round_trip


class AblationStudy:
    """Build the ablation table for a design point."""

    def __init__(
        self,
        design: Optional[AgileWattsDesign] = None,
        c6_model: Optional[C6LatencyModel] = None,
    ):
        self.design = design if design is not None else AgileWattsDesign()
        self.c6_model = c6_model if c6_model is not None else C6LatencyModel()

    def full_design(self) -> AblatedVariant:
        """All three ideas in place: the shipping C6A."""
        return AblatedVariant(
            name="full",
            entry_latency=self.design.flow.entry_latency,
            exit_latency=self.design.flow.exit_latency,
            idle_power=self.design.c6a_power,
        )

    def without_inplace_retention(self) -> AblatedVariant:
        """Idea 1 removed: context serialises to the uncore S/R SRAM.

        Entry and exit each gain the ~9 us serialisation; idle power
        drops by the (tiny) ~2 mW retention power.
        """
        serialise = self.c6_model.context_save_time()
        full = self.full_design()
        return AblatedVariant(
            name="no_inplace_retention",
            entry_latency=full.entry_latency + serialise,
            exit_latency=full.exit_latency + serialise,
            idle_power=full.idle_power - self.design.ufpg.retention_power("P1"),
        )

    def without_cache_sleep_mode(self) -> AblatedVariant:
        """Idea 2 removed: flush L1/L2 on entry, power-gate them.

        Entry gains the flush (~75 us at the paper's 50%-dirty, 800 MHz
        point); idle power drops by the whole CCSM contribution (the
        arrays are now behind gates like everything else).
        """
        flush = self.c6_model.flush.flush_time(
            self.c6_model.dirty_fraction, self.c6_model.frequency_hz
        )
        full = self.full_design()
        return AblatedVariant(
            name="no_cache_sleep_mode",
            entry_latency=full.entry_latency + flush,
            exit_latency=full.exit_latency,
            idle_power=full.idle_power - self.design.ccsm.idle_power("P1"),
        )

    def without_kept_pll(self) -> AblatedVariant:
        """Idea 3 removed: power the ADPLL off; exit pays the relock."""
        full = self.full_design()
        return AblatedVariant(
            name="no_kept_pll",
            entry_latency=full.entry_latency,
            exit_latency=full.exit_latency + self.design.adpll.relock_time,
            idle_power=full.idle_power - self.design.adpll.power_watts,
        )

    def c6_reference(self) -> AblatedVariant:
        """All three removed simultaneously ~= legacy C6."""
        return AblatedVariant(
            name="legacy_c6",
            entry_latency=self.c6_model.entry_latency,
            exit_latency=self.c6_model.exit_latency,
            idle_power=0.1,  # Table 1 C6 power
        )

    def variants(self) -> List[AblatedVariant]:
        """All ablation points, full design first."""
        return [
            self.full_design(),
            self.without_inplace_retention(),
            self.without_cache_sleep_mode(),
            self.without_kept_pll(),
            self.c6_reference(),
        ]

    def latency_contributions(self) -> Dict[str, float]:
        """Round-trip latency each idea saves (ablated minus full)."""
        full = self.full_design()
        return {
            "inplace_retention": self.without_inplace_retention().round_trip - full.round_trip,
            "cache_sleep_mode": self.without_cache_sleep_mode().round_trip - full.round_trip,
            "kept_pll": self.without_kept_pll().round_trip - full.round_trip,
        }
