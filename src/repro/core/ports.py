"""Porting AW to other core designs (Sec 5.5 and the generality claim).

The paper argues AW's techniques "are general and applicable to most
server processor architectures", and Sec 5.5 discusses AMD EPYC
specifically: deep core C-states exist but are disabled by vendor
guidance for latency-critical deployments, so AW's value there is even
larger. This module provides parameterised design points:

- :func:`skylake_server_design` — the paper's 14 nm Intel point (default).
- :func:`zen3_like_design` — an AMD-style chiplet core: larger private L2
  (512 KB L2 + bigger L3 slice held coherent), motherboard VR instead of
  a per-core FIVR (no 100 mW static loss, but less efficient light-load
  conversion attributed per core), slightly leakier core.
- :func:`client_core_design` — a client derivative: smaller caches, lower
  leakage, where legacy package C-states already work and AW's margin is
  smaller — matching the paper's observation that C-states were designed
  for client workloads in the first place.

Each port returns a fully-verified :class:`AgileWattsDesign` whose
catalog can be dropped into the server simulator.
"""

from __future__ import annotations

from repro.core.architecture import AgileWattsDesign
from repro.core.ccsm import CCSMConfig
from repro.core.ufpg import UFPGConfig
from repro.power.clock import ADPLL
from repro.power.pdn import FIVR
from repro.units import KB, MILLIWATT


def skylake_server_design() -> AgileWattsDesign:
    """The paper's design point: Intel Skylake server core at 14 nm."""
    return AgileWattsDesign()


def zen3_like_design() -> AgileWattsDesign:
    """An AMD Zen3-style chiplet core.

    Differences from the Skylake point (approximate, public-domain
    figures): 32 KB + 32 KB L1 with a 512 KB private L2 (the shared L3
    lives on the CCD and is outside the core's AW domain); no per-core
    FIVR — power comes from a board VR, so there is no 100 mW per-core
    static loss but light-load conversion attributed per core is ~75%
    efficient; core leakage similar to C1-class (~1.3 W).
    """
    ufpg = UFPGConfig(
        gated_area_fraction=0.72,
        gated_leakage_fraction=0.72,
        core_leakage_watts=1.3,
    )
    ccsm = CCSMConfig(
        l1_capacity_bytes=64 * KB,
        l2_capacity_bytes=512 * KB,
        cache_area_fraction=0.25,
    )
    board_vr = FIVR(efficiency=0.75, static_loss_watts=0.0)
    return AgileWattsDesign(ufpg_config=ufpg, ccsm_config=ccsm, fivr=board_vr)


def client_core_design() -> AgileWattsDesign:
    """A client derivative of the same master core design.

    Smaller L2 (256 KB), lower-leakage process corner, and a cheaper
    ADPLL. AW still works, but the absolute savings are smaller — client
    systems already exploit deep package C-states (C8+) during their
    long, predictable idle periods.
    """
    ufpg = UFPGConfig(
        gated_area_fraction=0.68,
        gated_leakage_fraction=0.68,
        core_leakage_watts=0.9,
    )
    ccsm = CCSMConfig(
        l1_capacity_bytes=64 * KB,
        l2_capacity_bytes=256 * KB,
        cache_area_fraction=0.22,
    )
    return AgileWattsDesign(
        ufpg_config=ufpg,
        ccsm_config=ccsm,
        adpll=ADPLL(power_watts=5 * MILLIWATT),
    )


def compare_ports() -> dict:
    """Summary table of the three ports' key figures of merit."""
    out = {}
    for name, factory in (
        ("skylake-server", skylake_server_design),
        ("zen3-like", zen3_like_design),
        ("client", client_core_design),
    ):
        design = factory()
        out[name] = {
            "c6a_power_watts": design.c6a_power,
            "c6ae_power_watts": design.c6ae_power,
            "round_trip_seconds": design.hardware_round_trip,
            "nanosecond_class": design.hardware_round_trip < 150e-9,
        }
    return out
