"""C-state model and catalogs (paper Tables 1 and 2).

A *C-state* is a core idle power state. Each state trades power for
transition latency: the deeper the state, the lower the idle power and the
longer the entry/exit. Power-management governors only enter a state if
the predicted idle interval exceeds its *target residency* — the
break-even span below which transitioning wastes more energy than it
saves.

Two catalogs are provided:

- :func:`skylake_baseline_catalog` — C0/C1/C1E/C6 of an Intel Skylake
  server core (Table 1, [15]).
- :func:`agilewatts_catalog` — AW's hierarchy where C6A replaces C1 and
  C6AE replaces C1E, with C6-like power at C1-like latency.

The headline numbers (Table 1)::

    state       transition  target residency  power/core
    C0 (P1)     -           -                 ~4 W
    C0 (Pn)     -           -                 ~1 W
    C1 (P1)     2 us        2 us              1.44 W
    C6A (P1)    2 us        2 us              ~0.3 W
    C1E (Pn)    10 us       20 us             0.88 W
    C6AE (Pn)   10 us       20 us             ~0.23 W
    C6          133 us      600 us            ~0.1 W
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CStateError
from repro.units import GHZ, NS, US, WATT


class FrequencyPoint(Enum):
    """Operating frequency points of the modelled Xeon Silver 4114."""

    P1 = "P1"      # base frequency, 2.2 GHz
    PN = "Pn"      # minimum frequency, 0.8 GHz
    TURBO = "Turbo"  # max single-core turbo, 3.0 GHz

    @property
    def frequency_hz(self) -> float:
        return _FREQUENCY_HZ[self]


# Enum's default __hash__ is a Python-level function (it hashes the member
# name), which makes every enum-keyed dict lookup on the simulation hot
# path pay a Python frame. Members are singletons compared by identity, so
# the C-level id hash is equivalent for every dict use — and dict ordering
# is insertion-based, so nothing observable changes. Applied *before* any
# enum-keyed dict is built, so every table uses the identity hash.
FrequencyPoint.__hash__ = object.__hash__

_FREQUENCY_HZ = {
    FrequencyPoint.P1: 2.2 * GHZ,
    FrequencyPoint.PN: 0.8 * GHZ,
    FrequencyPoint.TURBO: 3.0 * GHZ,
}


@dataclass(frozen=True)
class ComponentStates:
    """Per-component state of a core in a given C-state (Table 2).

    Values are short strings matching the paper's table vocabulary, e.g.
    clocks: "running"/"stopped"; adpll: "on"/"off"; l1l2: "coherent"/
    "flushed"; voltage: "active"/"min-vf"/"pg-ret-active"/"pg-ret-min-vf"/
    "shut-off"; context: "maintained"/"in-place-sr"/"sr-sram".
    """

    clocks: str
    adpll: str
    l1l2: str
    voltage: str
    context: str


# Table 2 rows.
_COMPONENT_STATES: Dict[str, ComponentStates] = {
    "C0": ComponentStates("running", "on", "coherent", "active", "maintained"),
    "C1": ComponentStates("stopped", "on", "coherent", "active", "maintained"),
    "C6A": ComponentStates("stopped", "on", "coherent", "pg-ret-active", "in-place-sr"),
    "C1E": ComponentStates("stopped", "on", "coherent", "min-vf", "maintained"),
    "C6AE": ComponentStates("stopped", "on", "coherent", "pg-ret-min-vf", "in-place-sr"),
    "C6": ComponentStates("stopped", "off", "flushed", "shut-off", "sr-sram"),
}


@dataclass(frozen=True)
class CState:
    """One core idle (or active) power state.

    Attributes:
        name: canonical name ("C0", "C1", "C6A", ...).
        power_watts: average per-core power while resident in the state.
        entry_latency: time from the entry trigger until the state's power
            level is reached (core unusable).
        exit_latency: time from the wake event until the first instruction
            executes (core unusable). What a waking request pays.
        target_residency: minimum predicted idle span for which a governor
            should choose this state.
        frequency: the P-state the core sits at in this C-state (C1E/C6AE
            transition to Pn; None for states where frequency is moot).
        depth: ordering key — deeper states have larger depth.
        snoop_wake_overhead: extra time to serve a snoop arriving in this
            state (sleep-mode exit for C6A; 0 when caches are clocked or
            flushed).
    """

    name: str
    power_watts: float
    entry_latency: float
    exit_latency: float
    target_residency: float
    frequency: Optional[FrequencyPoint]
    depth: int
    snoop_wake_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise CStateError(f"{self.name}: power must be >= 0")
        if self.entry_latency < 0 or self.exit_latency < 0:
            raise CStateError(f"{self.name}: latencies must be >= 0")
        if self.target_residency < 0:
            raise CStateError(f"{self.name}: target residency must be >= 0")
        if self.snoop_wake_overhead < 0:
            raise CStateError(f"{self.name}: snoop overhead must be >= 0")
        # is_active is read on every power recomputation in the simulation
        # hot path; precompute it once instead of string-matching per call.
        object.__setattr__(self, "_active", self.name.startswith("C0"))

    @property
    def transition_time(self) -> float:
        """Worst-case entry+exit time, as reported in Table 1."""
        return self.entry_latency + self.exit_latency

    @property
    def is_active(self) -> bool:
        return self._active

    @property
    def components(self) -> ComponentStates:
        """Table 2 component-state row for this C-state."""
        key = self.name
        if key not in _COMPONENT_STATES:
            raise CStateError(f"no component-state row for {key!r}")
        return _COMPONENT_STATES[key]

    def with_power(self, power_watts: float) -> "CState":
        """Copy with a different power (used when PPA model refines it)."""
        return replace(self, power_watts=power_watts)


# --- canonical Table 1 constants --------------------------------------------

C0_P1_POWER = 4.0 * WATT
C0_PN_POWER = 1.0 * WATT
C0_TURBO_POWER = 5.5 * WATT  # single-core turbo draw; calibration constant
C1_POWER = 1.44 * WATT
C1E_POWER = 0.88 * WATT
C6_POWER = 0.1 * WATT
C6A_POWER = 0.3 * WATT
C6AE_POWER = 0.23 * WATT

#: Extra hardware latency C6A adds over C1 per transition (Sec 6.2: ~100 ns).
C6A_EXTRA_TRANSITION = 100 * NS

#: Extra time to pop L1/L2 out of sleep-mode for an incoming snoop; two
#: controller cycles at 500 MHz (Sec 5.2.3) — effectively nanoseconds.
C6A_SNOOP_WAKE = 4 * NS


def _c0(frequency: FrequencyPoint, power: float) -> CState:
    return CState(
        name="C0",
        power_watts=power,
        entry_latency=0.0,
        exit_latency=0.0,
        target_residency=0.0,
        frequency=frequency,
        depth=0,
    )


def make_c1() -> CState:
    """C1: clock-gate core domains, keep PLL on. 2 us round trip."""
    return CState(
        name="C1",
        power_watts=C1_POWER,
        entry_latency=1 * US,
        exit_latency=1 * US,
        target_residency=2 * US,
        frequency=FrequencyPoint.P1,
        depth=1,
    )


def make_c1e() -> CState:
    """C1E: C1 plus a DVFS transition to Pn. 10 us round trip, 20 us TR."""
    return CState(
        name="C1E",
        power_watts=C1E_POWER,
        entry_latency=5 * US,
        exit_latency=5 * US,
        target_residency=20 * US,
        frequency=FrequencyPoint.PN,
        depth=2,
    )


def make_c6() -> CState:
    """C6: flush caches, save context to SRAM, power off (133 us total).

    Entry ~87 us dominated by the L1/L2 flush (~75 us at 50% dirty,
    800 MHz) plus ~9 us context save; exit ~30 us hardware + ~16 us
    software overhead (Sec 3, [11-14]).
    """
    return CState(
        name="C6",
        power_watts=C6_POWER,
        entry_latency=87 * US,
        exit_latency=46 * US,
        target_residency=600 * US,
        frequency=None,
        depth=3,
    )


def make_c6a(power_watts: float = C6A_POWER) -> CState:
    """C6A: AW's agile deep state at P1 voltage.

    Software-visible transition matches C1 (the MWAIT/OS path dominates);
    the hardware adds only ~100 ns (Sec 5.2), split across entry (<20 ns)
    and exit (<80 ns).
    """
    return CState(
        name="C6A",
        power_watts=power_watts,
        entry_latency=1 * US + 20 * NS,
        exit_latency=1 * US + 80 * NS,
        target_residency=2 * US,
        frequency=FrequencyPoint.P1,
        depth=1,
        snoop_wake_overhead=C6A_SNOOP_WAKE,
    )


def make_c6ae(power_watts: float = C6AE_POWER) -> CState:
    """C6AE: C6A plus a non-blocking DVFS transition to Pn (like C1E)."""
    return CState(
        name="C6AE",
        power_watts=power_watts,
        entry_latency=5 * US + 20 * NS,
        exit_latency=5 * US + 80 * NS,
        target_residency=20 * US,
        frequency=FrequencyPoint.PN,
        depth=2,
        snoop_wake_overhead=C6A_SNOOP_WAKE,
    )


class CStateCatalog:
    """An ordered hierarchy of C-states plus governor-facing queries.

    States are kept sorted by depth. ``disable``/``enable`` model the BIOS
    switches the paper's tuned configurations flip (No_C6, No_C1E, ...).
    """

    def __init__(self, active: CState, idle_states: Sequence[CState], name: str = "catalog"):
        if not active.is_active:
            raise CStateError(f"active state must be C0-like, got {active.name}")
        if not idle_states:
            raise CStateError("catalog needs at least one idle state")
        names = [s.name for s in idle_states]
        if len(set(names)) != len(names):
            raise CStateError(f"duplicate idle states: {names}")
        self.name = name
        self.active = active
        self._idle = sorted(idle_states, key=lambda s: s.depth)
        self._disabled: set = set()
        # Governor queries read the enabled list on every idle entry (the
        # simulation hot path); rebuild it only when the switches flip.
        self._enabled_cache: Optional[List[CState]] = None

    # -- lookups ----------------------------------------------------------
    @property
    def idle_states(self) -> List[CState]:
        """All idle states, shallow to deep, including disabled ones."""
        return list(self._idle)

    @property
    def enabled_idle_states(self) -> List[CState]:
        """Enabled states shallow-to-deep (cached; treat as read-only)."""
        cache = self._enabled_cache
        if cache is None:
            cache = [s for s in self._idle if s.name not in self._disabled]
            self._enabled_cache = cache
        return cache

    @property
    def all_states(self) -> List[CState]:
        return [self.active] + self.idle_states

    def get(self, name: str) -> CState:
        if name == self.active.name:
            return self.active
        for state in self._idle:
            if state.name == name:
                return state
        raise CStateError(f"no state {name!r} in catalog {self.name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
            return True
        except CStateError:
            return False

    # -- BIOS-style switches ------------------------------------------------
    def disable(self, *names: str) -> "CStateCatalog":
        """Disable states (as BIOS 'C-state control' does). Returns self."""
        for name in names:
            self.get(name)  # validate
            self._disabled.add(name)
        self._enabled_cache = None
        if not self.enabled_idle_states:
            raise CStateError("cannot disable every idle state")
        return self

    def enable(self, *names: str) -> "CStateCatalog":
        for name in names:
            self._disabled.discard(name)
        self._enabled_cache = None
        return self

    def is_enabled(self, name: str) -> bool:
        self.get(name)
        return name not in self._disabled

    # -- governor queries ---------------------------------------------------
    def shallowest(self) -> CState:
        return self.enabled_idle_states[0]

    def deepest(self) -> CState:
        return self.enabled_idle_states[-1]

    def select(
        self,
        predicted_idle: float,
        latency_limit: Optional[float] = None,
    ) -> CState:
        """Deepest enabled state fitting the prediction and latency limit.

        This is the core of a menu-style governor: choose the deepest state
        whose target residency is within the predicted idle span and whose
        exit latency respects any QoS latency limit. Falls back to the
        shallowest enabled state.
        """
        if predicted_idle < 0:
            raise CStateError(f"predicted idle must be >= 0, got {predicted_idle}")
        states = self.enabled_idle_states
        chosen = states[0]
        for state in states:
            if state.target_residency > predicted_idle:
                continue
            if latency_limit is not None and state.exit_latency > latency_limit:
                continue
            chosen = state
        return chosen

    # -- reporting ------------------------------------------------------------
    def table1_rows(self) -> List[Tuple[str, str, str, str]]:
        """Render Table 1: (state, transition, target residency, power)."""
        from repro.units import pretty_power, pretty_time

        rows = []
        rows.append((f"{self.active.name} ({self.active.frequency.value})",
                     "N/A", "N/A", pretty_power(self.active.power_watts)))
        for state in self._idle:
            freq = f" ({state.frequency.value})" if state.frequency else ""
            rows.append(
                (
                    f"{state.name}{freq}",
                    pretty_time(state.transition_time),
                    pretty_time(state.target_residency),
                    pretty_power(state.power_watts),
                )
            )
        return rows


def skylake_baseline_catalog() -> CStateCatalog:
    """The Skylake server hierarchy of Table 1: C0 / C1 / C1E / C6."""
    return CStateCatalog(
        active=_c0(FrequencyPoint.P1, C0_P1_POWER),
        idle_states=[make_c1(), make_c1e(), make_c6()],
        name="skylake-baseline",
    )


def agilewatts_catalog(
    c6a_power: float = C6A_POWER,
    c6ae_power: float = C6AE_POWER,
    keep_c6: bool = True,
) -> CStateCatalog:
    """AW hierarchy: C6A replaces C1, C6AE replaces C1E (Sec 4).

    Args:
        c6a_power / c6ae_power: override with PPA-model-derived values.
        keep_c6: AW retains legacy C6 for long idle spans; tuned configs
            may disable it afterwards.
    """
    idle: List[CState] = [make_c6a(c6a_power), make_c6ae(c6ae_power)]
    if keep_c6:
        idle.append(make_c6())
    return CStateCatalog(
        active=_c0(FrequencyPoint.P1, C0_P1_POWER),
        idle_states=idle,
        name="agilewatts",
    )


#: C0 per-core power by frequency point, built once: :func:`active_power`
#: sits on the per-transition hot path of the server simulation.
_ACTIVE_POWERS = {
    FrequencyPoint.P1: C0_P1_POWER,
    FrequencyPoint.PN: C0_PN_POWER,
    FrequencyPoint.TURBO: C0_TURBO_POWER,
}

# The active power is also pinned onto each member as a plain attribute:
# ``frequency.active_power_watts`` is a single C-level attribute load,
# which the per-transition power recomputation in repro.uarch.core uses
# instead of a dict lookup.
for _frequency_point, _watts in _ACTIVE_POWERS.items():
    _frequency_point.active_power_watts = _watts


def active_power(frequency: FrequencyPoint) -> float:
    """C0 per-core power at a frequency point (Table 1 + turbo calibration)."""
    return _ACTIVE_POWERS[frequency]
