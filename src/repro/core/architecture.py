"""`AgileWattsDesign`: the assembled architecture.

Glues the four subsystems (UFPG, CCSM, PMA flow, PLL/FIVR) into:

- a :class:`~repro.core.cstates.CStateCatalog` whose C6A/C6AE powers and
  latencies are *derived* from the PPA and flow models (not quoted), ready
  to drop into the server simulator or the analytical power model;
- design-level verification: in-rush safety, context coverage, latency
  budget, idle-power-fraction targets.

This is the class a downstream user starts from::

    design = AgileWattsDesign()
    catalog = design.catalog()          # C0 / C6A / C6AE / C6
    print(design.verify())              # all architecture invariants
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.power.clock import ADPLL
from repro.power.pdn import FIVR

from repro.core.ccsm import CCSM, CCSMConfig
from repro.core.cstates import (
    C6A_EXTRA_TRANSITION,
    CStateCatalog,
    agilewatts_catalog,
    skylake_baseline_catalog,
)
from repro.core.latency import C6ALatencyModel, C6LatencyModel, transition_speedup
from repro.core.pma_flow import C6AFlow
from repro.core.ppa import PPABreakdown, PPAModel
from repro.core.ufpg import UFPG, UFPGConfig


@dataclass
class AgileWattsDesign:
    """A complete AW design instance for one core.

    Attributes:
        ufpg_config / ccsm_config: subsystem parameterisations; defaults
            reproduce the paper's Skylake-class design point.
    """

    ufpg_config: UFPGConfig = field(default_factory=UFPGConfig)
    ccsm_config: CCSMConfig = field(default_factory=CCSMConfig)
    adpll: ADPLL = field(default_factory=ADPLL)
    fivr: FIVR = field(default_factory=FIVR)

    def __post_init__(self) -> None:
        self.ufpg = UFPG(self.ufpg_config)
        self.ccsm = CCSM(self.ccsm_config)
        self.flow = C6AFlow(self.ufpg, self.ccsm)
        self.flow_enhanced = C6AFlow(self.ufpg, self.ccsm, enhanced=True)
        self.ppa = PPAModel(self.ufpg, self.ccsm, self.adpll, self.fivr)
        self._breakdown: Optional[PPABreakdown] = None

    # -- derived quantities ------------------------------------------------
    @property
    def breakdown(self) -> PPABreakdown:
        """The Table 3 PPA breakdown (cached)."""
        if self._breakdown is None:
            self._breakdown = self.ppa.build()
        return self._breakdown

    @property
    def c6a_power(self) -> float:
        return self.breakdown.c6a_power

    @property
    def c6ae_power(self) -> float:
        return self.breakdown.c6ae_power

    @property
    def hardware_round_trip(self) -> float:
        """C6A entry+exit hardware latency (< 100 ns)."""
        return self.flow.round_trip_latency

    @property
    def frequency_penalty(self) -> float:
        """fmax degradation from the added power gates (~1%)."""
        return self.ufpg.frequency_penalty

    @property
    def transition_overhead(self) -> float:
        """Extra per-transition latency of C6A vs C1 used by the
        analytical model (Sec 6.2): ~100 ns."""
        return C6A_EXTRA_TRANSITION

    def catalog(self, keep_c6: bool = True) -> CStateCatalog:
        """Build the AW C-state catalog with PPA-derived powers."""
        return agilewatts_catalog(
            c6a_power=self.c6a_power,
            c6ae_power=self.c6ae_power,
            keep_c6=keep_c6,
        )

    def baseline_catalog(self) -> CStateCatalog:
        """The unmodified Skylake hierarchy, for side-by-side studies."""
        return skylake_baseline_catalog()

    # -- verification ----------------------------------------------------------
    def verify(self) -> Dict[str, bool]:
        """Check the design invariants the paper's architecture relies on.

        Returns a dict of named checks; all must be True for a valid
        design point. Raises nothing — callers assert as appropriate.
        """
        checks: Dict[str, bool] = {}
        checks["in_rush_safe"] = self.ufpg.in_rush_safe
        checks["context_fully_retained"] = (
            self.ufpg.retention.total_context_bytes >= 8 * 1024
        )
        checks["entry_under_20ns"] = self.flow.entry_latency < 20e-9
        checks["exit_under_80ns"] = self.flow.exit_latency < 80e-9
        checks["round_trip_under_100ns"] = self.hardware_round_trip < 100e-9
        low, high = self.breakdown.total_power_range("C6A")
        checks["c6a_power_band"] = 0.25 <= low <= high <= 0.35
        low_e, high_e = self.breakdown.total_power_range("C6AE")
        checks["c6ae_power_band"] = 0.20 <= low_e <= high_e <= 0.27
        frac_a, frac_ae = self.ppa.idle_power_fraction_of_c0()
        checks["c6a_under_8pct_of_c0"] = frac_a < 0.08
        checks["c6ae_under_6pct_of_c0"] = frac_ae < 0.06
        area_low, area_high = self.breakdown.area_overhead_range
        checks["area_overhead_band"] = area_low >= 0.01 and area_high <= 0.08
        checks["speedup_three_orders"] = (
            transition_speedup(C6LatencyModel(), C6ALatencyModel(self.flow)) >= 500
        )
        return checks

    def verify_or_raise(self) -> None:
        """Raise :class:`ConfigurationError` listing any failed checks."""
        failed = [name for name, ok in self.verify().items() if not ok]
        if failed:
            raise ConfigurationError(f"AW design checks failed: {failed}")

    # -- reporting ------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        """Human-readable design summary for examples and docs."""
        from repro.units import pretty_power, pretty_time

        frac_a, frac_ae = self.ppa.idle_power_fraction_of_c0()
        return [
            "AgileWatts design point (Skylake-class 14 nm core):",
            f"  C6A idle power:  {pretty_power(self.c6a_power)} ({frac_a * 100:.1f}% of C0)",
            f"  C6AE idle power: {pretty_power(self.c6ae_power)} ({frac_ae * 100:.1f}% of C0)",
            f"  hw entry latency: {pretty_time(self.flow.entry_latency)}",
            f"  hw exit latency:  {pretty_time(self.flow.exit_latency)}",
            f"  hw round trip:    {pretty_time(self.hardware_round_trip)}",
            f"  vs C6 transition: {transition_speedup():.0f}x faster",
            f"  frequency penalty: {self.frequency_penalty * 100:.1f}%",
        ]
