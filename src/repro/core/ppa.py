"""Power-Performance-Area model for AgileWatts (Sec 5.1, Fig 7, Table 3).

Derives every Table 3 row from the subsystem models rather than quoting
the table: UFPG residual leakage and retention power, CCSM sleep-mode and
ungated-rest power, PMA controller power, ADPLL power, and the two FIVR
terms. The FIVR conversion loss applies to the components fed from the
core rail (UFPG residuals, retained context, caches); the PMA lives in
the uncore and the ADPLL has its own supply, so they are excluded from
the conversion-loss base — this reproduces the paper's 36-41 mW / 23-27 mW
inefficiency rows and the 290-315 mW / 227-243 mW overall band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PowerModelError
from repro.power.clock import ADPLL
from repro.power.pdn import FIVR
from repro.units import MILLIWATT, watts_to_mw

from repro.core.ccsm import CCSM
from repro.core.ufpg import UFPG

#: C6A controller power inside the PMA (Sec 5.1.3, scaled from [24]).
PMA_CONTROLLER_POWER = 5 * MILLIWATT

#: C6A controller area, bounded by 5% of the core's PMA area.
PMA_CONTROLLER_AREA_NOTE = "<5% of core PMA"


@dataclass(frozen=True)
class PPAEntry:
    """One Table 3 row.

    Attributes:
        component: top-level group (UFPG / CCSM / PMA Flow / ADPLL & FIVR).
        subcomponent: the specific row.
        area_note: the paper's qualitative area requirement.
        c6a_power: (low, high) watts contributed in C6A.
        c6ae_power: (low, high) watts contributed in C6AE.
        on_core_rail: True if the FIVR conversion loss applies to it.
    """

    component: str
    subcomponent: str
    area_note: str
    c6a_power: Tuple[float, float]
    c6ae_power: Tuple[float, float]
    on_core_rail: bool = True

    def __post_init__(self) -> None:
        for low, high in (self.c6a_power, self.c6ae_power):
            if not 0.0 <= low <= high:
                raise PowerModelError(
                    f"{self.subcomponent}: power range out of order ({low}, {high})"
                )


def _point(value: float) -> Tuple[float, float]:
    return (value, value)


@dataclass
class PPABreakdown:
    """The assembled Table 3 with range and midpoint queries."""

    entries: List[PPAEntry]
    area_overhead_range: Tuple[float, float]

    def total_power_range(self, state: str) -> Tuple[float, float]:
        """(low, high) total power for 'C6A' or 'C6AE'."""
        if state not in ("C6A", "C6AE"):
            raise PowerModelError(f"state must be C6A or C6AE, got {state!r}")
        lows = highs = 0.0
        for entry in self.entries:
            low, high = entry.c6a_power if state == "C6A" else entry.c6ae_power
            lows += low
            highs += high
        return (lows, highs)

    def total_power_mid(self, state: str) -> float:
        low, high = self.total_power_range(state)
        return (low + high) / 2.0

    @property
    def c6a_power(self) -> float:
        """Midpoint C6A power: ~0.3 W (matches Table 1's '~0.3 W')."""
        return self.total_power_mid("C6A")

    @property
    def c6ae_power(self) -> float:
        """Midpoint C6AE power: ~0.23 W (matches Table 1's '~0.23 W')."""
        return self.total_power_mid("C6AE")

    def rows(self) -> List[Tuple[str, str, str, str, str]]:
        """Render rows as strings for reports."""
        out = []
        for e in self.entries:
            c6a = f"{watts_to_mw(e.c6a_power[0]):.0f}-{watts_to_mw(e.c6a_power[1]):.0f} mW"
            c6ae = f"{watts_to_mw(e.c6ae_power[0]):.0f}-{watts_to_mw(e.c6ae_power[1]):.0f} mW"
            out.append((e.component, e.subcomponent, e.area_note, c6a, c6ae))
        low, high = self.total_power_range("C6A")
        low_e, high_e = self.total_power_range("C6AE")
        area_low, area_high = self.area_overhead_range
        out.append(
            (
                "Overall",
                "",
                f"{area_low * 100:.0f}-{area_high * 100:.0f}% of the core area",
                f"{watts_to_mw(low):.0f}-{watts_to_mw(high):.0f} mW",
                f"{watts_to_mw(low_e):.0f}-{watts_to_mw(high_e):.0f} mW",
            )
        )
        return out


class PPAModel:
    """Builds the Table 3 breakdown from the subsystem models."""

    def __init__(
        self,
        ufpg: Optional[UFPG] = None,
        ccsm: Optional[CCSM] = None,
        adpll: Optional[ADPLL] = None,
        fivr: Optional[FIVR] = None,
    ):
        self.ufpg = ufpg if ufpg is not None else UFPG()
        self.ccsm = ccsm if ccsm is not None else CCSM()
        self.adpll = adpll if adpll is not None else ADPLL()
        self.fivr = fivr if fivr is not None else FIVR()

    def _component_entries(self) -> List[PPAEntry]:
        ufpg_area_low, ufpg_area_high = self.ufpg.area_overhead_range()
        ccsm_area_low, ccsm_area_high = self.ccsm.area_overhead_range()
        # unused in entries directly; totals use them via area range
        del ufpg_area_low, ufpg_area_high, ccsm_area_low, ccsm_area_high

        entries = [
            PPAEntry(
                component="UFPG",
                subcomponent="unit power-gates (~70% of the core)",
                area_note="2-6% of power-gated area",
                c6a_power=self.ufpg.residual_power_range("P1"),
                c6ae_power=self.ufpg.residual_power_range("Pn"),
            ),
            PPAEntry(
                component="UFPG",
                subcomponent="in-place context (ungated regs, SRPG, SRAM)",
                area_note="<1% of protected structures",
                c6a_power=_point(self.ufpg.retention_power("P1")),
                c6ae_power=_point(self.ufpg.retention_power("Pn")),
            ),
            PPAEntry(
                component="CCSM",
                subcomponent="L1/L2 data arrays in sleep-mode",
                area_note="2-6% of private cache area",
                c6a_power=_point(self.ccsm.data_array_sleep_power("P1")),
                c6ae_power=_point(self.ccsm.data_array_sleep_power("Pn")),
            ),
            PPAEntry(
                component="CCSM",
                subcomponent="rest of the memory subsystem (ctl, tags)",
                area_note="<1% of the ungated units",
                c6a_power=_point(self.ccsm.ungated_rest_power("P1")),
                c6ae_power=_point(self.ccsm.ungated_rest_power("Pn")),
            ),
            PPAEntry(
                component="PMA Flow",
                subcomponent="C6A controller FSM (in the uncore)",
                area_note=PMA_CONTROLLER_AREA_NOTE,
                c6a_power=_point(PMA_CONTROLLER_POWER),
                c6ae_power=_point(PMA_CONTROLLER_POWER),
                on_core_rail=False,
            ),
            PPAEntry(
                component="ADPLL & FIVR",
                subcomponent="ADPLL (kept locked)",
                area_note="0%",
                c6a_power=_point(self.adpll.power_watts),
                c6ae_power=_point(self.adpll.power_watts),
                on_core_rail=False,
            ),
        ]
        return entries

    def build(self) -> PPABreakdown:
        """Assemble the full Table 3 including the FIVR terms."""
        entries = self._component_entries()

        # FIVR conversion loss on the power delivered through the core rail.
        rail_low = sum(e.c6a_power[0] for e in entries if e.on_core_rail)
        rail_high = sum(e.c6a_power[1] for e in entries if e.on_core_rail)
        rail_low_e = sum(e.c6ae_power[0] for e in entries if e.on_core_rail)
        rail_high_e = sum(e.c6ae_power[1] for e in entries if e.on_core_rail)

        entries.append(
            PPAEntry(
                component="ADPLL & FIVR",
                subcomponent="core FIVR inefficiency (~80% efficiency)",
                area_note="0%",
                c6a_power=(
                    self.fivr.conversion_loss(rail_low),
                    self.fivr.conversion_loss(rail_high),
                ),
                c6ae_power=(
                    self.fivr.conversion_loss(rail_low_e),
                    self.fivr.conversion_loss(rail_high_e),
                ),
                on_core_rail=False,
            )
        )
        entries.append(
            PPAEntry(
                component="ADPLL & FIVR",
                subcomponent="FIVR static losses",
                area_note="0%",
                c6a_power=_point(self.fivr.static_loss_watts),
                c6ae_power=_point(self.fivr.static_loss_watts),
                on_core_rail=False,
            )
        )

        ufpg_low, ufpg_high = self.ufpg.area_overhead_range()
        ccsm_low, ccsm_high = self.ccsm.area_overhead_range()
        area_range = (ufpg_low + ccsm_low, ufpg_high + ccsm_high)
        return PPABreakdown(entries=entries, area_overhead_range=area_range)

    def idle_power_fraction_of_c0(self, c0_power: float = 4.0) -> Tuple[float, float]:
        """C6A / C6AE idle power as a fraction of C0 (paper: 7% and 5%)."""
        breakdown = self.build()
        return (
            breakdown.c6a_power / c0_power,
            breakdown.c6ae_power / c0_power,
        )
