"""Transition-latency derivations (Sec 3 'Core C6 Entry/Exit Latency' and
Sec 5.2 'C6A and C6AE Latency').

The C6 numbers are derived from first principles rather than hard-coded:

- entry is dominated by the L1/L2 flush, which depends on the dirty
  fraction and core frequency (flushing a 50% dirty ~1.1 MB cache at
  800 MHz takes ~75 us), plus ~9 us to serialise the ~8 KB context to the
  uncore save/restore SRAM, plus control overhead — ~87 us total;
- exit is ~10 us of hardware wake (power-ungate, PLL relock, reset, fuse
  propagation) plus ~20 us of state/microcode restore, plus OS/software
  overhead for the worst-case 133 us Table 1 round trip.

The C6A numbers come from the PMA flow model
(:class:`repro.core.pma_flow.C6AFlow`): < 20 ns entry, < 80 ns exit —
three orders of magnitude below C6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PowerModelError
from repro.power.clock import ADPLL
from repro.power.retention import CORE_CONTEXT_BYTES
from repro.units import MHZ, US

from repro.core.pma_flow import C6AFlow

#: C6 flush/save happens at the minimum operational frequency (800 MHz).
C6_FLOW_FREQUENCY_HZ = 800 * MHZ

#: Cache-line granularity of the flush walk.
CACHE_LINE_BYTES = 64

#: Cycles to scan one line's tag/state during the flush walk.
FLUSH_SCAN_CYCLES_PER_LINE = 1.0

#: Average cycles to write back one dirty line (bandwidth-limited).
FLUSH_WRITEBACK_CYCLES_PER_LINE = 4.5

#: Cycles per byte to serialise context to the uncore S/R SRAM (~9 us for
#: 8 KB at 800 MHz).
SR_CYCLES_PER_BYTE = 0.88


@dataclass(frozen=True)
class CacheFlushModel:
    """Flush time of the private caches as a function of dirtiness and f.

    ``flush_time = (lines * scan + dirty_lines * writeback) / frequency``.
    """

    capacity_bytes: float = 1.125 * 1024 * 1024  # 64 KB L1 + 1 MB L2 + tags
    line_bytes: int = CACHE_LINE_BYTES
    scan_cycles: float = FLUSH_SCAN_CYCLES_PER_LINE
    writeback_cycles: float = FLUSH_WRITEBACK_CYCLES_PER_LINE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise PowerModelError("cache geometry must be positive")
        if self.scan_cycles < 0 or self.writeback_cycles < 0:
            raise PowerModelError("cycle costs must be >= 0")

    @property
    def lines(self) -> int:
        return int(self.capacity_bytes // self.line_bytes)

    def flush_time(self, dirty_fraction: float, frequency_hz: float) -> float:
        """Seconds to flush with ``dirty_fraction`` of lines dirty.

        Raises:
            PowerModelError: if dirty_fraction outside [0, 1] or f <= 0.
        """
        if not 0.0 <= dirty_fraction <= 1.0:
            raise PowerModelError(
                f"dirty fraction must be in [0, 1], got {dirty_fraction}"
            )
        if frequency_hz <= 0:
            raise PowerModelError("frequency must be positive")
        cycles = self.lines * self.scan_cycles
        cycles += self.lines * dirty_fraction * self.writeback_cycles
        return cycles / frequency_hz


@dataclass(frozen=True)
class C6LatencyModel:
    """C6 entry/exit latency, built from its flow (Fig 3b).

    Attributes:
        flush: the cache-flush model.
        dirty_fraction: assumed dirtiness at entry (paper example: 50%).
        frequency_hz: frequency during entry/exit flows (800 MHz).
        control_overhead: flow control + power-gate controller time on the
            entry path (~3 us).
        hardware_wake: power-ungate + PLL relock + reset + fuse propagation
            (~10 us).
        restore_time: state + microcode restoration (~20 us).
        software_overhead: OS/driver entry+exit overhead that makes the
            worst-case Table 1 number (133 us) exceed entry+exit hw time.
    """

    flush: CacheFlushModel = CacheFlushModel()
    dirty_fraction: float = 0.50
    frequency_hz: float = C6_FLOW_FREQUENCY_HZ
    context_bytes: int = CORE_CONTEXT_BYTES
    control_overhead: float = 3 * US
    hardware_wake: float = 10 * US
    restore_time: float = 20 * US
    software_overhead: float = 16 * US

    def context_save_time(self) -> float:
        """Serialise ~8 KB to the uncore S/R SRAM: ~9 us at 800 MHz."""
        cycles = self.context_bytes * SR_CYCLES_PER_BYTE
        return cycles / self.frequency_hz

    @property
    def entry_latency(self) -> float:
        """Flush + context save + control: ~87 us at the defaults."""
        return (
            self.flush.flush_time(self.dirty_fraction, self.frequency_hz)
            + self.context_save_time()
            + self.control_overhead
        )

    @property
    def exit_latency(self) -> float:
        """Hardware wake + state/ucode restore: ~30 us at the defaults."""
        return self.hardware_wake + self.restore_time

    @property
    def transition_time(self) -> float:
        """Worst-case software-visible round trip: ~133 us (Table 1)."""
        return self.entry_latency + self.exit_latency + self.software_overhead

    def breakdown(self) -> Dict[str, float]:
        """Per-phase latencies, for the latency-breakdown experiment."""
        return {
            "flush_l1_l2": self.flush.flush_time(self.dirty_fraction, self.frequency_hz),
            "context_save": self.context_save_time(),
            "entry_control": self.control_overhead,
            "hardware_wake": self.hardware_wake,
            "state_ucode_restore": self.restore_time,
            "software_overhead": self.software_overhead,
        }


@dataclass
class C6ALatencyModel:
    """C6A/C6AE hardware latency, delegated to the PMA flow model."""

    flow: C6AFlow = None

    def __post_init__(self) -> None:
        if self.flow is None:
            self.flow = C6AFlow()

    @property
    def entry_latency(self) -> float:
        return self.flow.entry_latency

    @property
    def exit_latency(self) -> float:
        return self.flow.exit_latency

    @property
    def transition_time(self) -> float:
        return self.flow.round_trip_latency

    def breakdown(self) -> Dict[str, float]:
        steps = {}
        for step in self.flow.entry_steps() + self.flow.exit_steps():
            steps[step.label] = step.latency
        return steps


def transition_speedup(
    c6: C6LatencyModel = None, c6a: C6ALatencyModel = None
) -> float:
    """How many times faster C6A's hardware transition is than C6's.

    The paper headline is "up to 900x"; with the default models the
    hardware-only ratio lands in the same three-orders-of-magnitude band.
    """
    c6 = c6 if c6 is not None else C6LatencyModel()
    c6a = c6a if c6a is not None else C6ALatencyModel()
    return c6.transition_time / c6a.transition_time


def pll_relock_saving(adpll: ADPLL = None) -> float:
    """Exit-latency saving from keeping the ADPLL locked (AW's third idea)."""
    adpll = adpll if adpll is not None else ADPLL()
    return adpll.relock_time
