"""Units' Fast Power-Gating (UFPG) — Sec 4.1 and 5.1.1.

UFPG is AW's first key idea: place ~70% of the core area behind
medium-grained power gates (the same technique Intel uses for the AVX-256/
AVX-512 units), and retain the ~8 KB of core context *in place* instead of
serialising it to an uncore SRAM. The result is a power-off/on path of tens
of nanoseconds instead of tens of microseconds.

This module combines the substrate pieces:

- the five-zone staggered power-gate fabric (:mod:`repro.power.powergate`),
- the in-place retention plan (:mod:`repro.power.retention`),
- the leakage model (:mod:`repro.power.leakage`),

and exposes the quantities Table 3 reports: residual leakage (~30-50 mW at
P1, ~18-30 mW at Pn), retention power (~2 mW / ~1 mW) and area overhead
(2-6% of the gated region plus <1% for retention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import PowerModelError
from repro.power.leakage import LeakageModel
from repro.power.powergate import UFPG_TO_AVX_AREA_RATIO, ZonedPowerGating
from repro.power.retention import RetentionPlan

from repro.core.cstates import C1_POWER

#: Nominal (P1) and minimum-operational (Pn) rail voltages for the 14 nm
#: Skylake-class core; the ratio reproduces the paper's P1->Pn leakage drop.
V_P1 = 1.00
V_PN = 0.78


@dataclass(frozen=True)
class UFPGConfig:
    """Parameters of the UFPG subsystem.

    Attributes:
        gated_area_fraction: share of core area behind the new gates
            (~70%, measured on the Fig 4 die photo).
        gated_leakage_fraction: share of core leakage those units
            contribute (~70%, from the Intel core-power-breakdown tool).
        core_leakage_watts: full-core leakage at P1 — approximately the C1
            power, since C1 removes only dynamic power (Sec 5.1.1 footnote).
        residual_low / residual_high: power gates eliminate 95-97% of
            leakage, leaving 3-5% residual.
        area_overhead_low / area_overhead_high: gates add 2-6% to the
            gated area.
        frequency_penalty: worst-case frequency loss from power-gate IR
            drop; an x86 core power-gate implementation costs <1% [93].
        zones: staggered wake-up zones (Sec 5.3).
    """

    gated_area_fraction: float = 0.70
    gated_leakage_fraction: float = 0.70
    core_leakage_watts: float = C1_POWER
    residual_low: float = 0.03
    residual_high: float = 0.05
    area_overhead_low: float = 0.02
    area_overhead_high: float = 0.06
    frequency_penalty: float = 0.01
    zones: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.gated_area_fraction <= 1.0:
            raise PowerModelError("gated_area_fraction must be in (0, 1]")
        if not 0.0 < self.gated_leakage_fraction <= 1.0:
            raise PowerModelError("gated_leakage_fraction must be in (0, 1]")
        if self.core_leakage_watts <= 0:
            raise PowerModelError("core leakage must be positive")
        if not 0.0 <= self.residual_low <= self.residual_high <= 1.0:
            raise PowerModelError("need 0 <= residual_low <= residual_high <= 1")
        if not 0.0 <= self.area_overhead_low <= self.area_overhead_high:
            raise PowerModelError("area overhead bounds out of order")
        if not 0.0 <= self.frequency_penalty < 0.1:
            raise PowerModelError("frequency penalty expected to be < 10%")
        if self.zones < 1:
            raise PowerModelError("need at least one wake-up zone")


class UFPG:
    """The UFPG subsystem of one core."""

    def __init__(
        self,
        config: UFPGConfig = UFPGConfig(),
        retention: RetentionPlan = None,
    ):
        self.config = config
        self.retention = retention if retention is not None else RetentionPlan.default_skylake()
        self.fabric = ZonedPowerGating(
            zones=config.zones,
            total_relative_area=UFPG_TO_AVX_AREA_RATIO,
        )
        # Effectiveness midpoint consistent with the residual band.
        mid_residual = (config.residual_low + config.residual_high) / 2.0
        self._leakage = LeakageModel(
            full_leakage_watts=config.core_leakage_watts,
            gate_effectiveness=1.0 - mid_residual,
        )

    # -- power -------------------------------------------------------------
    def _gated_leakage_at(self, voltage: float) -> float:
        """Leakage of the gated units at a rail voltage (quadratic scaling)."""
        scale = (voltage / V_P1) ** 2
        return (
            self.config.core_leakage_watts
            * self.config.gated_leakage_fraction
            * scale
        )

    def residual_power_range(self, rail: str = "P1") -> Tuple[float, float]:
        """(low, high) residual leakage of the gated region on ``rail``.

        Table 3 alpha row: ~30-50 mW at P1, ~18-30 mW at Pn.
        """
        voltage = {"P1": V_P1, "Pn": V_PN}.get(rail)
        if voltage is None:
            raise PowerModelError(f"unknown rail {rail!r}")
        gated = self._gated_leakage_at(voltage)
        return (gated * self.config.residual_low, gated * self.config.residual_high)

    def residual_power(self, rail: str = "P1") -> float:
        """Midpoint residual leakage on ``rail`` (for point estimates)."""
        low, high = self.residual_power_range(rail)
        return (low + high) / 2.0

    def retention_power(self, rail: str = "P1") -> float:
        """In-place context retention power: ~2 mW (P1) / ~1 mW (Pn)."""
        return self.retention.retention_power(rail)

    def idle_power(self, rail: str = "P1") -> float:
        """Total UFPG contribution to C6A/C6AE idle power."""
        return self.residual_power(rail) + self.retention_power(rail)

    # -- latency ------------------------------------------------------------
    @property
    def wake_latency(self) -> float:
        """Staggered power-ungate latency: < 70 ns with 5 zones."""
        return self.fabric.wake_latency

    @property
    def save_cycles(self) -> int:
        """Controller cycles to save context in place (3-4: Ret then Pwr)."""
        return self.retention.save_cycles

    @property
    def restore_cycles(self) -> int:
        """Controller cycles to restore context (deassert Ret): 1."""
        return self.retention.restore_cycles

    # -- area -----------------------------------------------------------------
    def area_overhead_range(self) -> Tuple[float, float]:
        """(low, high) extra core area from gates + retention.

        Gates add 2-6% of the gated ~70% region (1.4-4.2% of core); all
        three retention techniques add <1% each of their own footprint,
        which we bound by 1% of the gated region.
        """
        gate_low = self.config.area_overhead_low * self.config.gated_area_fraction
        gate_high = self.config.area_overhead_high * self.config.gated_area_fraction
        retention_bound = 0.01 * self.config.gated_area_fraction
        return (gate_low, gate_high + retention_bound)

    @property
    def frequency_penalty(self) -> float:
        """Fractional fmax loss from power-gate IR drop (~1%)."""
        return self.config.frequency_penalty

    @property
    def in_rush_safe(self) -> bool:
        """The zone split respects the AVX-calibrated in-rush budget."""
        return self.fabric.in_rush_safe
