"""`repro bench`: reproducible benchmark runs with a regression gate.

The ``benchmarks/`` suite (pytest-benchmark) tracks the performance of the
simulation substrate — event-engine throughput, the 100 KQPS server-node
run, the streaming-arrival heap bound, sweep executors, cluster composition.
This module gives those benchmarks a machine-readable trajectory:

- :func:`run_suite` executes a named subset through pytest and reduces the
  pytest-benchmark JSON to a compact ``BENCH_<suite>.json`` document;
- :func:`compare_results` gates the current numbers against a committed
  baseline (``benchmarks/BENCH_baseline.json``) with a relative tolerance,
  so speedups — this PR's 3x server-node win, PR 1's heap bound — become
  enforced floors instead of release-note trivia.

Comparisons use each benchmark's *minimum* observed time: the minimum is
the least noise-sensitive location statistic for a benchmark (noise is
strictly additive), which matters when the gate runs on shared CI
hardware.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

#: Schema marker for BENCH_*.json documents.
BENCH_SCHEMA = 1

#: Named benchmark suites (files relative to the repository root).
#: ``--quick`` maps to ``simulator`` — the substrate microbenchmarks that
#: finish in seconds and cover the hot path this gate protects.
SUITES: Dict[str, List[str]] = {
    "simulator": ["benchmarks/test_bench_simulator.py"],
    "sweep": ["benchmarks/test_bench_sweep.py"],
    "cluster": ["benchmarks/test_bench_cluster.py"],
    # Fleet-scale sharded execution; minutes per round at full size.
    # Set REPRO_BENCH_QUICK=1 for the CI-sized replica (distinct
    # benchmark names, so quick numbers never gate full-size floors).
    "cluster_sharded": ["benchmarks/test_bench_cluster_sharded.py"],
    # Telemetry-probe overhead: probes-off must track the committed
    # floor (regression gate), probes-on tracks the sampling cost.
    "obs_overhead": ["benchmarks/test_bench_obs.py"],
    # "all" enumerates every file except the fleet-scale suite above:
    # that one takes minutes per round at full size and must stay an
    # explicit opt-in, not a surprise inside the default run.
    "all": [
        "benchmarks/test_bench_simulator.py",
        "benchmarks/test_bench_sweep.py",
        "benchmarks/test_bench_cluster.py",
        "benchmarks/test_bench_obs.py",
        "benchmarks/test_bench_extensions.py",
        "benchmarks/test_bench_fig8.py",
        "benchmarks/test_bench_fig9_fig10.py",
        "benchmarks/test_bench_fig11.py",
        "benchmarks/test_bench_fig12_fig13.py",
        "benchmarks/test_bench_table5_validation.py",
        "benchmarks/test_bench_tables.py",
    ],
}

#: Default relative regression tolerance (fraction of the baseline time).
DEFAULT_TOLERANCE = 0.25

#: Benchmarks whose baseline minimum is below this many seconds are too
#: noise-dominated to gate on relative tolerance (a 50 us microbench can
#: jitter 2x from scheduler noise alone); they are compared but reported
#: as informational, never as failures.
GATE_FLOOR_SECONDS = 1e-3

#: Default committed baseline location, relative to the repository root.
BASELINE_RELPATH = os.path.join("benchmarks", "BENCH_baseline.json")


def find_repo_root() -> str:
    """The directory holding ``benchmarks/``: cwd, or the source checkout.

    Raises:
        ConfigurationError: if no benchmarks directory can be located.
    """
    candidates = [
        os.getcwd(),
        # src/repro/bench.py -> src/repro -> src -> repo root
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    ]
    for root in candidates:
        if os.path.isdir(os.path.join(root, "benchmarks")):
            return root
    raise ConfigurationError(
        "cannot locate the benchmarks/ directory; run from the repository "
        "root or a source checkout"
    )


def _reduce_benchmark_json(data: Dict[str, object], suite: str) -> Dict[str, object]:
    """Compact a pytest-benchmark JSON document to the BENCH schema."""
    results: Dict[str, Dict[str, object]] = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        results[bench["name"]] = {
            "min_s": stats["min"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "results": results,
    }


def run_suite(suite: str, root: Optional[str] = None) -> Dict[str, object]:
    """Run one named suite under pytest-benchmark; return the BENCH doc.

    Raises:
        ConfigurationError: on an unknown suite name, a failing benchmark
            run, or a benchmark run that produced no results.
    """
    import pytest

    if suite not in SUITES:
        raise ConfigurationError(
            f"unknown bench suite {suite!r}; choose from {sorted(SUITES)}"
        )
    root = root or find_repo_root()
    paths = [os.path.join(root, p) for p in SUITES[suite]]
    for path in paths:
        if not os.path.exists(path):
            raise ConfigurationError(f"benchmark path {path} does not exist")
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        json_path = os.path.join(tmp, "bench.json")
        code = pytest.main(
            ["-q", "--benchmark-only", f"--benchmark-json={json_path}", *paths]
        )
        if code != 0:
            raise ConfigurationError(f"benchmark run failed (pytest exit {code})")
        try:
            with open(json_path) as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"benchmark run produced no readable JSON: {exc}"
            ) from exc
    doc = _reduce_benchmark_json(raw, suite)
    if not doc["results"]:
        raise ConfigurationError(f"suite {suite!r} produced no benchmark results")
    return doc


def load_bench(path: str) -> Dict[str, object]:
    """Read a BENCH_*.json document.

    Raises:
        ConfigurationError: on unreadable files or foreign schemas.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read bench file {path}: {exc}") from exc
    schema = data.get("schema") if isinstance(data, dict) else None
    if schema != BENCH_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a BENCH document (schema {schema!r}, "
            f"expected {BENCH_SCHEMA})"
        )
    return data


def write_bench(doc: Dict[str, object], path: str) -> None:
    """Write a BENCH document (stable key order, trailing newline)."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_results(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, List[Dict[str, object]]]:
    """Gate ``current`` against ``baseline``.

    Returns a report dict with three lists:

    - ``regressions``: benchmarks whose min time exceeds baseline by more
      than ``tolerance`` (fractional);
    - ``improvements``: benchmarks at least ``tolerance`` faster (candidates
      for a baseline refresh, so the better number becomes the new floor);
    - ``ungated``: benchmarks whose baseline minimum sits below
      :data:`GATE_FLOOR_SECONDS` — too noise-dominated for a relative
      gate, reported for trajectory only;
    - ``missing``: baseline benchmarks the current run did not execute
      (compared suites only partially overlap — e.g. ``--quick`` vs a
      full-suite baseline — so missing entries are informational);
    - ``unbaselined``: benchmarks the current run executed that the
      baseline has no entry for — newly added benchmarks are ungated
      until ``--update-baseline`` records a floor for them, and this
      list makes that state visible instead of silent.

    Raises:
        ConfigurationError: on a negative tolerance.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    report: Dict[str, List[Dict[str, object]]] = {
        "regressions": [],
        "improvements": [],
        "ungated": [],
        "missing": [],
        "unbaselined": [],
    }
    current_results = current.get("results", {})
    baseline_results = baseline.get("results", {})
    for name in sorted(set(current_results) - set(baseline_results)):
        report["unbaselined"].append({"name": name})
    for name, base in sorted(baseline_results.items()):
        cur = current_results.get(name)
        if cur is None:
            report["missing"].append({"name": name})
            continue
        base_min = float(base["min_s"])
        cur_min = float(cur["min_s"])
        if base_min <= 0:
            continue  # degenerate baseline entry; nothing to gate against
        ratio = cur_min / base_min
        entry = {
            "name": name,
            "baseline_min_s": base_min,
            "current_min_s": cur_min,
            "ratio": ratio,
        }
        if base_min < GATE_FLOOR_SECONDS:
            report["ungated"].append(entry)
        elif ratio > 1.0 + tolerance:
            report["regressions"].append(entry)
        elif ratio < 1.0 - tolerance:
            report["improvements"].append(entry)
    return report


def render_report(
    report: Dict[str, List[Dict[str, object]]], tolerance: float
) -> str:
    """Human-readable comparison summary."""
    lines: List[str] = []
    for entry in report["regressions"]:
        lines.append(
            f"REGRESSION {entry['name']}: {entry['current_min_s'] * 1e3:.2f} ms "
            f"vs baseline {entry['baseline_min_s'] * 1e3:.2f} ms "
            f"({entry['ratio']:.2f}x, tolerance {1.0 + tolerance:.2f}x)"
        )
    for entry in report["improvements"]:
        lines.append(
            f"improvement {entry['name']}: {entry['current_min_s'] * 1e3:.2f} ms "
            f"vs baseline {entry['baseline_min_s'] * 1e3:.2f} ms "
            f"({entry['ratio']:.2f}x)"
        )
    for entry in report["ungated"]:
        lines.append(
            f"ungated {entry['name']}: {entry['current_min_s'] * 1e6:.0f} us "
            f"vs baseline {entry['baseline_min_s'] * 1e6:.0f} us "
            f"(sub-{GATE_FLOOR_SECONDS * 1e3:.0f}ms microbench, trajectory only)"
        )
    for entry in report["missing"]:
        lines.append(f"not run: {entry['name']} (in baseline, absent here)")
    for entry in report["unbaselined"]:
        lines.append(
            f"no baseline for {entry['name']}: this benchmark is ungated — "
            "record a floor with `repro bench --update-baseline`"
        )
    if not lines:
        lines.append(f"all benchmarks within {tolerance * 100:.0f}% of baseline")
    return "\n".join(lines)


def update_baseline(
    doc: Dict[str, object], baseline_path: str
) -> Dict[str, object]:
    """Merge ``doc``'s results into the baseline file (created if absent).

    Per-benchmark entries are replaced wholesale; benchmarks only present
    in the old baseline are kept, so refreshing from a ``--quick`` run
    does not drop the full-suite entries.
    """
    if os.path.exists(baseline_path):
        merged = load_bench(baseline_path)
    else:
        merged = {
            "schema": BENCH_SCHEMA,
            "suite": "baseline",
            "machine": doc["machine"],
            "results": {},
        }
    merged["machine"] = doc["machine"]
    merged["results"].update(doc["results"])
    write_bench(merged, baseline_path)
    return merged


def main(
    suite: Optional[str],
    quick: bool = False,
    out: Optional[str] = None,
    baseline: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    do_update_baseline: bool = False,
    no_compare: bool = False,
    stderr=None,
) -> int:
    """CLI entry point for ``repro bench``. Returns an exit code."""
    stderr = stderr if stderr is not None else sys.stderr
    if suite is None:
        suite = "simulator" if quick else "all"
    try:
        root = find_repo_root()
        doc = run_suite(suite, root=root)
    except ConfigurationError as exc:
        print(f"bench failed: {exc}", file=stderr)
        return 1

    out_path = out or f"BENCH_{suite}.json"
    write_bench(doc, out_path)
    print(f"wrote {len(doc['results'])} benchmark result(s) to {out_path}")

    baseline_path = baseline or os.path.join(root, BASELINE_RELPATH)
    if do_update_baseline:
        update_baseline(doc, baseline_path)
        print(f"updated baseline {baseline_path}")
        return 0
    if no_compare:
        return 0
    if not os.path.exists(baseline_path):
        print(
            f"no baseline at {baseline_path}; run `repro bench "
            "--update-baseline` to create one",
            file=stderr,
        )
        return 1
    try:
        base_doc = load_bench(baseline_path)
        report = compare_results(doc, base_doc, tolerance)
    except ConfigurationError as exc:
        print(f"bench comparison failed: {exc}", file=stderr)
        return 1
    if base_doc.get("machine") != doc.get("machine"):
        # Absolute wall-clock comparisons only mean something on matched
        # hardware/interpreter; flag the mismatch rather than silently
        # gating against a different machine's floor.
        print(
            f"warning: baseline machine {base_doc.get('machine')} differs "
            f"from this machine {doc.get('machine')}; timings are not "
            "directly comparable — consider `repro bench --update-baseline` "
            "on this machine",
            file=stderr,
        )
    print(render_report(report, tolerance))
    return 1 if report["regressions"] else 0
