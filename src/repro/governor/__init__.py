"""OS-level power governance substrate.

- :mod:`~repro.governor.idle` — idle-state (C-state) governors: a
  menu-style EWMA predictor plus fixed/oracle policies.
- :mod:`~repro.governor.pstates` — P-state (DVFS) table and policies.
"""

from repro.governor.idle import (
    FixedGovernor,
    IdleGovernor,
    MenuGovernor,
    OracleGovernor,
    ReplayOracleGovernor,
)
from repro.governor.pstates import PState, PStateTable

__all__ = [
    "FixedGovernor",
    "IdleGovernor",
    "MenuGovernor",
    "OracleGovernor",
    "ReplayOracleGovernor",
    "PState",
    "PStateTable",
]
