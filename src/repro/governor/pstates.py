"""P-state (DVFS) table.

P-states set the core's voltage/frequency while *active*; they are
orthogonal to C-states (which apply while idle) but interact with them:
C1E and C6AE include a DVFS transition to Pn, and Turbo is an
opportunistic P-state above base. The paper's evaluation keeps software
P-state management disabled (frequency pinned at P1) and studies Turbo
separately, which this table supports via ``software_control``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cstates import FrequencyPoint, active_power
from repro.errors import ConfigurationError
from repro.units import US


@dataclass(frozen=True)
class PState:
    """One DVFS operating point.

    Attributes:
        name: "P1", "Pn", "Turbo".
        frequency: the frequency point.
        transition_latency: DVFS switch time into this state (the C1E
            entry's dominant component: tens of microseconds [107]).
    """

    name: str
    frequency: FrequencyPoint
    transition_latency: float

    def __post_init__(self) -> None:
        if self.transition_latency < 0:
            raise ConfigurationError(f"{self.name}: transition latency must be >= 0")

    @property
    def power_watts(self) -> float:
        """Active (C0) power at this operating point."""
        return active_power(self.frequency)


class PStateTable:
    """The modelled Xeon's P-states with software-control gating."""

    def __init__(self, software_control: bool = False, turbo_enabled: bool = True):
        self.software_control = software_control
        self.turbo_enabled = turbo_enabled
        self._states: Dict[str, PState] = {
            "P1": PState("P1", FrequencyPoint.P1, transition_latency=12 * US),
            "Pn": PState("Pn", FrequencyPoint.PN, transition_latency=12 * US),
            "Turbo": PState("Turbo", FrequencyPoint.TURBO, transition_latency=12 * US),
        }

    def get(self, name: str) -> PState:
        if name not in self._states:
            raise ConfigurationError(f"unknown P-state {name!r}")
        if name == "Turbo" and not self.turbo_enabled:
            raise ConfigurationError("Turbo is disabled in this configuration")
        return self._states[name]

    @property
    def states(self) -> List[PState]:
        names = ["P1", "Pn"] + (["Turbo"] if self.turbo_enabled else [])
        return [self._states[n] for n in names]

    def operating_point(self) -> PState:
        """The pinned point when software P-state control is disabled."""
        if self.software_control:
            raise ConfigurationError(
                "operating_point() is only defined with software control off"
            )
        return self._states["P1"]

    def dvfs_latency(self, from_name: str, to_name: str) -> float:
        """Latency of switching between two P-states."""
        self.get(from_name)
        return self.get(to_name).transition_latency
