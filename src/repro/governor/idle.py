"""Idle-state governors.

When a core runs out of work the OS executes MWAIT with a target C-state
chosen by the *idle governor*. Linux's ``menu`` governor predicts the
upcoming idle interval from recent history and picks the deepest state
whose target residency fits the prediction (and whose exit latency fits
any QoS constraint). That prediction problem is the crux of the paper's
motivation: latency-critical services have irregular idle intervals, so
governors under-select deep states — C6A removes the dilemma by making the
deep state cheap to guess wrong on.

Three policies are provided:

- :class:`MenuGovernor` — EWMA idle-duration predictor, the default.
- :class:`FixedGovernor` — always pick one named state (Sec 7.5-style
  bounds and the "C1-only" configurations).
- :class:`OracleGovernor` — told the actual upcoming idle duration
  (upper-bound studies).
- :class:`ReplayOracleGovernor` — a drop-in oracle for simulators that
  only report idle durations *after* the fact (the ``"oracle"`` entry in
  :data:`repro.sweep.spec.GOVERNOR_FACTORIES`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.cstates import CState, CStateCatalog
from repro.errors import ConfigurationError


class IdleGovernor:
    """Interface: observe idle durations, choose C-states."""

    def observe_idle(self, duration: float) -> None:
        """Record a completed idle interval (wake time - idle-entry time)."""

    def choose(self, catalog: CStateCatalog, hint: Optional[float] = None) -> CState:
        """Select an idle state from ``catalog``.

        Args:
            hint: oracle knowledge of the upcoming idle duration, if the
                caller has it (ignored by history-based governors).
        """
        raise NotImplementedError


class MenuGovernor(IdleGovernor):
    """Menu-style governor: EWMA prediction + target-residency selection.

    The predictor is an exponentially-weighted moving average of observed
    idle durations, discounted by ``caution`` (<= 1.0) because the cost of
    over-predicting (entering a deep state then waking early) is the deep
    state's full exit latency, while under-predicting only forfeits some
    savings. Linux's menu governor applies a similar correction factor.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        caution: float = 0.5,
        latency_limit: Optional[float] = None,
        initial_prediction: float = 1e-3,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < caution <= 1.0:
            raise ConfigurationError(f"caution must be in (0, 1], got {caution}")
        if latency_limit is not None and latency_limit < 0:
            raise ConfigurationError("latency limit must be >= 0")
        if initial_prediction < 0:
            raise ConfigurationError("initial prediction must be >= 0")
        self.alpha = alpha
        self.caution = caution
        self.latency_limit = latency_limit
        self._ewma = initial_prediction
        self._observations = 0

    @property
    def predicted_idle(self) -> float:
        """Current (cautious) idle-duration prediction."""
        return self._ewma * self.caution

    @property
    def observations(self) -> int:
        return self._observations

    def observe_idle(self, duration: float) -> None:
        if duration < 0:
            raise ConfigurationError(f"idle duration must be >= 0, got {duration}")
        self._ewma = self.alpha * duration + (1.0 - self.alpha) * self._ewma
        self._observations += 1

    def choose(self, catalog: CStateCatalog, hint: Optional[float] = None) -> CState:
        return catalog.select(self.predicted_idle, self.latency_limit)


class FixedGovernor(IdleGovernor):
    """Always selects one named state.

    Falls back to the catalog's shallowest enabled state when the named
    state is disabled or absent (e.g. "C1" against an AW catalog, whose
    shallowest state is C6A).
    """

    def __init__(self, state_name: str):
        self.state_name = state_name

    def choose(self, catalog: CStateCatalog, hint: Optional[float] = None) -> CState:
        if self.state_name not in catalog:
            return catalog.shallowest()
        state = catalog.get(self.state_name)
        if not catalog.is_enabled(state.name):
            return catalog.shallowest()
        return state


class OracleGovernor(IdleGovernor):
    """Knows the upcoming idle duration exactly (via ``hint``).

    Selects the deepest state whose target residency fits the *actual*
    idle span — the best any history-based policy could do. Used for the
    upper-bound savings analyses.
    """

    def __init__(self, latency_limit: Optional[float] = None):
        if latency_limit is not None and latency_limit < 0:
            raise ConfigurationError("latency limit must be >= 0")
        self.latency_limit = latency_limit

    def choose(self, catalog: CStateCatalog, hint: Optional[float] = None) -> CState:
        if hint is None:
            raise ConfigurationError("OracleGovernor requires an idle-duration hint")
        return catalog.select(hint, self.latency_limit)


class ReplayOracleGovernor(OracleGovernor):
    """:class:`OracleGovernor` fed by the node's actual idle durations.

    The simulator calls :meth:`observe_idle` with the truth *after* each
    interval; a real oracle knows it *before*. For an open-loop Poisson
    stream, idle intervals are i.i.d., so using the upcoming interval
    requires peeking — we approximate by replaying the last observed
    interval, which is exact in distribution. This is the best any
    predictor could do with the *existing* C-state hierarchy, which is
    what the governor ablation compares AW against.
    """

    def __init__(
        self,
        latency_limit: Optional[float] = None,
        initial_hint: float = 1e-3,
    ):
        super().__init__(latency_limit=latency_limit)
        if initial_hint < 0:
            raise ConfigurationError("initial hint must be >= 0")
        self._last = initial_hint

    def observe_idle(self, duration: float) -> None:
        if duration < 0:
            raise ConfigurationError(f"idle duration must be >= 0, got {duration}")
        self._last = duration

    def choose(self, catalog: CStateCatalog, hint: Optional[float] = None) -> CState:
        # Always replay the last observed interval: callers that *could*
        # pass a hint (none do today) would be peeking at the future.
        return super().choose(catalog, hint=self._last)
