"""repro — a full reproduction of *AgileWatts: An Energy-Efficient CPU
Core Idle-State Architecture for Latency-Sensitive Server Applications*
(MICRO 2022).

Public API layers:

- :mod:`repro.core` — the AgileWatts architecture: C-state catalogs
  (C6A/C6AE), UFPG, CCSM, the PMA flow, latency and PPA models.
- :mod:`repro.uarch`, :mod:`repro.power` — the microarchitecture and
  power-delivery substrates they are built on.
- :mod:`repro.governor`, :mod:`repro.server`, :mod:`repro.workloads` —
  the simulated server testbed (governors, node, services).
- :mod:`repro.analytical` — the paper's Eq. 1-4 models, validation,
  snoop bounds and datacenter cost model.
- :mod:`repro.sweep` — declarative scenario specs and the (optionally
  parallel) sweep runner every experiment executes through.
- :mod:`repro.store` — persistent on-disk result store that lets
  repeated invocations reuse simulated points across processes.
- :mod:`repro.experiments` — regenerate every table and figure.

Quickstart::

    from repro import AgileWattsDesign, simulate, named_configuration
    from repro.workloads import memcached_workload

    design = AgileWattsDesign()
    print(design.summary_lines())
    result = simulate(memcached_workload(), named_configuration("AW"),
                      qps=100_000, horizon=0.2)
    print(result.summary())
"""

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import (
    CState,
    CStateCatalog,
    agilewatts_catalog,
    skylake_baseline_catalog,
)
from repro.server import RunResult, named_configuration, simulate
from repro.store import ResultStore
from repro.sweep import FailurePolicy, ScenarioGrid, ScenarioSpec, SweepRunner

__version__ = "1.0.0"

__all__ = [
    "AgileWattsDesign",
    "CState",
    "CStateCatalog",
    "agilewatts_catalog",
    "skylake_baseline_catalog",
    "RunResult",
    "named_configuration",
    "simulate",
    "ScenarioSpec",
    "ScenarioGrid",
    "SweepRunner",
    "FailurePolicy",
    "ResultStore",
    "__version__",
]
