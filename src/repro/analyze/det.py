"""DET-series rules: determinism hazards in simulation packages.

Everything inside :data:`~repro.analyze.rules.SIMULATION_PACKAGES` must
be a pure function of the :class:`~repro.sweep.spec.ScenarioSpec` — that
is what makes serial, process-pool and sharded executors bit-identical
and what lets the result store treat a cache key as a proof of identity.
These rules flag the classic ways Python code silently stops being such
a function: process-global RNG state, wall clocks, unordered-collection
iteration feeding arithmetic, and address-dependent identities.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analyze.findings import Finding
from repro.analyze.rules import (
    FileContext,
    Rule,
    attribute_chain,
    is_sorted_call,
    rule,
)

#: ``random`` module functions that consume or reseed the *shared*
#: module-level Mersenne Twister. ``random.Random(seed)`` instances are
#: the sanctioned alternative (every stream in the tree derives from the
#: spec seed).
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "betavariate", "expovariate",
        "gammavariate", "gauss", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "binomialvariate", "seed",
    }
)

#: ``numpy.random`` constructors that are fine *when given a seed*.
_NP_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "Generator", "SeedSequence", "PCG64"}
)

#: Wall-clock reads: anything whose value depends on when (or how fast)
#: the host runs the simulation rather than on the spec.
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@rule
class UnseededStdlibRandom(Rule):
    """Module-level ``random.*`` calls draw from one process-global,
    implicitly-seeded Mersenne Twister. Results then depend on import
    order, on how many points a worker simulated before this one, and on
    which executor ran it — the exact cross-executor bit-identity the
    golden-digest suite pins. Derive a ``random.Random(seed)`` from the
    spec seed instead (``random.seed(...)`` is equally banned: it
    clobbers the shared stream for every other caller in the process)."""

    id = "DET001"
    title = "unseeded module-level random.* call in simulation code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_simulation_package:
            return
        aliases = ctx.module_aliases("random")
        named = {
            local: original
            for local, original in ctx.from_imports("random").items()
            if original in _GLOBAL_RNG_FUNCS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] in aliases
                and chain[1] in _GLOBAL_RNG_FUNCS
            ):
                yield self.finding(
                    ctx, node,
                    f"random.{chain[1]}() uses the process-global RNG; "
                    "derive a random.Random(seed) from the spec seed",
                )
            elif isinstance(node.func, ast.Name) and node.func.id in named:
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() (from random import "
                    f"{named[node.func.id]}) uses the process-global RNG; "
                    "derive a random.Random(seed) from the spec seed",
                )


@rule
class UnseededNumpyRandom(Rule):
    """``numpy.random.*`` module-level calls share NumPy's global
    ``RandomState``, with the same cross-executor hazards as DET001 plus
    one more: the global stream is shared with any library code that
    also draws from it. Only explicitly seeded constructors
    (``default_rng(seed)``, ``RandomState(seed)``...) are deterministic."""

    id = "DET002"
    title = "numpy.random module-level call (or unseeded constructor)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_simulation_package:
            return
        np_aliases = ctx.module_aliases("numpy")
        random_aliases = {
            local
            for local, original in ctx.from_imports("numpy").items()
            if original == "random"
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            func = None
            if len(chain) == 3 and chain[0] in np_aliases and chain[1] == "random":
                func = chain[2]
            elif len(chain) == 2 and chain[0] in random_aliases:
                func = chain[1]
            if func is None:
                continue
            if func in _NP_SEEDED_CONSTRUCTORS and node.args:
                continue  # explicitly seeded generator: deterministic
            yield self.finding(
                ctx, node,
                f"numpy.random.{func}"
                + ("() without a seed" if func in _NP_SEEDED_CONSTRUCTORS
                   else "() uses the global RandomState")
                + "; use numpy.random.default_rng(seed) derived from the "
                "spec seed",
            )


@rule
class WallClockRead(Rule):
    """Simulation code owns a virtual clock (``Simulator.now``); reading
    the host's wall clock (``time.time``, ``datetime.now``, monotonic /
    perf counters) makes an observable depend on machine speed and run
    time, which can never reproduce bit-for-bit. Timing *measurement*
    belongs in the bench harness and the store layers, which are outside
    the simulation packages and free to use wall clocks."""

    id = "DET003"
    title = "wall-clock read inside simulation code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_simulation_package:
            return
        time_aliases = ctx.module_aliases("time")
        datetime_aliases = ctx.module_aliases("datetime")
        from_time = {
            local
            for local, original in ctx.from_imports("time").items()
            if original in _TIME_FUNCS
        }
        # `from datetime import datetime, date` class names.
        dt_classes = {
            local
            for local, original in ctx.from_imports("datetime").items()
            if original in {"datetime", "date"}
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is not None:
                if (
                    len(chain) == 2
                    and chain[0] in time_aliases
                    and chain[1] in _TIME_FUNCS
                ):
                    yield self.finding(
                        ctx, node,
                        f"time.{chain[1]}() reads the wall clock; simulation "
                        "time is Simulator.now",
                    )
                elif (
                    chain[-1] in _DATETIME_FUNCS
                    and (
                        (len(chain) == 3 and chain[0] in datetime_aliases)
                        or (len(chain) == 2 and chain[0] in dt_classes)
                    )
                ):
                    yield self.finding(
                        ctx, node,
                        f"{'.'.join(chain)}() reads the wall clock; simulation "
                        "time is Simulator.now",
                    )
            elif isinstance(node.func, ast.Name) and node.func.id in from_time:
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() reads the wall clock; simulation time "
                    "is Simulator.now",
                )


def _set_expressions(scope: ast.AST) -> Set[str]:
    """Names bound to set-typed values by simple assignment in ``scope``."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` syntactically builds (or is) an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


@rule
class SetIteration(Rule):
    """Iterating a ``set``/``frozenset`` visits elements in hash order,
    which varies with insertion history and (for strings) with
    ``PYTHONHASHSEED`` across processes. Feeding that order into float
    accumulation, scheduling, or any first-match selection makes results
    executor-dependent. Wrap the iterable in ``sorted(...)`` — the fix is
    one call and the analyzer recognises it."""

    id = "DET004"
    title = "iteration over a set in simulation code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_simulation_package:
            return
        # One file-wide name scope: a name assigned from a set expression
        # anywhere marks that name set-typed everywhere. Conservative,
        # but false positives are one sorted() (or one suppression) away.
        set_names = _set_expressions(ctx.tree)
        for node in ast.walk(ctx.tree):
            target = None
            if isinstance(node, ast.For):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"sum", "min", "max", "list", "tuple"}
                and node.args
            ):
                target = node.args[0]
            if target is None or is_sorted_call(target):
                continue
            if _is_set_expr(target, set_names):
                # Anchor on the iterable: comprehension nodes carry no
                # location of their own.
                yield self.finding(
                    ctx, target,
                    "iteration over a set is hash-ordered and varies "
                    "across processes; wrap it in sorted(...)",
                )


def _iterates_unordered_view(node: ast.AST) -> bool:
    """Whether ``node`` is a bare ``x.items()/.values()/.keys()`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"items", "values", "keys"}
        and not node.args
    )


def _accumulates(body: List[ast.stmt]) -> bool:
    """Whether a loop body folds values into an accumulator."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, (ast.Add, ast.Sub, ast.Mult))
            ):
                return True
    return False


@rule
class UnorderedMergeAccumulation(Rule):
    """On merge paths (folding per-node / per-shard observables into one
    ``RunResult``), iterating ``dict.items()/.values()`` feeds float
    accumulation in dict insertion order. When the dicts being merged
    were built by different executors or decode paths, insertion order —
    and therefore float-addition order, and therefore the low bits of the
    sum — can differ while the dicts compare equal. Iterate
    ``sorted(d.items())`` so accumulation order is a function of the
    *keys*, or suppress with a reason proving order-independence (e.g.
    exact integer counts)."""

    id = "DET005"
    title = "unordered dict-view iteration feeding accumulation on a merge path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not (ctx.in_simulation_package and ctx.on_merge_path):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.For)
                and _iterates_unordered_view(node.iter)
                and _accumulates(node.body)
            ):
                yield self.finding(
                    ctx, node,
                    "accumulation over an unsorted dict view on a merge "
                    "path; iterate sorted(...) so float-addition order is "
                    "key-determined",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"sum", "min", "max"}
                and node.args
            ):
                arg = node.args[0]
                iters = []
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    iters = [c.iter for c in arg.generators]
                elif _iterates_unordered_view(arg):
                    iters = [arg]
                if any(_iterates_unordered_view(i) for i in iters):
                    yield self.finding(
                        ctx, node,
                        f"{node.func.id}() over an unsorted dict view on a "
                        "merge path; iterate sorted(...) so reduction order "
                        "is key-determined",
                    )


@rule
class AddressDependentIdentity(Rule):
    """``id()`` is a memory address and the default ``hash()`` of objects
    (and of every ``str`` under hash randomisation) varies per process.
    Using either for ordering, tie-breaking or keys makes event order —
    and thus every downstream observable — differ between the serial and
    process executors. Use explicit sequence numbers (the engine's
    ``seq``) or stable fields instead."""

    id = "DET006"
    title = "id()/hash() used in simulation code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_simulation_package:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"id", "hash"}
                and node.args
            ):
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() is process-dependent (memory address / "
                    "hash randomisation); never use it for ordering or keys "
                    "in simulation code",
                )
