"""Finding records: what a rule reports, with a stable JSON shape.

A :class:`Finding` is one diagnostic anchored to a ``file:line:col``.
Findings order by location so reports are deterministic regardless of
which worker analysed which file, and they round-trip through plain
dicts (:meth:`Finding.to_dict` / :meth:`Finding.from_dict`) so the JSON
report and the committed baseline share one schema.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

#: Schema version of the JSON report and the committed baseline.
REPORT_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location.

    Attributes:
        path: file the finding is in (repo-relative, forward slashes).
        line: 1-based line number.
        col: 0-based column offset.
        rule_id: the rule that fired (e.g. ``DET001``).
        message: one-line human diagnostic.
        suppressed: True when a ``# repro: allow[...]`` comment covers
            this finding; suppressed findings never fail the gate.
        suppress_reason: the written reason from the allow comment.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = field(default=False, compare=False)
    suppress_reason: Optional[str] = field(default=None, compare=False)

    @property
    def anchor(self) -> str:
        """The clickable ``path:line:col`` prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    @property
    def identity(self) -> tuple:
        """What the baseline matches on (location + rule + message)."""
        return (self.path, self.line, self.rule_id, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on missing or unknown keys — a corrupt
                baseline must fail loudly, not silently pass the gate.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Finding fields {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"incomplete Finding dict: {exc}") from exc
