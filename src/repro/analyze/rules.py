"""Rule base class, registry and the per-file analysis context.

Every rule has a stable id (``DET001`` ...), a one-line title and a
docstring explaining *why* the pattern is hazardous in this codebase;
``repro lint --rules`` prints the catalog straight from these. Rules
register themselves via the :func:`rule` decorator, scope themselves by
package or module (see :class:`FileContext`), and yield
:class:`~repro.analyze.findings.Finding` records from :meth:`Rule.check`.
"""

from __future__ import annotations

import ast
import inspect
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.analyze.findings import Finding

#: Packages whose code runs *inside* a simulation and therefore must be
#: deterministic: any nondeterminism here breaks the bit-identity the
#: executors (serial/process/sharded) are tested to preserve. The store,
#: sweep and CLI layers run outside the simulation and may use wall
#: clocks etc. freely.
SIMULATION_PACKAGES = frozenset(
    {"simkit", "server", "cluster", "uarch", "governor", "workloads"}
)

#: Modules on a merge or hot path, keyed by ``module_key`` (the path
#: below the ``repro`` package root). Merge paths fold per-node /
#: per-shard observables into one result, where iteration order over an
#: unordered collection changes float-accumulation order — exactly the
#: silent bit-identity breaker the DET series exists to catch.
MERGE_PATH_MODULES = frozenset(
    {
        "cluster/cluster.py",
        "cluster/sharding.py",
        "cluster/fanout.py",
        "simkit/sketch.py",
        "simkit/stats.py",
        "server/node.py",
    }
)

#: Modules on the per-event hot path: allocating an
#: :class:`~repro.simkit.engine.Event` there reintroduces the per-event
#: object churn the PR-5 fast path removed (engine.py itself is where
#: Event legitimately lives, so it is not listed).
HOT_PATH_MODULES = frozenset(
    {
        "server/node.py",
        "workloads/loadgen.py",
        "cluster/cluster.py",
        "cluster/fanout.py",
    }
)


class FileContext:
    """Everything a per-file rule needs: source, AST and module identity.

    Attributes:
        path: display path of the file (as reported in findings).
        source: file contents.
        tree: parsed :mod:`ast` module.
        module_key: path below the ``repro`` package root with forward
            slashes (e.g. ``cluster/cluster.py``), or the basename when
            the file is not under a ``repro`` directory. Test fixtures
            exploit this: a snippet written to ``<tmp>/repro/cluster/x.py``
            scopes exactly like real cluster code.
        package: first segment of ``module_key`` (``cluster``), or
            ``None`` for top-level modules.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.module_key, self.package = _module_identity(path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def in_simulation_package(self) -> bool:
        return self.package in SIMULATION_PACKAGES

    @property
    def on_merge_path(self) -> bool:
        return self.module_key in MERGE_PATH_MODULES

    @property
    def on_hot_path(self) -> bool:
        return self.module_key in HOT_PATH_MODULES

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (lazily built, cached)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    # -- import maps -------------------------------------------------------
    def module_aliases(self, module: str) -> frozenset:
        """Local names bound to ``module`` by ``import``/``import as``.

        ``import random`` binds ``random``; ``import numpy as np`` binds
        ``np`` for module ``numpy``. Submodule imports count for their
        root (``import numpy.random`` binds ``numpy``).
        """
        names = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if alias.name == module or top == module:
                        names.add(alias.asname or top)
        return frozenset(names)

    def from_imports(self, module: str) -> Dict[str, str]:
        """Local name -> original name for ``from module import ...``."""
        mapping: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                for alias in node.names:
                    mapping[alias.asname or alias.name] = alias.name
        return mapping


def _module_identity(path: str) -> Tuple[str, Optional[str]]:
    """(module_key, package) for a file path; see :class:`FileContext`."""
    parts = path.replace("\\", "/").split("/")
    directories = parts[:-1]
    if "repro" in directories:
        anchor = len(directories) - 1 - directories[::-1].index("repro")
        below = parts[anchor + 1:]
        key = "/".join(below)
        package = below[0] if len(below) > 1 else None
        return key, package
    return parts[-1], None


class Rule:
    """Base class: subclass, set ``id``/``title``, implement ``check``.

    The subclass docstring is the rule's rationale and appears verbatim
    in the ``--rules`` catalog; keep it concrete about why the pattern
    breaks this repository's invariants.
    """

    #: Stable identifier, e.g. ``DET001`` — referenced by suppression
    #: comments and the baseline, so never renumber an existing rule.
    id: str = ""
    #: One-line summary for the catalog.
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


#: Registry of per-file rules by id, in registration (series) order.
RULES: Dict[str, Rule] = {}

#: Ids of findings produced outside per-file rules (project-level SPEC
#: checks and ANA hygiene findings); they join the catalog with a title
#: and rationale but have no ``check`` to run per file.
DECLARED_IDS: Dict[str, Tuple[str, str]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a per-file rule."""
    instance = cls()
    if not instance.id or instance.id in RULES or instance.id in DECLARED_IDS:
        raise ValueError(f"rule id {instance.id!r} is missing or duplicated")
    RULES[instance.id] = instance
    return cls


def declare_rule(rule_id: str, title: str, rationale: str) -> str:
    """Register a rule id that is checked outside the per-file pass."""
    if rule_id in RULES or rule_id in DECLARED_IDS:
        raise ValueError(f"rule id {rule_id!r} duplicated")
    DECLARED_IDS[rule_id] = (title, rationale)
    return rule_id


def known_rule_ids() -> frozenset:
    """Every id a suppression comment may legally reference."""
    return frozenset(RULES) | frozenset(DECLARED_IDS)


def all_rules() -> List[Rule]:
    """The registered per-file rules, in registration order."""
    return list(RULES.values())


def rule_catalog() -> List[Tuple[str, str, str]]:
    """(id, title, rationale) for every known rule, sorted by id."""
    entries = [
        (r.id, r.title, inspect.cleandoc(r.__doc__ or ""))
        for r in RULES.values()
    ]
    entries += [
        (rule_id, title, inspect.cleandoc(rationale))
        for rule_id, (title, rationale) in DECLARED_IDS.items()
    ]
    return sorted(entries)


# -- shared AST helpers ----------------------------------------------------
def call_name(node: ast.Call) -> Optional[str]:
    """The called name for ``name(...)`` calls, else None."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None when the base isn't a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def is_sorted_call(node: ast.AST) -> bool:
    """Whether ``node`` is a ``sorted(...)`` call (the standard fix for
    iterating an unordered collection deterministically)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )
