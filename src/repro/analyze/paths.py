"""Display-path normalization shared by every analysis layer.

Findings and the committed baseline anchor on *repo-relative* paths
(``src/repro/...``) so a lint run produces identical reports — and the
zero-finding baseline keeps matching — from any working directory.
Files outside the repository (e.g. test fixture trees under ``/tmp``)
fall back to the old behaviour: cwd-relative when that does not escape
upward, else the path as given.
"""

from __future__ import annotations

import os

# The repository root for an in-tree run: this file lives at
# <root>/src/repro/analyze/paths.py. When the package is imported from
# somewhere else (an installed copy), no linted file sits under the
# derived root, so the cwd-relative fallback below applies and the
# behaviour matches the pre-normalization CLI.
_ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(_ANALYZE_DIR)))


def display_path(path: str) -> str:
    """Stable forward-slash display path for ``path``.

    Repo-relative when the file is inside the repository (independent of
    the current working directory — the anchor is derived from this
    module's own location); otherwise cwd-relative when that stays below
    the cwd, else the path as given.
    """
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    if not rel.startswith(".."):
        return rel.replace(os.sep, "/")
    rel = os.path.relpath(path)
    chosen = path if rel.startswith("..") else rel
    return chosen.replace(os.sep, "/")
