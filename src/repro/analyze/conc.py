"""CONC-series: process-boundary hazards found via the project call graph.

Sweeps fan simulation points out to worker processes
(``ProcessPoolExecutor`` in ``repro/sweep/runner.py`` and
``repro/cluster/sharding.py``, a killable ``multiprocessing.Process``
for big timed-out points, ``pool.map`` in the analyzer itself). Every
one of those submissions is a serialization boundary where determinism
can silently break. :mod:`repro.analyze.callgraph` resolves what
actually crosses each boundary; the rules here flag the four hazard
classes:

- **CONC001** — unpicklable callables and captures: lambdas, locally
  defined functions, and locals bound to open files, sqlite
  connections, sockets or threading primitives. These fail at submit
  time at best; under fork they "work" until the first spawn-start
  platform breaks them.
- **CONC002** — module-level mutable state *written* in worker-reachable
  code but *read* in the parent. Worker writes never propagate back
  across the fork, so the parent reads stale state — the registry-drift
  bug class the sweep runner used to guard only by name
  (``_check_worker_registries``). Parent-to-worker sharing (warm caches,
  factory registries populated before the fork) is the legitimate
  direction and is not flagged.
- **CONC003** — RNG or ``Simulator`` instances reachable from both
  sides of a fork: a module-level ``random.Random`` (or an instance
  passed as a submit argument) draws from interleaved streams depending
  on start method and scheduling, destroying bit-identity. Pass seeds,
  construct inside the worker.
- **CONC004** — worker-reachable code importing parent-only modules
  (``argparse``, ``curses``, ``tkinter``, ``readline``, ``repro.cli``):
  these assume a tty/argv and at minimum tax every worker start under
  spawn.

The analysis is conservative: an edge that cannot be resolved shrinks
the worker-reachable set, so every finding points at a demonstrable
submission path. Findings carry normal file:line anchors and respect
``# repro: allow[CONC00x] reason`` suppressions, the committed baseline
and JSON output like every per-file rule.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    SubmissionSite,
    attribute_chain,
    local_binding,
)
from repro.analyze.findings import Finding
from repro.analyze.paths import display_path
from repro.analyze.rules import declare_rule

CONC001 = declare_rule(
    "CONC001",
    "unpicklable callable or capture crosses a process boundary",
    "Lambdas, locally defined functions and locals holding open "
    "files/sockets/sqlite connections/threading primitives cannot be "
    "pickled into a worker process: the submission fails at runtime, "
    "or silently depends on fork inheriting state that spawn will not.",
)
CONC002 = declare_rule(
    "CONC002",
    "module global written in worker-reachable code, read in the parent",
    "A worker's writes to module-level mutable state never propagate "
    "back across the fork, so the parent reads state that was only "
    "updated in a child address space — results quietly go missing. "
    "Return data through the pool's future or the result store instead.",
)
CONC003 = declare_rule(
    "CONC003",
    "RNG or Simulator instance reachable from both sides of a fork",
    "An RNG or Simulator shared across a process boundary draws from "
    "interleaved streams depending on start method and scheduling, "
    "destroying the bit-identical reproducibility every result depends "
    "on. Pass a seed and construct the instance inside the worker.",
)
CONC004 = declare_rule(
    "CONC004",
    "worker-reachable code imports a parent-only module",
    "Modules that assume a tty, argv or interactive session (argparse, "
    "curses, readline, repro.cli) must not execute in workers: under "
    "spawn every worker start re-imports them, and their side effects "
    "belong to exactly one process — the parent.",
)

#: Modules (by root or full dotted name) that only the parent process
#: may import. ``repro.cli`` owns argparse/stdout; the rest assume a
#: terminal session.
PARENT_ONLY_MODULES = frozenset(
    {"argparse", "curses", "tkinter", "readline", "repro.cli"}
)

#: Modules that are worker entry points by *contract* rather than by a
#: submission site the call graph can see: ``repro worker`` processes —
#: bare interpreters, possibly on other hosts — import these first,
#: so their import-time behaviour is held to the same parent-only-free
#: standard as callgraph-detected entry modules (CONC004 part b).
WORKER_ENTRY_MODULES = frozenset({"repro.distrib.worker"})

#: Methods that mutate the receiver in place (write detection for
#: CONC002/CONC003 on container globals).
_MUTATORS = frozenset(
    {
        "append", "add", "update", "setdefault", "extend", "insert",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)

_THREADING_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier", "local"}
)


def run_conc_checks(paths: Sequence[str]) -> List[Finding]:
    """Run CONC001-004 over an analysed file set; returns raw findings
    (the engine applies suppressions and the baseline)."""
    graph = CallGraph(paths)
    findings: List[Finding] = []
    for site in graph.sites:
        findings.extend(_check_site(graph, site))
    reachable = graph.worker_reachable()
    for module in graph.modules.values():
        findings.extend(_check_shared_globals(module, reachable))
        findings.extend(_check_shared_rng(module, reachable))
    findings.extend(_check_parent_only_imports(graph, reachable))
    return sorted(findings)


def _finding_at(
    module: ModuleInfo, line: int, col: int, rule_id: str, message: str
) -> Finding:
    return Finding(
        path=display_path(module.path),
        line=line,
        col=col,
        rule_id=rule_id,
        message=message,
    )


def _finding(
    module: ModuleInfo, node: ast.AST, rule_id: str, message: str
) -> Finding:
    return _finding_at(
        module,
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0),
        rule_id,
        message,
    )


# -- CONC001 + CONC003 (submission arguments) ------------------------------
def _resource_desc(expr: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Human description when ``expr`` constructs an unpicklable
    process-local resource."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "an open file handle"
        origin = module.from_imports.get(func.id)
        if origin is not None:
            if origin == ("sqlite3", "connect"):
                return "an open sqlite connection"
            if origin[0] == "threading" and origin[1] in (
                _THREADING_PRIMITIVES
            ):
                return f"a threading.{origin[1]}"
            if origin == ("socket", "socket"):
                return "an open socket"
        return None
    chain = attribute_chain(func)
    if chain is None:
        return None
    if chain == ("sqlite3", "connect"):
        return "an open sqlite connection"
    if len(chain) == 2 and chain[0] == "threading" and (
        chain[1] in _THREADING_PRIMITIVES
    ):
        return f"a threading.{chain[1]}"
    if chain == ("socket", "socket"):
        return "an open socket"
    return None


def _rng_desc(expr: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Human description when ``expr`` constructs an RNG or Simulator."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name):
        origin = module.from_imports.get(func.id)
        if origin == ("random", "Random"):
            return "random.Random instance"
        if origin is not None and origin[1] == "Simulator" and (
            origin[0] in ("repro.simkit", "repro.simkit.engine")
        ):
            return "Simulator instance"
        return None
    chain = attribute_chain(func)
    if chain == ("random", "Random"):
        return "random.Random instance"
    if chain is not None and chain[-1] == "Simulator":
        dotted = module.resolve_module_prefix(chain)
        if dotted in ("repro.simkit", "repro.simkit.engine"):
            return "Simulator instance"
    return None


def _unpicklable_reason(
    expr: ast.expr,
    module: ModuleInfo,
    scope_stack: Sequence[ast.AST],
) -> Optional[str]:
    """Why ``expr`` cannot cross a pickle boundary, or None."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator"
    if isinstance(expr, ast.Name):
        bound = local_binding(scope_stack, expr.id)
        if isinstance(bound, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return f"the locally defined function {expr.id!r}"
        if isinstance(bound, ast.Lambda):
            return f"the local lambda {expr.id!r}"
        if bound is not None:
            desc = _resource_desc(bound, module)
            if desc is not None:
                return f"{expr.id!r}, which holds {desc}"
        return None
    desc = _resource_desc(expr, module)
    if desc is not None:
        return desc
    return None


def _rng_reason(
    expr: ast.expr,
    module: ModuleInfo,
    scope_stack: Sequence[ast.AST],
    rng_globals: Dict[str, Tuple[int, str]],
) -> Optional[str]:
    desc = _rng_desc(expr, module)
    if desc is not None:
        return f"a {desc}"
    if isinstance(expr, ast.Name):
        bound = local_binding(scope_stack, expr.id)
        if bound is not None:
            desc = _rng_desc(bound, module)
            if desc is not None:
                return f"{expr.id!r}, a {desc}"
        elif expr.id in rng_globals:
            return f"module-level {rng_globals[expr.id][1]} {expr.id!r}"
    return None


def _check_site(graph: CallGraph, site: SubmissionSite) -> List[Finding]:
    module = site.module
    findings: List[Finding] = []
    boundary = {
        "submit": "pool.submit",
        "map": "pool.map",
        "process": "multiprocessing.Process",
    }[site.api]
    callables: List[ast.expr] = []
    data_args = list(site.data_args)
    if site.callable_expr is not None:
        expr = site.callable_expr
        if isinstance(expr, ast.Call):  # functools.partial(f, a, b)
            callables.extend(expr.args[:1])
            data_args.extend(expr.args[1:])
            data_args.extend(kw.value for kw in expr.keywords)
        else:
            callables.append(expr)
    for expr in callables:
        reason = _unpicklable_reason(expr, module, site.scope_stack)
        if reason is not None:
            findings.append(
                _finding(
                    module, expr, CONC001,
                    f"callable handed to {boundary} is {reason}: it "
                    "cannot be pickled into the worker process — use a "
                    "module-level function",
                )
            )
    rng_globals = _module_rng_globals(module)
    for expr in data_args:
        reason = _unpicklable_reason(expr, module, site.scope_stack)
        if reason is not None:
            findings.append(
                _finding(
                    module, expr, CONC001,
                    f"argument crossing the {boundary} boundary is "
                    f"{reason}: it cannot be pickled into the worker "
                    "process",
                )
            )
            continue
        rng = _rng_reason(expr, module, site.scope_stack, rng_globals)
        if rng is not None:
            findings.append(
                _finding(
                    module, expr, CONC003,
                    f"argument crossing the {boundary} boundary is "
                    f"{rng}: its state diverges between parent and "
                    "worker — pass a seed and construct it inside the "
                    "worker",
                )
            )
    return findings


# -- CONC002 / CONC003 (module globals across the fork) --------------------
def _module_rng_globals(
    module: ModuleInfo,
) -> Dict[str, Tuple[int, str]]:
    """Module-level names bound to an RNG/Simulator: name -> (line, desc)."""
    out: Dict[str, Tuple[int, str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        desc = _rng_desc(value, module)
        if desc is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = (stmt.lineno, desc)
    return out


def _function_uses(
    info: FunctionInfo, names: Set[str]
) -> Tuple[Dict[str, List[int]], Dict[str, List[int]]]:
    """(writes, reads) of module globals ``names`` inside one function.

    A bare-name assignment only counts as a write under a ``global``
    declaration; otherwise it shadows. Subscript stores, ``del``, and
    in-place mutator calls (``G.append`` ...) always count.
    """
    node = info.node
    declared: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared.update(sub.names)
    args = node.args  # type: ignore[attr-defined]
    params = {a.arg for a in args.args + args.kwonlyargs + args.posonlyargs}
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            params.add(extra.arg)

    def shadowed(name: str) -> bool:
        if name in declared:
            return False
        if name in params:
            return True
        return local_binding((node,), name) is not None

    writes: Dict[str, List[int]] = {}
    reads: Dict[str, List[int]] = {}
    mutator_receivers: Set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ):
            value = sub.func.value
            if (
                isinstance(value, ast.Name)
                and value.id in names
                and sub.func.attr in _MUTATORS
                and not shadowed(value.id)
            ):
                writes.setdefault(value.id, []).append(sub.lineno)
                mutator_receivers.add(id(value))
        for target in _store_targets(sub):
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in names
                and not shadowed(target.value.id)
            ):
                writes.setdefault(target.value.id, []).append(sub.lineno)
                mutator_receivers.add(id(target.value))
            elif (
                isinstance(target, ast.Name)
                and target.id in names
                and target.id in declared
            ):
                writes.setdefault(target.id, []).append(sub.lineno)
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in names
            and id(sub) not in mutator_receivers
            and not shadowed(sub.id)
        ):
            reads.setdefault(sub.id, []).append(sub.lineno)
    return writes, reads


def _store_targets(node: ast.AST) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        out: List[ast.expr] = []
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                out.extend(target.elts)
            else:
                out.append(target)
        return out
    if isinstance(node, ast.AugAssign):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _module_functions(module: ModuleInfo) -> List[FunctionInfo]:
    out = list(module.functions.values())
    for methods in module.classes.values():
        out.extend(methods.values())
    return out


def _check_shared_globals(
    module: ModuleInfo, reachable: Set[FunctionInfo]
) -> List[Finding]:
    names = set(module.mutable_globals)
    if not names:
        return []
    findings: List[Finding] = []
    uses = [
        (info, *_function_uses(info, names))
        for info in _module_functions(module)
    ]
    for name in sorted(names):
        writers = []
        readers = []
        for info, writes, reads in uses:
            if info in reachable and writes.get(name):
                writers.append((info, min(writes[name])))
            if info not in reachable and reads.get(name):
                readers.append(info)
        if writers and readers:
            info, line = writers[0]
            findings.append(
                _finding_at(
                    module, line, 0, CONC002,
                    f"module global {name!r} is written in "
                    f"worker-reachable {info.label} but read by the "
                    f"parent ({readers[0].label}): worker writes never "
                    "cross back over the fork — return the data through "
                    "the pool result or the store",
                )
            )
    return findings


def _check_shared_rng(
    module: ModuleInfo, reachable: Set[FunctionInfo]
) -> List[Finding]:
    rng_globals = _module_rng_globals(module)
    if not rng_globals:
        return []
    findings: List[Finding] = []
    names = set(rng_globals)
    uses = [
        (info, *_function_uses(info, names))
        for info in _module_functions(module)
    ]
    for name in sorted(names):
        line, desc = rng_globals[name]

        def touches(writes: Dict[str, List[int]],
                    reads: Dict[str, List[int]]) -> bool:
            return bool(writes.get(name) or reads.get(name))

        worker_side = [i for i, w, r in uses if i in reachable and touches(w, r)]
        parent_side = [i for i, w, r in uses if i not in reachable and touches(w, r)]
        if worker_side and parent_side:
            findings.append(
                _finding_at(
                    module, line, 0, CONC003,
                    f"module-level {desc} {name!r} is used by "
                    f"worker-reachable {worker_side[0].label} and by the "
                    f"parent ({parent_side[0].label}): its draws "
                    "interleave across the fork nondeterministically — "
                    "give each side its own seeded instance",
                )
            )
    return findings


# -- CONC004 (parent-only imports) -----------------------------------------
def _parent_only(module_name: str) -> Optional[str]:
    if module_name in PARENT_ONLY_MODULES:
        return module_name
    root = module_name.split(".")[0]
    if root in PARENT_ONLY_MODULES:
        return root
    return None


def _check_parent_only_imports(
    graph: CallGraph, reachable: Set[FunctionInfo]
) -> List[Finding]:
    findings: List[Finding] = []
    # (a) imports executed inside worker-reachable functions.
    for info in sorted(reachable, key=lambda i: (i.module.path, i.qualname)):
        for node in ast.walk(info.node):
            for mod in _imported_modules(node):
                hit = _parent_only(mod)
                if hit is not None:
                    findings.append(
                        _finding(
                            info.module, node, CONC004,
                            f"worker-reachable {info.label} imports "
                            f"parent-only module {hit!r}: this executes "
                            "in every worker process",
                        )
                    )
    # (b) module-level imports of worker-entry modules: importing the
    # entry function's module is the first thing every worker does.
    # Declared entries (the `repro worker` loop) are included even when
    # no in-repo submission site references them — external workers
    # import them from a bare interpreter.
    entry_modules = {root.module for root in graph.submitted_roots()}
    for dotted in WORKER_ENTRY_MODULES:
        declared = graph.modules.get(dotted)
        if declared is not None:
            entry_modules.add(declared)
    for module in sorted(entry_modules, key=lambda m: m.path):
        for stmt in module.tree.body:
            for mod in _imported_modules(stmt):
                hit = _parent_only(mod)
                if hit is not None:
                    findings.append(
                        _finding(
                            module, stmt, CONC004,
                            f"worker-entry module {module.dotted} "
                            f"imports parent-only module {hit!r} at "
                            "import time: every worker start executes "
                            "it — move the import into the parent-side "
                            "function that needs it",
                        )
                    )
    return findings


def _imported_modules(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and not node.level and node.module:
        return [node.module]
    return []
