"""Static analysis for the determinism and invariant contracts.

Every headline number this reproduction reports rests on invariants the
runtime golden-digest suite can only check *after* a simulation ran:
bit-identical ``RunResult``s across serial/process/sharded executors,
exhaustive ``ScenarioSpec -> cache_key -> store codec`` coverage, and the
``schedule_fast`` no-cancel/no-label contract. :mod:`repro.analyze` is an
AST-based pass that catches violations of those contracts at *analysis*
time — before any simulation runs — and gates CI on a committed
zero-finding baseline.

Rule series (see each rule's docstring for the full rationale):

- **DET** — determinism hazards inside the simulation packages
  (``simkit``, ``server``, ``cluster``, ``uarch``, ``governor``,
  ``workloads``): unseeded module-level RNG calls, wall-clock reads,
  unordered-collection iteration feeding arithmetic in merge paths,
  ``id()``/``hash()`` used where ordering matters.
- **FAST** — fast-path contract checks: callers of
  :meth:`~repro.simkit.engine.Simulator.schedule_fast` /
  ``schedule_at_fast`` must not cancel or label events, and hot-path
  modules must not allocate :class:`~repro.simkit.engine.Event` objects.
- **SPEC** — cross-module consistency, verified by walking dataclass
  fields against both serializers' ASTs: every ``ScenarioSpec`` field in
  the canonical ``cache_key``, every ``RunResult`` field in the store
  codec, and codec shape changes must bump ``FORMAT_VERSION``.
- **CONC** — process-boundary hazards, resolved through a project call
  graph (:mod:`repro.analyze.callgraph`): unpicklable callables and
  captures handed to pools, module globals written in worker-reachable
  code but read in the parent, RNG/``Simulator`` instances shared
  across a fork, and parent-only imports in worker-reachable code.
- **ANA** — hygiene of the analysis itself: unparseable files and
  malformed, unknown or stale suppression comments.

Static analysis has a runtime twin: :mod:`repro.simkit.sanitizer`
(``REPRO_SANITIZE=1`` / ``--sanitize``) checks the invariants only a
running simulation exposes, and reports violations through the same
:class:`Finding` type.

Suppress a finding with an inline comment carrying a written reason::

    total += count  # repro: allow[DET005] integer counts merge exactly

Run it as ``repro lint src`` (or programmatically via
:func:`run_lint`); see :mod:`repro.analyze.engine` for the driver and
:mod:`repro.analyze.report` for output formats and the CI baseline.
"""

from repro.analyze.conc import run_conc_checks
from repro.analyze.engine import LintResult, fix_stale_suppressions, run_lint
from repro.analyze.findings import REPORT_VERSION, Finding
from repro.analyze.rules import RULES, all_rules, rule_catalog
from repro.analyze.report import (
    compare_to_baseline,
    load_baseline,
    render_json,
    render_text,
    report_from_dict,
    report_to_dict,
)
from repro.analyze.speccheck import update_codec_manifest

__all__ = [
    "Finding",
    "LintResult",
    "REPORT_VERSION",
    "RULES",
    "all_rules",
    "compare_to_baseline",
    "fix_stale_suppressions",
    "load_baseline",
    "run_conc_checks",
    "render_json",
    "render_text",
    "report_from_dict",
    "report_to_dict",
    "rule_catalog",
    "run_lint",
    "update_codec_manifest",
]
