"""Report rendering and the committed zero-finding baseline.

Text reports anchor every finding at ``file:line:col`` (clickable in
editors and CI logs); JSON reports carry the same records under a
versioned schema that round-trips through :func:`report_from_dict`. The
committed baseline (``baseline.json``, kept at *zero* findings) is the
CI gate: a finding not in the baseline fails the build, so the only way
to land a new violation is to fix it or to suppress it in the diff where
a reviewer sees the written reason.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence

from repro.analyze.engine import LintResult
from repro.analyze.findings import REPORT_VERSION, Finding
from repro.errors import ConfigurationError

#: The committed baseline lives next to this module and stays empty; it
#: exists as a file (rather than an implicit "no findings") so the gate
#: semantics — "no finding outside this list" — survive future rules
#: that might need a grandfathering window.
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline.json")


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human report: one ``path:line:col: RULE message`` line per finding."""
    lines = [
        f"{finding.anchor}: {finding.rule_id} {finding.message}"
        for finding in result.findings
    ]
    if verbose:
        lines += [
            f"{finding.anchor}: {finding.rule_id} suppressed "
            f"({finding.suppress_reason})"
            for finding in result.suppressed
        ]
    lines.append(
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_analyzed} file(s) analyzed"
    )
    return "\n".join(lines)


def report_to_dict(result: LintResult) -> Dict[str, Any]:
    """Versioned JSON-safe report; inverse of :func:`report_from_dict`."""
    return {
        "version": REPORT_VERSION,
        "files_analyzed": result.files_analyzed,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
    }


def report_from_dict(data: Dict[str, Any]) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`report_to_dict` output.

    Raises:
        ConfigurationError: on a foreign schema version or malformed
            finding records.
    """
    if not isinstance(data, dict) or data.get("version") != REPORT_VERSION:
        raise ConfigurationError(
            f"unsupported lint report version {data.get('version')!r} "
            f"(expected {REPORT_VERSION})"
        )
    try:
        return LintResult(
            findings=[Finding.from_dict(f) for f in data["findings"]],
            suppressed=[Finding.from_dict(f) for f in data.get("suppressed", [])],
            files_analyzed=int(data.get("files_analyzed", 0)),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"corrupt lint report: {exc}") from exc


def render_json(result: LintResult) -> str:
    return json.dumps(report_to_dict(result), indent=2, sort_keys=True)


def load_baseline(path: str = BASELINE_PATH) -> List[Finding]:
    """Findings the gate tolerates (the committed list is empty).

    Raises:
        ConfigurationError: when the baseline is missing or malformed —
            a gate that cannot read its allowlist must fail closed.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read lint baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != REPORT_VERSION:
        raise ConfigurationError(
            f"unsupported baseline version in {path}: {data.get('version')!r}"
        )
    return [Finding.from_dict(f) for f in data.get("findings", [])]


def compare_to_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> List[Finding]:
    """Findings not covered by the baseline (these fail the gate)."""
    known = {finding.identity for finding in baseline}
    return [f for f in findings if f.identity not in known]
