"""Suppression comments: ``# repro: allow[RULE-ID] reason``.

A finding is suppressed by an allow comment *with a written reason* on
the same line, or on a comment-only line directly above (for statements
too long to share a line with their justification). The reason is
mandatory — a suppression is a reviewed claim that the flagged pattern
is safe *here*, and the claim is the reason. Malformed, unknown-rule and
stale (matching nothing) suppressions are findings themselves (ANA001 /
ANA002 / ANA003), so the allowlist can only shrink back to honesty, never
rot silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analyze.findings import Finding
from repro.analyze.rules import declare_rule, known_rule_ids

ANA001 = declare_rule(
    "ANA001",
    "suppression comment has no reason",
    "A bare `# repro: allow[RULE-ID]` asserts the pattern is safe without "
    "saying why. The reason is the reviewable part of a suppression; "
    "without one the next reader cannot tell a considered exemption from "
    "a silenced bug.",
)
ANA002 = declare_rule(
    "ANA002",
    "suppression references an unknown rule id",
    "An allow comment naming a rule that does not exist suppresses "
    "nothing and usually means a typo — the finding it meant to cover is "
    "still failing, or worse, was never real.",
)
ANA003 = declare_rule(
    "ANA003",
    "suppression matches no finding",
    "A stale allow comment outlives the code it excused and quietly "
    "pre-authorises a future violation on that line. Delete suppressions "
    "when the finding they covered goes away.",
)
ANA004 = declare_rule(
    "ANA004",
    "file cannot be parsed",
    "A file the analyzer cannot parse is a file whose invariants nobody "
    "is checking; syntax errors fail the gate rather than silently "
    "shrinking coverage.",
)

#: One allow comment may carry several clauses, each shaped
#: ``allow[RULE-ID] reason``, separated by ``--``. (The full marker
#: syntax is spelled only in the module docstring: writing it in a
#: comment would make this file suppress itself.)
_ALLOW = re.compile(r"allow\[([A-Za-z]+[0-9]+)\]\s*([^#]*?)\s*(?=allow\[|$)")
_MARKER = re.compile(r"#\s*repro:\s*(.*)$")


@dataclass
class Suppression:
    """One parsed allow clause.

    Attributes:
        line: line the comment sits on.
        target_line: line whose findings it covers (the next line for
            comment-only lines, its own otherwise).
        rule_id: rule being allowed.
        reason: the written justification (may be empty -> ANA001).
        used: set during matching; unused suppressions raise ANA003.
    """

    line: int
    target_line: int
    rule_id: str
    reason: str
    used: bool = False


def parse_suppressions(
    path: str, source: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract allow clauses and their hygiene findings from a file.

    Returns:
        (suppressions, findings) — findings are ANA001 (missing reason)
        and ANA002 (unknown rule id) records; such clauses are *not*
        returned as usable suppressions.
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    known = known_rule_ids()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        # The AST parse reports unreadable files (ANA004); no comments
        # can be trusted out of a half-tokenized file.
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        marker = _MARKER.search(token.string)
        if marker is None:
            continue
        line = token.start[0]
        comment_only = token.string.strip() == token.line.strip()
        target = line + 1 if comment_only else line
        clauses = list(_ALLOW.finditer(marker.group(1)))
        if not clauses:
            findings.append(
                Finding(
                    path=path, line=line, col=token.start[1],
                    rule_id="ANA001",
                    message=(
                        "malformed suppression: expected "
                        "`# repro: allow[RULE-ID] reason`"
                    ),
                )
            )
            continue
        for clause in clauses:
            rule_id, reason = clause.group(1), clause.group(2).strip()
            reason = reason.rstrip("-").strip()
            if rule_id not in known:
                findings.append(
                    Finding(
                        path=path, line=line, col=token.start[1],
                        rule_id="ANA002",
                        message=f"suppression references unknown rule {rule_id!r}",
                    )
                )
                continue
            if not reason:
                findings.append(
                    Finding(
                        path=path, line=line, col=token.start[1],
                        rule_id="ANA001",
                        message=(
                            f"suppression of {rule_id} has no reason; write "
                            "`# repro: allow[" + rule_id + "] why this is safe`"
                        ),
                    )
                )
                continue
            suppressions.append(
                Suppression(
                    line=line, target_line=target, rule_id=rule_id, reason=reason
                )
            )
    return suppressions, findings


def apply_suppressions(
    findings: List[Finding], by_path: Dict[str, List[Suppression]]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, suppressed) and flag stale allows.

    A suppression covers findings of its rule on its target line in its
    file. Stale suppressions (matching nothing) come back as ANA003
    findings appended to the active list.
    """
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        match: Optional[Suppression] = None
        for suppression in by_path.get(finding.path, []):
            if (
                suppression.rule_id == finding.rule_id
                and suppression.target_line == finding.line
            ):
                match = suppression
                break
        if match is None:
            active.append(finding)
        else:
            match.used = True
            suppressed.append(
                Finding(
                    path=finding.path, line=finding.line, col=finding.col,
                    rule_id=finding.rule_id, message=finding.message,
                    suppressed=True, suppress_reason=match.reason,
                )
            )
    for path in sorted(by_path):
        for suppression in by_path[path]:
            if not suppression.used:
                active.append(
                    Finding(
                        path=path, line=suppression.line, col=0,
                        rule_id="ANA003",
                        message=(
                            f"suppression of {suppression.rule_id} matches no "
                            "finding; delete the stale allow comment"
                        ),
                    )
                )
    return sorted(active), sorted(suppressed)
