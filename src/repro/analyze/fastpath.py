"""FAST-series rules: the allocation-free event path's contract.

:meth:`~repro.simkit.engine.Simulator.schedule_fast` /
``schedule_at_fast`` push a bare callback into the heap — no
:class:`~repro.simkit.engine.Event` object, no cancellation, no label.
That contract is what makes the hot path allocation-free while staying
bit-identical to the cancellable path (both draw from one sequence
counter). These rules catch callers that quietly assume an ``Event``
came back, and hot-path modules that reintroduce per-event allocation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.rules import FileContext, Rule, rule

_FAST_METHODS = frozenset({"schedule_fast", "schedule_at_fast"})


def _is_fast_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _FAST_METHODS
    )


def _fast_name(node: ast.Call) -> str:
    return node.func.attr  # type: ignore[attr-defined]


@rule
class FastPathContract(Rule):
    """``schedule_fast``/``schedule_at_fast`` return ``None`` by design:
    there is no ``Event`` to cancel and no label slot. Code that assigns
    the result, calls ``.cancel()`` on it, or passes a label argument is
    written against the cancellable API and will fail at runtime (or
    worse, hold ``None`` where it believes it holds a cancellable
    handle). Events that need cancellation or labels must use
    ``schedule``/``schedule_at``."""

    id = "FAST001"
    title = "schedule_fast caller assumes an Event handle (cancel/label/assign)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and _is_fast_call(
                getattr(node, "value", None)
            ):
                yield self.finding(
                    ctx, node,
                    f"{_fast_name(node.value)}() returns None (no Event "
                    "handle); use schedule/schedule_at if the caller needs "
                    "one",
                )
            elif _is_fast_call(node):
                if len(node.args) > 2:
                    yield self.finding(
                        ctx, node,
                        f"{_fast_name(node)}() takes no label argument; "
                        "labelled events must use the Event path",
                    )
                for keyword in node.keywords:
                    if keyword.arg == "label":
                        yield self.finding(
                            ctx, node,
                            f"{_fast_name(node)}() takes no label argument; "
                            "labelled events must use the Event path",
                        )
                parent = ctx.parent_of(node)
                if isinstance(parent, ast.Attribute) and parent.attr == "cancel":
                    yield self.finding(
                        ctx, node,
                        f"{_fast_name(node)}() events cannot be cancelled; "
                        "use schedule/schedule_at for cancellable events",
                    )
                elif isinstance(parent, ast.Await):
                    yield self.finding(
                        ctx, node,
                        f"{_fast_name(node)}() returns None, not an awaitable",
                    )


@rule
class HotPathEventAllocation(Rule):
    """The PR-5 speedup came from keeping the per-event hot path free of
    ``Event`` allocations (tuple + heap push only). Constructing
    :class:`~repro.simkit.engine.Event` inside a hot-path module
    (:data:`~repro.analyze.rules.HOT_PATH_MODULES`) reintroduces that
    churn for every service completion at fleet scale. Schedule through
    ``schedule_fast``, or through ``schedule()`` — which allocates the
    Event *inside the engine* where the cancellable path owns it."""

    id = "FAST002"
    title = "Event allocated inside a hot-path module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.on_hot_path:
            return
        # Name 'Event' only counts when imported from the engine —
        # threading.Event etc. are someone else's business.
        engine_event_names = {
            local for _module, local in _engine_from_imports(ctx)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in engine_event_names
            ):
                yield self.finding(
                    ctx, node,
                    "Event allocation on a hot path; use schedule_fast (no "
                    "handle) or let schedule() allocate inside the engine",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "Event"
            ):
                yield self.finding(
                    ctx, node,
                    "Event allocation on a hot path; use schedule_fast (no "
                    "handle) or let schedule() allocate inside the engine",
                )


def _engine_from_imports(ctx: FileContext):
    """(module, local-name) pairs binding the engine's Event class."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.endswith("engine") or node.module.endswith("simkit")
        ):
            for alias in node.names:
                if alias.name == "Event":
                    yield node.module, (alias.asname or alias.name)
