"""The analysis driver: discover files, run rules, apply suppressions.

Per-file work (parse + every registered rule) is embarrassingly
parallel, so with ``jobs > 1`` it fans out over a process pool; results
merge deterministically (findings sort by location) regardless of which
worker analysed which file. The project-level SPEC checks — which relate
*pairs* of files — run once in the parent, after which suppression
comments from every analysed file are matched centrally so one mechanism
covers per-file and cross-module findings alike.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.findings import Finding
from repro.analyze.rules import FileContext, all_rules

# Rule modules register themselves on import. The imports live HERE, not
# in __init__, because process-pool workers import only this module to
# unpickle analyze_file — without them a worker would run zero rules and
# happily report a clean file.
import repro.analyze.det  # noqa: F401  (registration side effect)
import repro.analyze.fastpath  # noqa: F401  (registration side effect)
from repro.analyze.speccheck import MANIFEST_PATH, run_project_checks
from repro.analyze.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.errors import ConfigurationError

#: Below this many files a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 16


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: active findings (fail the gate), sorted by location.
        suppressed: findings covered by a reasoned allow comment.
        files_analyzed: number of Python files parsed.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files pass through), sorted.

    Raises:
        ConfigurationError: when a path does not exist.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


def _display_path(path: str) -> str:
    """Repo-relative forward-slash path when possible (stable baselines)."""
    rel = os.path.relpath(path)
    chosen = path if rel.startswith("..") else rel
    return chosen.replace(os.sep, "/")


def analyze_file(path: str) -> Tuple[List[Finding], List[Suppression]]:
    """Parse one file and run every per-file rule over it.

    Unparseable files yield a single ANA004 finding — shrinking analysis
    coverage must fail the gate, not pass it quietly.
    """
    display = _display_path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return (
            [
                Finding(
                    path=display, line=line, col=0, rule_id="ANA004",
                    message=f"cannot analyze file: {exc}",
                )
            ],
            [],
        )
    ctx = FileContext(display, source, tree)
    findings: List[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(ctx))
    suppressions, hygiene = parse_suppressions(display, source)
    findings.extend(hygiene)
    # Rules walking one AST from several angles may report a node twice;
    # findings are value-objects, so exact duplicates collapse here.
    return sorted(set(findings)), suppressions


def run_lint(
    paths: Sequence[str],
    jobs: Optional[int] = None,
    project_checks: bool = True,
    manifest_path: str = MANIFEST_PATH,
) -> LintResult:
    """Analyze ``paths`` and return matched, sorted findings.

    Args:
        paths: files and/or directories to analyze.
        jobs: worker processes; ``None`` picks serial for small file
            sets and ``os.cpu_count()`` (capped at 8) above
            ``_PARALLEL_THRESHOLD`` files.
        project_checks: run the cross-module SPEC series when the
            analysed set contains the relevant modules.
        manifest_path: codec-shape manifest for SPEC003 (overridable so
            fixture trees can carry their own).

    Raises:
        ConfigurationError: for nonexistent paths or invalid ``jobs``.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    files = discover_files(paths)
    if jobs is None:
        jobs = 1
        if len(files) > _PARALLEL_THRESHOLD:
            jobs = min(os.cpu_count() or 1, 8)

    findings: List[Finding] = []
    by_path: Dict[str, List[Suppression]] = {}
    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            per_file = list(pool.map(analyze_file, files, chunksize=8))
    else:
        per_file = [analyze_file(path) for path in files]
    for path, (file_findings, suppressions) in zip(files, per_file):
        findings.extend(file_findings)
        if suppressions:
            by_path[_display_path(path)] = suppressions

    if project_checks:
        findings.extend(run_project_checks(files, manifest_path))

    active, suppressed = apply_suppressions(findings, by_path)
    return LintResult(
        findings=active, suppressed=suppressed, files_analyzed=len(files)
    )
