"""The analysis driver: discover files, run rules, apply suppressions.

Per-file work (parse + every registered rule) is embarrassingly
parallel, so with ``jobs > 1`` it fans out over a process pool; results
merge deterministically (findings sort by location) regardless of which
worker analysed which file. The project-level SPEC checks — which relate
*pairs* of files — run once in the parent, after which suppression
comments from every analysed file are matched centrally so one mechanism
covers per-file and cross-module findings alike.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.findings import Finding
from repro.analyze.paths import display_path
from repro.analyze.rules import FileContext, all_rules

# Rule modules register themselves on import. The imports live HERE, not
# in __init__, because process-pool workers import only this module to
# unpickle analyze_file — without them a worker would run zero rules and
# happily report a clean file.
import repro.analyze.det  # noqa: F401  (registration side effect)
import repro.analyze.fastpath  # noqa: F401  (registration side effect)
from repro.analyze.conc import run_conc_checks
from repro.analyze.speccheck import MANIFEST_PATH, run_project_checks
from repro.analyze.suppress import (
    _ALLOW,
    _MARKER,
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.errors import ConfigurationError

#: Below this many files a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 16


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: active findings (fail the gate), sorted by location.
        suppressed: findings covered by a reasoned allow comment.
        files_analyzed: number of Python files parsed.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files pass through), sorted.

    Raises:
        ConfigurationError: when a path does not exist.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


def _display_path(path: str) -> str:
    """Repo-relative forward-slash path when possible (stable baselines,
    identical findings from any cwd). See :mod:`repro.analyze.paths`."""
    return display_path(path)


def analyze_file(path: str) -> Tuple[List[Finding], List[Suppression]]:
    """Parse one file and run every per-file rule over it.

    Unparseable files yield a single ANA004 finding — shrinking analysis
    coverage must fail the gate, not pass it quietly.
    """
    display = _display_path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return (
            [
                Finding(
                    path=display, line=line, col=0, rule_id="ANA004",
                    message=f"cannot analyze file: {exc}",
                )
            ],
            [],
        )
    ctx = FileContext(display, source, tree)
    findings: List[Finding] = []
    for rule in all_rules():
        findings.extend(rule.check(ctx))
    suppressions, hygiene = parse_suppressions(display, source)
    findings.extend(hygiene)
    # Rules walking one AST from several angles may report a node twice;
    # findings are value-objects, so exact duplicates collapse here.
    return sorted(set(findings)), suppressions


def run_lint(
    paths: Sequence[str],
    jobs: Optional[int] = None,
    project_checks: bool = True,
    manifest_path: str = MANIFEST_PATH,
) -> LintResult:
    """Analyze ``paths`` and return matched, sorted findings.

    Args:
        paths: files and/or directories to analyze.
        jobs: worker processes; ``None`` picks serial for small file
            sets and ``os.cpu_count()`` (capped at 8) above
            ``_PARALLEL_THRESHOLD`` files.
        project_checks: run the cross-module SPEC series when the
            analysed set contains the relevant modules.
        manifest_path: codec-shape manifest for SPEC003 (overridable so
            fixture trees can carry their own).

    Raises:
        ConfigurationError: for nonexistent paths or invalid ``jobs``.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    files = discover_files(paths)
    if jobs is None:
        jobs = 1
        if len(files) > _PARALLEL_THRESHOLD:
            jobs = min(os.cpu_count() or 1, 8)

    findings: List[Finding] = []
    by_path: Dict[str, List[Suppression]] = {}
    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            per_file = list(pool.map(analyze_file, files, chunksize=8))
    else:
        per_file = [analyze_file(path) for path in files]
    for path, (file_findings, suppressions) in zip(files, per_file):
        findings.extend(file_findings)
        if suppressions:
            by_path[_display_path(path)] = suppressions

    if project_checks:
        findings.extend(run_project_checks(files, manifest_path))
        findings.extend(run_conc_checks(files))

    active, suppressed = apply_suppressions(findings, by_path)
    return LintResult(
        findings=active, suppressed=suppressed, files_analyzed=len(files)
    )


_STALE_MESSAGE = re.compile(r"suppression of ([A-Za-z]+[0-9]+) matches no")


def _comment_column(source: str, lineno: int) -> Optional[int]:
    """Column of the (tokenizer-verified) comment on line ``lineno``."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT and token.start[0] == lineno:
                return token.start[1]
    except (tokenize.TokenError, IndentationError):
        return None
    return None


def _remove_allow_clause(line_text: str, col: int, rule_id: str) -> Optional[str]:
    """``line_text`` with the ``allow[rule_id]`` clause deleted.

    Returns None when the comment carries no such clause; returns ``""``
    (plus the original line ending) when the whole line was only that
    comment and should disappear.
    """
    stripped = line_text.rstrip("\r\n")
    ending = line_text[len(stripped):]
    prefix, comment = stripped[:col], stripped[col:]
    marker = _MARKER.search(comment)
    if marker is None:
        return None
    clauses = [
        (m.group(1), m.group(2).strip().rstrip("-").strip())
        for m in _ALLOW.finditer(marker.group(1))
    ]
    kept = [(rid, reason) for rid, reason in clauses if rid != rule_id]
    if len(kept) == len(clauses):
        return None
    if kept:
        body = " -- ".join(
            f"allow[{rid}] {reason}" if reason else f"allow[{rid}]"
            for rid, reason in kept
        )
        return f"{prefix}{comment[: marker.start()]}# repro: {body}{ending}"
    remainder = prefix.rstrip()
    if not remainder:
        return ""  # comment-only line: delete it outright
    return remainder + ending


def fix_stale_suppressions(
    paths: Sequence[str],
    jobs: Optional[int] = None,
    manifest_path: str = MANIFEST_PATH,
) -> int:
    """Delete every ANA003 stale suppression in place; returns the count.

    Runs a full lint to locate stale allow clauses (the tokenizer
    anchors them exactly), then rewrites each affected file: the clause
    is removed from its comment, an emptied comment is removed from its
    line, and an emptied comment-only line is deleted entirely.
    """
    result = run_lint(paths, jobs=jobs, manifest_path=manifest_path)
    stale = [f for f in result.findings if f.rule_id == "ANA003"]
    if not stale:
        return 0
    fs_by_display = {_display_path(p): p for p in discover_files(paths)}
    by_file: Dict[str, List[Finding]] = {}
    for finding in stale:
        by_file.setdefault(finding.path, []).append(finding)
    removed = 0
    for display in sorted(by_file):
        fs_path = fs_by_display.get(display)
        if fs_path is None:
            continue
        with open(fs_path, encoding="utf-8") as handle:
            source = handle.read()
        lines = source.splitlines(keepends=True)
        changed = False
        for finding in sorted(by_file[display], reverse=True):
            match = _STALE_MESSAGE.match(finding.message)
            index = finding.line - 1
            if match is None or index >= len(lines):
                continue
            col = _comment_column("".join(lines), finding.line)
            if col is None:
                continue
            new_line = _remove_allow_clause(
                lines[index], col, match.group(1)
            )
            if new_line is None:
                continue
            if new_line == "":
                del lines[index]
            else:
                lines[index] = new_line
            changed = True
            removed += 1
        if changed:
            with open(fs_path, "w", encoding="utf-8") as handle:
                handle.write("".join(lines))
    return removed
