"""Lightweight project call graph / points-to for process-boundary rules.

The CONC rules (:mod:`repro.analyze.conc`) need to know, for every
callable and argument handed to ``ProcessPoolExecutor.submit``/``map``
or ``multiprocessing.Process(target=...)``, which functions can execute
in the *worker* process. This module builds that picture from nothing
but the stdlib AST of the analysed file set:

- an index of every module, top-level function, class and method;
- the **submission sites** — calls whose arguments cross a process
  boundary, found syntactically: any ``.submit(fn, ...)``, ``pool.map(
  fn, ...)`` where ``pool`` is bound to a ``ProcessPoolExecutor`` in an
  enclosing scope, and ``Process(target=fn, args=...)`` constructions;
- a conservative call graph. Direct calls resolve by name within the
  module and through ``import`` / ``from ... import`` edges;
  ``Class.method(...)`` and ``self.method(...)`` resolve against indexed
  classes; a bare method call (``obj.m()``) resolves only when exactly
  one indexed class defines ``m`` — ambiguity truncates the edge rather
  than inventing one. Function references passed as call arguments
  (callback registration) count as edges too, since the callee will
  eventually invoke them;
- the **worker-reachable set**: the closure of the call graph over every
  resolved submitted callable.

The pass is deliberately approximate — it is a linter, not a verifier.
Unresolved edges shrink the reachable set (possible false negatives);
they never grow it, so every finding built on reachability points at a
real submission path.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "SubmissionSite",
    "attribute_chain",
    "local_binding",
    "module_dotted_name",
]

#: Constructor names that create a process-pool object; ``name.map``
#: calls are only treated as submission sites when ``name`` is bound to
#: one of these in an enclosing scope (plain ``.map`` is far too common).
_POOL_CTOR_NAMES = frozenset({"ProcessPoolExecutor"})
_POOL_CTOR_CHAINS = frozenset({("multiprocessing", "Pool")})


def module_dotted_name(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` dir.

    ``src/repro/sweep/runner.py`` and ``/tmp/x/repro/sweep/runner.py``
    both map to ``repro.sweep.runner``, so fixture trees resolve their
    cross-module imports exactly like the real tree. Files outside any
    ``repro`` directory map to their bare stem.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            tail = parts[index:]
            break
    else:
        tail = [parts[-1]]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__" and len(tail) > 1:
        tail = tail[:-1]
    return ".".join(tail)


def attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None if the base is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def local_binding(
    scope_stack: Sequence[ast.AST], name: str
) -> Optional[ast.AST]:
    """The AST node ``name`` is bound to in the innermost enclosing scope.

    Recognises nested ``def``s, simple ``name = <expr>`` assigns,
    annotated assigns, and ``with <expr> as name``. Returns the bound
    value (the function node itself for a ``def``) or None when the name
    is not a local of any enclosing function.
    """
    for scope in reversed(list(scope_stack)):
        for node in ast.walk(scope):
            if node is scope:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == name:
                    return node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and node.value is not None
                ):
                    return node.value
            elif isinstance(node, ast.withitem):
                vars_ = node.optional_vars
                if isinstance(vars_, ast.Name) and vars_.id == name:
                    return node.context_expr
    return None


@dataclass(eq=False)
class FunctionInfo:
    """One indexed function or method (identity-hashed graph node)."""

    module: "ModuleInfo"
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None

    @property
    def label(self) -> str:
        """``repro.sweep.runner._execute_spec_dict`` — for messages."""
        return f"{self.module.dotted}.{self.qualname}"


@dataclass(eq=False)
class SubmissionSite:
    """One call whose arguments cross a process boundary."""

    module: "ModuleInfo"
    call: ast.Call
    api: str  # "submit" | "map" | "process"
    callable_expr: Optional[ast.expr]
    data_args: List[ast.expr] = field(default_factory=list)
    #: Nearest *indexed* enclosing function (None at module level).
    enclosing: Optional[FunctionInfo] = None
    #: Enclosing function AST nodes, outermost first (for local lookup).
    scope_stack: Tuple[ast.AST, ...] = ()


class ModuleInfo:
    """Per-module symbol tables feeding the call graph."""

    __slots__ = (
        "path",
        "dotted",
        "tree",
        "functions",
        "classes",
        "module_aliases",
        "from_imports",
        "mutable_globals",
    )

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.dotted = module_dotted_name(path)
        self.tree = tree
        #: Top-level functions by name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Class name -> method name -> info.
        self.classes: Dict[str, Dict[str, FunctionInfo]] = {}
        #: Local name -> dotted module (``import x.y as z`` and plain).
        self.module_aliases: Dict[str, str] = {}
        #: Local name -> (module, original name) for ``from m import n``.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: Module-level mutable containers: name -> binding line.
        self.mutable_globals: Dict[str, int] = {}
        self._index()

    def _index(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = FunctionInfo(
                    self, stmt.name, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                methods: Dict[str, FunctionInfo] = {}
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods[item.name] = FunctionInfo(
                            self,
                            f"{stmt.name}.{item.name}",
                            item,
                            cls=stmt.name,
                        )
                self.classes[stmt.name] = methods
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and _is_mutable_ctor(
                        stmt.value
                    ):
                        self.mutable_globals[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if (
                    isinstance(target, ast.Name)
                    and stmt.value is not None
                    and _is_mutable_ctor(stmt.value)
                ):
                    self.mutable_globals[target.id] = stmt.lineno
        # Imports anywhere, including lazy function-level ones: the
        # graph must follow `from repro.cluster.sharding import ...`
        # inside ScenarioSpec.execute.
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve_module_prefix(
        self, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """Dotted module named by all but the last element of ``chain``."""
        if len(chain) < 2:
            return None
        prefix = ".".join(chain[:-1])
        if prefix in self.module_aliases:
            return self.module_aliases[prefix]
        head = self.module_aliases.get(chain[0])
        if head is not None and len(chain) > 2:
            return ".".join((head,) + chain[1:-1])
        return None


def _is_mutable_ctor(expr: ast.expr) -> bool:
    """Literal/constructor expressions that create a mutable container."""
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in (
            "dict", "list", "set", "defaultdict", "deque", "OrderedDict",
            "Counter",
        ):
            return True
        chain = attribute_chain(expr.func)
        if chain is not None and chain[-1] in (
            "defaultdict", "deque", "OrderedDict", "Counter",
        ):
            return True
    return False


def _is_pool_ctor(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    if isinstance(expr.func, ast.Name):
        return expr.func.id in _POOL_CTOR_NAMES
    chain = attribute_chain(expr.func)
    if chain is None:
        return False
    return chain[-1] in _POOL_CTOR_NAMES or chain in _POOL_CTOR_CHAINS


def _pool_names(scope_body: Sequence[ast.stmt]) -> Set[str]:
    """Names bound to a process pool anywhere in one scope body."""
    names: Set[str] = set()
    for stmt in scope_body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Assign) and _is_pool_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.withitem) and _is_pool_ctor(
                node.context_expr
            ):
                vars_ = node.optional_vars
                if isinstance(vars_, ast.Name):
                    names.add(vars_.id)
    return names


class _SiteCollector(ast.NodeVisitor):
    """Finds submission sites in one module, tracking enclosing scopes."""

    def __init__(self, graph: "CallGraph", module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self.sites: List[SubmissionSite] = []
        self._stack: List[ast.AST] = []
        self._module_pools = _pool_names(module.tree.body)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def _enclosing(self) -> Optional[FunctionInfo]:
        for scope in reversed(self._stack):
            info = self.graph.info_by_node.get(id(scope))
            if info is not None:
                return info
        return None

    def _is_pool_name(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Name):
            return False
        if expr.id in self._module_pools:
            return True
        for scope in self._stack:
            body = getattr(scope, "body", None)
            if body and expr.id in _pool_names(body):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        site = self._classify(node)
        if site is not None:
            self.sites.append(site)
        self.generic_visit(node)

    def _classify(self, node: ast.Call) -> Optional[SubmissionSite]:
        func = node.func
        common = dict(
            module=self.module,
            call=node,
            enclosing=self._enclosing(),
            scope_stack=tuple(self._stack),
        )
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            return SubmissionSite(
                api="submit",
                callable_expr=node.args[0] if node.args else None,
                data_args=list(node.args[1:])
                + [kw.value for kw in node.keywords],
                **common,
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "map"
            and self._is_pool_name(func.value)
        ):
            return SubmissionSite(
                api="map",
                callable_expr=node.args[0] if node.args else None,
                data_args=list(node.args[1:]),
                **common,
            )
        if self._is_process_ctor(func):
            target: Optional[ast.expr] = None
            data: List[ast.expr] = []
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
                elif kw.arg == "args" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    data.extend(kw.value.elts)
                elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
                    data.extend(v for v in kw.value.values if v is not None)
                elif kw.arg not in ("daemon", "name"):
                    data.append(kw.value)
            if target is None and node.args:
                # Positional Process(group, target, ...) signature.
                target = node.args[1] if len(node.args) > 1 else None
            if target is None:
                return None
            return SubmissionSite(
                api="process", callable_expr=target, data_args=data,
                **common,
            )
        return None

    def _is_process_ctor(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            origin = self.module.from_imports.get(func.id)
            return origin is not None and origin == (
                "multiprocessing", "Process",
            )
        chain = attribute_chain(func)
        if chain is None or chain[-1] != "Process":
            return False
        dotted = self.module.resolve_module_prefix(chain)
        return dotted == "multiprocessing"


class CallGraph:
    """Project-wide call graph over an analysed file set."""

    def __init__(self, paths: Sequence[str]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: id(function AST node) -> info, for enclosing-scope lookup.
        self.info_by_node: Dict[int, FunctionInfo] = {}
        self.method_index: Dict[str, List[FunctionInfo]] = {}
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError, ValueError):
                continue  # unreadable/unparseable: ANA004 reports it
            module = ModuleInfo(path, tree)
            self.modules[module.dotted] = module
        for module in self.modules.values():
            for info in module.functions.values():
                self.info_by_node[id(info.node)] = info
            for methods in module.classes.values():
                for info in methods.values():
                    self.info_by_node[id(info.node)] = info
                    self.method_index.setdefault(
                        info.node.name, []  # type: ignore[attr-defined]
                    ).append(info)
        self.sites: List[SubmissionSite] = []
        for module in self.modules.values():
            collector = _SiteCollector(self, module)
            collector.visit(module.tree)
            self.sites.extend(collector.sites)

    # -- resolution --------------------------------------------------

    def _unique_method(self, name: str) -> Optional[FunctionInfo]:
        candidates = self.method_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _class_methods(
        self, name: str, module: ModuleInfo
    ) -> Optional[Dict[str, FunctionInfo]]:
        if name in module.classes:
            return module.classes[name]
        origin = module.from_imports.get(name)
        if origin is not None:
            other = self.modules.get(origin[0])
            if other is not None:
                return other.classes.get(origin[1])
        return None

    def resolve_callable(
        self,
        expr: ast.expr,
        module: ModuleInfo,
        scope_stack: Sequence[ast.AST] = (),
        enclosing: Optional[FunctionInfo] = None,
    ) -> Optional[FunctionInfo]:
        """The indexed function ``expr`` evaluates to, if determinable."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if local_binding(scope_stack, name) is not None:
                return None  # nested def / local rebind: not indexed
            if name in module.functions:
                return module.functions[name]
            if name in module.classes:
                return module.classes[name].get("__init__")
            origin = module.from_imports.get(name)
            if origin is not None:
                other = self.modules.get(origin[0])
                if other is not None:
                    if origin[1] in other.functions:
                        return other.functions[origin[1]]
                    if origin[1] in other.classes:
                        return other.classes[origin[1]].get("__init__")
            return None
        if isinstance(expr, ast.Attribute):
            chain = attribute_chain(expr)
            if chain is None:
                # Base is a call/subscript: obj.m() with unknown obj.
                return self._unique_method(expr.attr)
            if chain[0] == "self" and len(chain) == 2:
                if enclosing is not None and enclosing.cls is not None:
                    methods = module.classes.get(enclosing.cls, {})
                    resolved = methods.get(chain[1])
                    if resolved is not None:
                        return resolved
                return self._unique_method(chain[1])
            if len(chain) == 2:
                methods = self._class_methods(chain[0], module)
                if methods is not None:
                    return methods.get(chain[1])
            dotted = module.resolve_module_prefix(chain)
            if dotted is not None:
                other = self.modules.get(dotted)
                if other is None:
                    return None  # known external module: never guess
                if chain[-1] in other.functions:
                    return other.functions[chain[-1]]
                if chain[-1] in other.classes:
                    return other.classes[chain[-1]].get("__init__")
                return None
            return self._unique_method(chain[-1])
        return None

    # -- reachability ------------------------------------------------

    def submitted_roots(self) -> List[FunctionInfo]:
        """Resolved worker entry points, one per resolvable site."""
        roots: List[FunctionInfo] = []
        for site in self.sites:
            expr = site.callable_expr
            if expr is None:
                continue
            if isinstance(expr, ast.Call):  # functools.partial(f, ...)
                expr = expr.args[0] if expr.args else None
                if expr is None:
                    continue
            info = self.resolve_callable(
                expr, site.module, site.scope_stack, site.enclosing
            )
            if info is not None:
                roots.append(info)
        return roots

    def callees(self, info: FunctionInfo) -> List[FunctionInfo]:
        """Resolved direct callees and passed function references."""
        out: List[FunctionInfo] = []
        scope_stack = (info.node,)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.resolve_callable(
                node.func, info.module, scope_stack, info
            )
            if resolved is not None:
                out.append(resolved)
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    ref = self.resolve_callable(
                        arg, info.module, scope_stack, info
                    )
                    if ref is not None:
                        out.append(ref)
        return out

    def worker_reachable(self) -> Set[FunctionInfo]:
        """Closure of the call graph over every submitted callable."""
        seen: Set[FunctionInfo] = set()
        frontier = self.submitted_roots()
        while frontier:
            info = frontier.pop()
            if info in seen:
                continue
            seen.add(info)
            frontier.extend(self.callees(info))
        return seen
