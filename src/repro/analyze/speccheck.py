"""SPEC-series: cross-module consistency of spec, cache key and codec.

These checks walk dataclass definitions and serializer function ASTs —
no imports, no execution — and verify the three-way contract the result
store depends on:

- **SPEC001** — every ``ScenarioSpec`` field is read by the canonical
  ``cache_key`` property. A field missing from the key means two specs
  that differ in that field share a store row and memo slot: the store
  would serve one point's physics as the other's.
- **SPEC002** — every ``RunResult`` field appears in *both* directions
  of the store codec (``result_to_dict`` emits it, ``result_from_dict``
  rebuilds it). A field missing from either side silently zeroes an
  observable on every cache hit.
- **SPEC003** — the codec's *shape* (emitted keys + decoded kwargs +
  supported versions) is fingerprinted against the committed manifest
  (``codec_manifest.json``). Changing the shape without bumping
  ``FORMAT_VERSION`` would let old readers misparse new rows; the rule
  forces the version bump and the manifest refresh
  (``repro lint --update-codec-manifest``) through review together.

Fields whose serialized spelling legitimately differs from the dataclass
field are declared in :data:`FIELD_ALIASES` — the latency tracker, for
example, is stored as exact samples *or* sketch state.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.findings import Finding
from repro.analyze.paths import display_path
from repro.analyze.rules import declare_rule

SPEC001 = declare_rule(
    "SPEC001",
    "ScenarioSpec field missing from cache_key",
    "A spec field the cache key ignores means two different simulation "
    "points share one store row and memo slot — the store then serves "
    "one point's results as the other's, silently.",
)
SPEC002 = declare_rule(
    "SPEC002",
    "RunResult field missing from the store codec",
    "A result field the codec drops (on encode or decode) silently "
    "zeroes that observable on every cache hit, breaking the "
    "'store hit == fresh simulation' contract the experiments rely on.",
)
SPEC003 = declare_rule(
    "SPEC003",
    "codec shape changed without a FORMAT_VERSION bump",
    "Old rows decoded by a new reader (or vice versa) must be a clean "
    "version miss, never a misparse; any change to the codec's emitted "
    "keys or decoded kwargs must bump FORMAT_VERSION and refresh the "
    "committed manifest (repro lint --update-codec-manifest).",
)

#: Dataclass fields whose codec spelling differs from the field name.
#: ``server_latency`` is a PercentileTracker: encoded as exact samples
#: or as DDSketch state, decoded back into a tracker kwarg.
FIELD_ALIASES: Dict[str, Set[str]] = {
    "server_latency": {"server_latency_samples", "server_latency_sketch"},
}

#: Files the project-level checks walk, relative to the repro package
#: root (located inside whatever tree is being linted).
SPEC_FILE = "sweep/spec.py"
SERIALIZE_FILE = "store/serialize.py"
METRICS_FILE = "server/metrics.py"

#: The committed shape manifest lives next to this module.
MANIFEST_PATH = os.path.join(os.path.dirname(__file__), "codec_manifest.json")


def _parse(path: str) -> ast.Module:
    with open(path, encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=path)


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> List[Tuple[str, int]]:
    """(field name, line) for each annotated dataclass field."""
    fields = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.dump(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((node.target.id, node.lineno))
    return fields


def _function_def(
    class_def: ast.AST, name: str
) -> Optional[ast.FunctionDef]:
    for node in getattr(class_def, "body", []):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _self_reads(func: ast.FunctionDef) -> Set[str]:
    """Names read as ``self.<name>`` anywhere in ``func``."""
    reads = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return reads


def _dict_literal_keys(func: ast.FunctionDef) -> Set[str]:
    """String keys of every dict literal (and str subscript store) in
    ``func`` — the keys ``result_to_dict`` emits."""
    keys = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif (
            isinstance(node, (ast.Assign, ast.AugAssign))
            and isinstance(getattr(node, "targets", [None])[0]
                          if isinstance(node, ast.Assign) else node.target,
                          ast.Subscript)
        ):
            target = node.targets[0] if isinstance(node, ast.Assign) else node.target
            key = target.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
    return keys


def _constructor_kwargs(func: ast.FunctionDef, class_name: str) -> Set[str]:
    """Keyword names passed to ``class_name(...)`` inside ``func``."""
    kwargs = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == class_name
        ):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    kwargs.add(keyword.arg)
    return kwargs


def _module_constant(tree: ast.Module, name: str) -> Any:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    try:
                        return ast.literal_eval(node.value)
                    except ValueError:
                        return None
    return None


def _relpath(path: str) -> str:
    """Repo-relative display path (cwd-independent; see analyze.paths)."""
    return display_path(path)


# -- SPEC001 ---------------------------------------------------------------
def check_cache_key_coverage(spec_path: str) -> List[Finding]:
    """Every ScenarioSpec field must be read by the cache_key property."""
    tree = _parse(spec_path)
    class_def = _class_def(tree, "ScenarioSpec")
    display = _relpath(spec_path)
    if class_def is None:
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC001",
                message="ScenarioSpec class not found; cache-key coverage "
                        "cannot be verified",
            )
        ]
    cache_key = _function_def(class_def, "cache_key")
    if cache_key is None:
        return [
            Finding(
                path=display, line=class_def.lineno, col=class_def.col_offset,
                rule_id="SPEC001",
                message="ScenarioSpec.cache_key property not found",
            )
        ]
    reads = _self_reads(cache_key)
    findings = []
    for field_name, line in _dataclass_fields(class_def):
        if field_name not in reads:
            findings.append(
                Finding(
                    path=display, line=line, col=4, rule_id="SPEC001",
                    message=(
                        f"ScenarioSpec.{field_name} is not part of "
                        "cache_key: two specs differing only in "
                        f"{field_name!r} would share a store row"
                    ),
                )
            )
    return findings


# -- SPEC002 ---------------------------------------------------------------
def check_codec_coverage(
    serialize_path: str, metrics_path: str
) -> List[Finding]:
    """Every RunResult field must be emitted and decoded by the codec."""
    serialize_tree = _parse(serialize_path)
    metrics_tree = _parse(metrics_path)
    display = _relpath(serialize_path)
    class_def = _class_def(metrics_tree, "RunResult")
    if class_def is None:
        return [
            Finding(
                path=_relpath(metrics_path), line=1, col=0, rule_id="SPEC002",
                message="RunResult class not found; codec coverage cannot "
                        "be verified",
            )
        ]
    to_dict = _function_def(serialize_tree, "result_to_dict")
    from_dict = _function_def(serialize_tree, "result_from_dict")
    findings = []
    if to_dict is None or from_dict is None:
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC002",
                message="result_to_dict/result_from_dict not found in the "
                        "store codec",
            )
        ]
    emitted = _dict_literal_keys(to_dict)
    decoded = _constructor_kwargs(from_dict, "RunResult")
    # Decode also reads keys via data["..."] / data.get("...") — those
    # count for the emit side of aliased fields only through FIELD_ALIASES.
    for field_name, _line in _dataclass_fields(class_def):
        aliases = FIELD_ALIASES.get(field_name, {field_name})
        if not (aliases & emitted):
            findings.append(
                Finding(
                    path=display, line=to_dict.lineno, col=to_dict.col_offset,
                    rule_id="SPEC002",
                    message=(
                        f"RunResult.{field_name} is not emitted by "
                        "result_to_dict: the observable would be lost on "
                        "every store write"
                    ),
                )
            )
        # Aliased fields may be rebuilt through helper state rather than
        # a direct kwarg; reading the aliased key from the row counts.
        if field_name not in decoded and not (aliases & _loaded_keys(from_dict)):
            findings.append(
                Finding(
                    path=display, line=from_dict.lineno,
                    col=from_dict.col_offset, rule_id="SPEC002",
                    message=(
                        f"RunResult.{field_name} is not rebuilt by "
                        "result_from_dict: every cache hit would "
                        "drop the observable"
                    ),
                )
            )
    return findings


def _loaded_keys(func: ast.FunctionDef) -> Set[str]:
    """Keys read from the input dict: ``data["k"]`` or ``data.get("k")``."""
    keys = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys


# -- SPEC003 ---------------------------------------------------------------
def codec_fingerprint(serialize_path: str) -> Tuple[Optional[int], str]:
    """(FORMAT_VERSION, sha256 of the codec's shape).

    The shape is everything a reader of a store row depends on: the keys
    ``result_to_dict`` emits, the keys and kwargs ``result_from_dict``
    consumes, and the accepted version set.
    """
    tree = _parse(serialize_path)
    to_dict = _function_def(tree, "result_to_dict")
    from_dict = _function_def(tree, "result_from_dict")
    version = _module_constant(tree, "FORMAT_VERSION")
    supported = _module_constant(tree, "SUPPORTED_VERSIONS")
    shape = {
        "emitted_keys": sorted(_dict_literal_keys(to_dict)) if to_dict else [],
        "decoded_kwargs": sorted(
            _constructor_kwargs(from_dict, "RunResult")
        ) if from_dict else [],
        "loaded_keys": sorted(_loaded_keys(from_dict)) if from_dict else [],
        "format_version": version,
        "supported_versions": list(supported) if supported else [],
    }
    digest = hashlib.sha256(
        json.dumps(shape, sort_keys=True).encode("ascii")
    ).hexdigest()
    return (version if isinstance(version, int) else None), digest


def check_codec_version(
    serialize_path: str, manifest_path: str = MANIFEST_PATH
) -> List[Finding]:
    """The codec shape may only change together with a version bump."""
    display = _relpath(serialize_path)
    version, fingerprint = codec_fingerprint(serialize_path)
    if version is None:
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC003",
                message="FORMAT_VERSION constant not found in the store codec",
            )
        ]
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC003",
                message=(
                    "codec manifest missing or unreadable; run "
                    "`repro lint --update-codec-manifest` and commit "
                    + _relpath(manifest_path)
                ),
            )
        ]
    if manifest.get("format_version") != version:
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC003",
                message=(
                    f"FORMAT_VERSION is {version} but the committed manifest "
                    f"records {manifest.get('format_version')}; run "
                    "`repro lint --update-codec-manifest` and commit the "
                    "refreshed manifest with the codec change"
                ),
            )
        ]
    if manifest.get("fingerprint") != fingerprint:
        return [
            Finding(
                path=display, line=1, col=0, rule_id="SPEC003",
                message=(
                    "store codec shape changed without bumping "
                    f"FORMAT_VERSION (still {version}): old rows would "
                    "misparse instead of missing cleanly; bump the version, "
                    "extend SUPPORTED_VERSIONS handling, then run "
                    "`repro lint --update-codec-manifest`"
                ),
            )
        ]
    return []


def update_codec_manifest(
    serialize_path: Optional[str] = None, manifest_path: str = MANIFEST_PATH
) -> Dict[str, Any]:
    """Record the current codec shape; returns the written manifest.

    Defaults to the installed package's own ``store/serialize.py`` so the
    CLI (``repro lint --update-codec-manifest``) works with no arguments.
    """
    if serialize_path is None:
        serialize_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            *SERIALIZE_FILE.split("/"),
        )
    version, fingerprint = codec_fingerprint(serialize_path)
    manifest = {"format_version": version, "fingerprint": fingerprint}
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


# -- project entry ---------------------------------------------------------
def locate_repro_files(paths: Sequence[str]) -> Dict[str, str]:
    """Find the spec/serialize/metrics modules among analysed files.

    Matching is by path suffix below a ``repro`` directory, so both the
    real tree and test fixtures (``<tmp>/repro/store/serialize.py``)
    resolve.
    """
    located: Dict[str, str] = {}
    wanted = {SPEC_FILE: "spec", SERIALIZE_FILE: "serialize",
              METRICS_FILE: "metrics"}
    for path in paths:
        normalized = path.replace(os.sep, "/")
        for suffix, name in wanted.items():
            if normalized.endswith("repro/" + suffix):
                located[name] = path
    return located


def run_project_checks(
    paths: Sequence[str], manifest_path: str = MANIFEST_PATH
) -> List[Finding]:
    """Run every SPEC check the analysed file set supports.

    Checks needing a file outside the analysed set are skipped, so
    linting a single unrelated directory stays meaningful.
    """
    located = locate_repro_files(paths)
    findings: List[Finding] = []
    if "spec" in located:
        findings += check_cache_key_coverage(located["spec"])
    if "serialize" in located and "metrics" in located:
        findings += check_codec_coverage(located["serialize"], located["metrics"])
    if "serialize" in located:
        findings += check_codec_version(located["serialize"], manifest_path)
    return findings
