"""Package-level C-states (the paper's footnote 1 context).

Package C-states (PC2/PC6/PC8...) gate *shared* resources — LLC, mesh,
memory controllers — and therefore require **every** core to be idle
simultaneously, plus residencies even longer than core C6's. The paper
notes they "take longer to transition and require longer residency
times" and targets client usage patterns (e.g. >80% of video-streaming
time in C8).

This model quantifies why they cannot rescue a latency-critical server:
with N cores independently idle a fraction ``p`` of the time, the whole
package is simultaneously idle only ~``p^N`` of the time, and the
simultaneous-idle *intervals* are far shorter than any package target
residency at realistic loads. Core-level agility (AW) is therefore the
binding lever — exactly the paper's positioning (package-level work is
delegated to AgilePkgC [9]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.units import MS, US


@dataclass(frozen=True)
class PackageCState:
    """One package idle state.

    Attributes:
        name: "PC2", "PC6", ...
        power_watts: package power while resident (uncore + all cores).
        target_residency: minimum simultaneous-idle span to profit.
        exit_latency: time to wake the package.
    """

    name: str
    power_watts: float
    target_residency: float
    exit_latency: float

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise ConfigurationError(f"{self.name}: power must be >= 0")
        if self.target_residency < 0 or self.exit_latency < 0:
            raise ConfigurationError(f"{self.name}: times must be >= 0")


def skylake_package_cstates() -> List[PackageCState]:
    """Representative Skylake-server package states ([7-9] band)."""
    return [
        PackageCState("PC2", power_watts=25.0, target_residency=200 * US,
                      exit_latency=40 * US),
        PackageCState("PC6", power_watts=12.0, target_residency=2 * MS,
                      exit_latency=400 * US),
    ]


@dataclass(frozen=True)
class SimultaneousIdleModel:
    """All-cores-idle statistics under independent per-core idling.

    Attributes:
        cores: core count.
        per_core_idle_fraction: fraction of time one core is idle.
        mean_idle_interval: mean duration of one core's idle interval.
    """

    cores: int
    per_core_idle_fraction: float
    mean_idle_interval: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("core count must be positive")
        if not 0.0 <= self.per_core_idle_fraction <= 1.0:
            raise ConfigurationError("idle fraction must be in [0, 1]")
        if self.mean_idle_interval <= 0:
            raise ConfigurationError("idle interval must be positive")

    @property
    def all_idle_fraction(self) -> float:
        """Fraction of time every core is idle at once: p^N."""
        return self.per_core_idle_fraction ** self.cores

    @property
    def mean_all_idle_interval(self) -> float:
        """Mean duration of an all-idle interval.

        Under the independent alternating-renewal approximation, the
        all-idle period ends when *any* core wakes; with exponential
        residual idle times the minimum of N residuals has mean
        ``mean_idle_interval / N``.
        """
        return self.mean_idle_interval / self.cores

    def usable_fraction(self, state: PackageCState) -> float:
        """Fraction of time the package could actually sit in ``state``.

        Zero unless the typical all-idle interval exceeds the state's
        target residency (the governor would never commit otherwise).
        """
        if self.mean_all_idle_interval < state.target_residency:
            return 0.0
        return self.all_idle_fraction

    def best_state(self, states: List[PackageCState]) -> Tuple[str, float]:
        """(name, usable fraction) of the deepest usable package state,
        or ("PC0", 0.0) when none qualifies."""
        usable = [
            (s.name, self.usable_fraction(s))
            for s in sorted(states, key=lambda s: s.power_watts, reverse=True)
            if self.usable_fraction(s) > 0.0
        ]
        if not usable:
            return ("PC0", 0.0)
        return usable[-1]


def package_state_opportunity(
    per_core_idle_fraction: float,
    mean_idle_interval: float,
    cores: int = 10,
) -> Tuple[str, float]:
    """Convenience: the deepest usable package state at an operating
    point described by per-core idling statistics.

    At the paper's Memcached loads (idle intervals of tens of us to ~1 ms
    across 10 cores) this returns ("PC0", 0.0) — package states are
    unusable, so the savings must come from core-level states.
    """
    model = SimultaneousIdleModel(
        cores=cores,
        per_core_idle_fraction=per_core_idle_fraction,
        mean_idle_interval=mean_idle_interval,
    )
    return model.best_state(skylake_package_cstates())
