"""Private L1/L2 cache model.

The C6 entry flow must flush the private caches; the flush time depends on
how many lines are dirty and the core frequency (Sec 3). This model tracks
an approximate dirty fraction as the workload runs so the simulator can
charge a workload-dependent C6 entry latency, and answers coherence
queries (does a snoop hit here?) probabilistically.

It is intentionally a statistical cache — no tag arrays — because the
evaluation consumes flush *time* and snoop *cost*, not hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.latency import CacheFlushModel
from repro.errors import ConfigurationError


@dataclass
class PrivateCaches:
    """L1+L2 state relevant to idle transitions.

    Attributes:
        flush_model: geometry/cost model used for flush-time estimates.
        write_fraction: fraction of requests that dirty lines (service
            write ratio; ETC Memcached is ~3% SETs, MySQL OLTP far more).
        dirty_growth_per_request: dirty-fraction increase per write-heavy
            request served (saturates at ``max_dirty_fraction``).
        max_dirty_fraction: dirtiness ceiling (50% is the paper's example
            operating point).
    """

    flush_model: CacheFlushModel = field(default_factory=CacheFlushModel)
    write_fraction: float = 0.1
    dirty_growth_per_request: float = 0.002
    max_dirty_fraction: float = 0.5
    _dirty_fraction: float = field(default=0.25, init=False)
    _flushes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if self.dirty_growth_per_request < 0:
            raise ConfigurationError("dirty growth must be >= 0")
        if not 0.0 <= self.max_dirty_fraction <= 1.0:
            raise ConfigurationError("max_dirty_fraction must be in [0, 1]")
        self._dirty_fraction = min(self._dirty_fraction, self.max_dirty_fraction)

    @property
    def dirty_fraction(self) -> float:
        return self._dirty_fraction

    @property
    def flush_count(self) -> int:
        return self._flushes

    def record_request(self) -> None:
        """A request was served on this core; dirtiness creeps up."""
        growth = self.dirty_growth_per_request * self.write_fraction
        self._dirty_fraction = min(
            self.max_dirty_fraction, self._dirty_fraction + growth
        )

    def flush_time(self, frequency_hz: float) -> float:
        """Seconds to flush at the current dirtiness (C6 entry cost)."""
        return self.flush_model.flush_time(self._dirty_fraction, frequency_hz)

    def flush(self, frequency_hz: float) -> float:
        """Flush the caches (C6 entry): returns the time spent, resets state."""
        duration = self.flush_time(frequency_hz)
        self._dirty_fraction = 0.0
        self._flushes += 1
        return duration

    def reset_after_refill(self, warm_fraction: float = 0.25) -> None:
        """After C6 exit the caches refill; restore a warm dirtiness level.

        Raises:
            ConfigurationError: if warm_fraction outside [0, max].
        """
        if not 0.0 <= warm_fraction <= self.max_dirty_fraction:
            raise ConfigurationError(
                f"warm fraction must be in [0, {self.max_dirty_fraction}]"
            )
        self._dirty_fraction = warm_fraction
