"""Snoop (cache-coherence) traffic model — Sec 4.2 and 7.5.

A core in C1 or C6A has *coherent* (unflushed) private caches, so other
cores' misses generate snoop requests it must answer even while idle. The
two states differ only in what waking the cache domain costs:

- C1: clock-ungate L1/L2 and controllers (~50 mW extra while serving);
- C6A: additionally exit SRAM sleep-mode (~120 mW more, ~170 mW total),
  with a 2-cycle wake hidden under the tag access.

A core in C6 flushed its caches, so snoops are satisfied from the LLC
directory and never reach it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.ccsm import CCSM
from repro.errors import ConfigurationError
from repro.simkit.distributions import Distribution, Exponential
from repro.units import MILLIWATT, US


@dataclass(frozen=True)
class SnoopModel:
    """Cost of serving one snoop burst in each idle state.

    Attributes:
        service_time: cache-domain busy time per snoop burst.
        c1_power_delta: extra power over quiescent C1 while serving.
        c6a_power_delta: extra power over quiescent C6A while serving
            (clock ungate + sleep-mode exit).
    """

    service_time: float = 0.2 * US
    c1_power_delta: float = 50 * MILLIWATT
    c6a_power_delta: float = 170 * MILLIWATT

    def __post_init__(self) -> None:
        if self.service_time < 0:
            raise ConfigurationError("snoop service time must be >= 0")
        if self.c1_power_delta < 0 or self.c6a_power_delta < 0:
            raise ConfigurationError("snoop power deltas must be >= 0")

    @classmethod
    def from_ccsm(cls, ccsm: CCSM, service_time: float = 0.2 * US) -> "SnoopModel":
        """Derive the C6A delta from the CCSM model's components."""
        return cls(
            service_time=service_time,
            c1_power_delta=ccsm.config.clock_ungate_power,
            c6a_power_delta=ccsm.snoop_service_power_delta(),
        )

    def power_delta_for(self, state_name: str) -> float:
        """Extra power while serving snoops in the given idle state.

        C6/flushed states never see snoops, so their delta is zero.
        """
        if state_name in ("C1", "C1E"):
            return self.c1_power_delta
        if state_name in ("C6A", "C6AE"):
            return self.c6a_power_delta
        return 0.0

    def sees_snoops(self, state_name: str) -> bool:
        """Whether a core idling in ``state_name`` must serve snoops."""
        return state_name in ("C1", "C1E", "C6A", "C6AE")


class SnoopTrafficGenerator:
    """Poisson snoop-burst arrivals directed at one core.

    Snoop rate grows with the activity of *other* cores; callers pass the
    rate that matches the scenario (the Sec 7.5 analysis uses a saturating
    rate to bound the loss).
    """

    def __init__(self, rate_hz: float, seed: int = 0):
        if rate_hz < 0:
            raise ConfigurationError(f"snoop rate must be >= 0, got {rate_hz}")
        self.rate_hz = rate_hz
        self._interarrival: Optional[Distribution] = (
            Exponential(1.0 / rate_hz, seed=seed) if rate_hz > 0 else None
        )

    def next_arrival_delay(self) -> Optional[float]:
        """Delay to the next snoop burst, or None if traffic is disabled."""
        if self._interarrival is None:
            return None
        return self._interarrival.sample()

    def expected_duty_cycle(self, model: SnoopModel) -> float:
        """Fraction of time the cache domain is awake serving snoops."""
        duty = self.rate_hz * model.service_time
        return min(duty, 1.0)
