"""Server-CPU microarchitecture substrate.

Models the parts of a Skylake-class server processor the evaluation needs:

- :mod:`~repro.uarch.core` — a CPU core: frequency points, C-state
  residency tracking, active/idle power.
- :mod:`~repro.uarch.cache` — private L1/L2 with a dirty-line model
  feeding the C6 flush-latency estimate.
- :mod:`~repro.uarch.coherence` — snoop traffic generation and the cost
  of serving it in each idle state.
- :mod:`~repro.uarch.turbo` — a token-bucket thermal/Turbo budget
  (RAPL PL1/PL2-style) reproducing the Sec 7.3 interaction.
- :mod:`~repro.uarch.package` — a multi-core package with uncore power.
"""

from repro.uarch.core import Core, CoreStats
from repro.uarch.cache import PrivateCaches
from repro.uarch.coherence import SnoopModel, SnoopTrafficGenerator
from repro.uarch.snoopfilter import SnoopFilterModel
from repro.uarch.turbo import TurboBudget, TurboConfig
from repro.uarch.package import Package, PackageConfig
from repro.uarch.package_cstates import (
    PackageCState,
    SimultaneousIdleModel,
    package_state_opportunity,
    skylake_package_cstates,
)

__all__ = [
    "Core",
    "CoreStats",
    "PrivateCaches",
    "SnoopModel",
    "SnoopTrafficGenerator",
    "SnoopFilterModel",
    "TurboBudget",
    "TurboConfig",
    "Package",
    "PackageConfig",
    "PackageCState",
    "SimultaneousIdleModel",
    "package_state_opportunity",
    "skylake_package_cstates",
]
