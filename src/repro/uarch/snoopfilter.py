"""Snoop-filter / coherence-traffic derivation.

The constant per-core snoop rates in :mod:`repro.workloads` are
calibration inputs; this module *derives* them from first principles so
studies can scale snoop traffic with load instead of assuming it.

A Skylake-style server core tile carries a snoop-filter slice (Fig 1).
An LLC miss or cross-core sharing access from core A probes the filter;
on a hit to a line cached privately by core B, a snoop is sent to B.
The per-idle-core snoop rate therefore scales with:

    rate_B = misses_per_second(others) * P(filter hit on B)

where the hit probability depends on the sharing degree of the workload
and how much of B's cache holds shared data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SnoopFilterModel:
    """Derives per-core snoop rates from workload activity.

    Attributes:
        llc_miss_rate_per_request: LLC-reaching accesses each served
            request causes on its core (order 10-100 for small requests).
        sharing_probability: probability such an access targets a line
            that another core caches privately (low for partitioned
            key-value stores, higher for shared B-trees).
        filter_coverage: fraction of truly-shared lines the snoop filter
            tracks precisely; untracked lines broadcast (cost *more*
            snoops). 1.0 = perfect filter.
    """

    llc_miss_rate_per_request: float = 10.0
    sharing_probability: float = 0.002
    filter_coverage: float = 0.98

    def __post_init__(self) -> None:
        if self.llc_miss_rate_per_request < 0:
            raise ConfigurationError("miss rate must be >= 0")
        if not 0.0 <= self.sharing_probability <= 1.0:
            raise ConfigurationError("sharing probability must be in [0, 1]")
        if not 0.0 < self.filter_coverage <= 1.0:
            raise ConfigurationError("filter coverage must be in (0, 1]")

    def snoop_rate_for_idle_core(self, total_qps: float, cores: int) -> float:
        """Snoop bursts per second hitting one idle core.

        Requests served by the other ``cores - 1`` cores generate probes;
        a filtered probe targeting this core's cache becomes one snoop,
        an unfiltered shared probe broadcasts to everyone.

        Raises:
            ConfigurationError: on non-positive core count or negative qps.
        """
        if cores <= 1:
            raise ConfigurationError("need at least two cores for snoops")
        if total_qps < 0:
            raise ConfigurationError("qps must be >= 0")
        peer_request_rate = total_qps * (cores - 1) / cores
        probe_rate = peer_request_rate * self.llc_miss_rate_per_request
        shared_probes = probe_rate * self.sharing_probability
        # Tracked probes target one owner uniformly; untracked broadcast.
        targeted = shared_probes * self.filter_coverage / (cores - 1)
        broadcast = shared_probes * (1.0 - self.filter_coverage)
        return targeted + broadcast

    def directed_fraction(self, cores: int) -> float:
        """Share of this core's snoops that were precisely directed."""
        if cores <= 1:
            raise ConfigurationError("need at least two cores")
        targeted = self.filter_coverage / (cores - 1)
        broadcast = 1.0 - self.filter_coverage
        total = targeted + broadcast
        return targeted / total if total > 0 else 0.0


def calibrated_rate_check(
    model: SnoopFilterModel = SnoopFilterModel(),
    qps: float = 100_000,
    cores: int = 10,
) -> float:
    """The derived rate at the Memcached mid-load point; the workloads'
    constant ~100-200 Hz per idle core should sit in this band."""
    return model.snoop_rate_for_idle_core(qps, cores)
