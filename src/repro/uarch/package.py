"""Multi-core package model.

Aggregates per-core power into package power (what Fig 9c plots) and owns
the shared turbo budget. The modelled part approximates one socket of the
paper's Xeon Silver 4114 testbed: 10 physical cores plus an uncore (mesh,
LLC, memory controllers, IO) whose power is load-insensitive to first
order at these utilisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.uarch.core import Core
from repro.uarch.turbo import TurboBudget, TurboConfig


@dataclass(frozen=True)
class PackageConfig:
    """Package-level parameters.

    Attributes:
        cores: physical core count per socket (Xeon Silver 4114: 10).
        uncore_watts: socket uncore power (mesh + LLC + IMC + IO). The
            4114's package idle sits tens of watts above the sum of core
            idle powers; ~38 W reproduces the Fig 9c band.
        sockets: sockets contributing to the reported package power.
    """

    cores: int = 10
    uncore_watts: float = 38.0
    sockets: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("core count must be positive")
        if self.uncore_watts < 0:
            raise ConfigurationError("uncore power must be >= 0")
        if self.sockets <= 0:
            raise ConfigurationError("socket count must be positive")


class Package:
    """A socket: cores + uncore + turbo budget."""

    def __init__(
        self,
        cores: Sequence[Core],
        config: PackageConfig = PackageConfig(),
        turbo: TurboBudget = None,
    ):
        if not cores:
            raise ConfigurationError("package needs at least one core")
        if len(cores) != config.cores:
            raise ConfigurationError(
                f"got {len(cores)} cores but config says {config.cores}"
            )
        self.cores: List[Core] = list(cores)
        self.config = config
        self.turbo = turbo if turbo is not None else TurboBudget(TurboConfig())

    @property
    def core_power(self) -> float:
        """Instantaneous sum of core powers."""
        return sum(core.current_power for core in self.cores)

    @property
    def package_power(self) -> float:
        """Instantaneous socket power: cores + uncore."""
        return (self.core_power + self.config.uncore_watts) * self.config.sockets

    def average_package_power(self, time: float) -> float:
        """Average package power over each core's observed span.

        Uses core energy counters (closing them at ``time``), so call this
        once at the end of a run.
        """
        total_core = 0.0
        span = None
        for core in self.cores:
            stats = core.snapshot(time)
            total_core += stats.energy_joules
            span = stats.wall_seconds if span is None else span
        if not span or span <= 0:
            raise ConfigurationError("cannot average power over empty span")
        avg_cores = total_core / span
        return (avg_cores + self.config.uncore_watts) * self.config.sockets
