"""Multi-core package model.

Aggregates per-core power into package power (what Fig 9c plots) and owns
the shared turbo budget. The modelled part approximates one socket of the
paper's Xeon Silver 4114 testbed: 10 physical cores plus an uncore (mesh,
LLC, memory controllers, IO) whose power is load-insensitive to first
order at these utilisations.

Accounting is incremental: each :class:`~repro.uarch.core.Core` pushes a
fixed-point delta when (and only when) its own state or frequency changes,
so reading :attr:`Package.core_power` — which the turbo budget does on
every C-state transition — is O(1) regardless of core count, instead of
re-summing all cores per event. The fixed-point total (units of
``2**-80`` W) is exact, so it never drifts from the true sum no matter how
many transitions accumulate or in which order cores fire. The package also
integrates core energy piecewise between transitions, giving an O(1) live
socket-energy reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.uarch.core import INV_POWER_SCALE, Core
from repro.uarch.turbo import TurboBudget, TurboConfig


@dataclass(frozen=True)
class PackageConfig:
    """Package-level parameters.

    Attributes:
        cores: physical core count per socket (Xeon Silver 4114: 10).
        uncore_watts: socket uncore power (mesh + LLC + IMC + IO). The
            4114's package idle sits tens of watts above the sum of core
            idle powers; ~38 W reproduces the Fig 9c band.
        sockets: sockets contributing to the reported package power.
    """

    cores: int = 10
    uncore_watts: float = 38.0
    sockets: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("core count must be positive")
        if self.uncore_watts < 0:
            raise ConfigurationError("uncore power must be >= 0")
        if self.sockets <= 0:
            raise ConfigurationError("socket count must be positive")


class Package:
    """A socket: cores + uncore + turbo budget.

    Args:
        cores: the core models aggregated by this socket.
        config: package parameters.
        turbo: shared turbo budget (a default one is built if omitted).
        incremental: keep the running core-power total updated by core
            deltas (O(1) reads; the default). ``False`` re-sums every core
            per read — the pre-optimisation reference used by the golden
            bit-identity tests; the delta bookkeeping still runs so modes
            can be compared on live objects.
    """

    def __init__(
        self,
        cores: Sequence[Core],
        config: PackageConfig = PackageConfig(),
        turbo: TurboBudget = None,
        incremental: bool = True,
    ):
        if not cores:
            raise ConfigurationError("package needs at least one core")
        if len(cores) != config.cores:
            raise ConfigurationError(
                f"got {len(cores)} cores but config says {config.cores}"
            )
        self.cores: List[Core] = list(cores)
        self.config = config
        self.turbo = turbo if turbo is not None else TurboBudget(TurboConfig())
        self._incremental = incremental
        self._core_power_int = 0
        # package_power runs per C-state transition; pin the config scalars.
        self._uncore = config.uncore_watts
        self._sockets = config.sockets
        for core in self.cores:
            # The core pushes fixed-point deltas straight into
            # _core_power_int (a bare attribute add — the whole per-event
            # cost of package accounting).
            core.attach_to_package(self)
            self._core_power_int += core.power_fixed_point

    # -- incremental accounting --------------------------------------------
    def energy_joules(self, time: float) -> float:
        """Core energy integrated up to ``time`` (piecewise-constant).

        Reads the cores' running energy accumulators without mutating
        them, so it can be called mid-run; the cores themselves integrate
        in O(1) per transition, making this an O(cores) *reporting* call
        with zero per-event cost. Covers the cores only (multiply the
        span by ``config.uncore_watts * config.sockets`` for the full
        socket).

        Raises:
            ConfigurationError: if ``time`` precedes a core's last
                accounting point.
        """
        total = 0.0
        for core in self.cores:
            span = time - core._energy_time
            if span < 0:
                raise ConfigurationError(
                    f"package energy query at t={time} precedes core "
                    f"{core.core_id}'s accounting point t={core._energy_time}"
                )
            total += core._energy_acc + core.current_power * span
        return total

    def telemetry_power(self, time: float) -> "tuple[float, float, float]":
        """``(package_power, core_power, core_energy_joules)`` at ``time``.

        The read-only bundle the telemetry sampler
        (:class:`repro.obs.timeline.TimelineSampler`) pulls on every
        probe tick: instantaneous powers from the O(1) incremental
        accumulator plus integrated core energy via
        :meth:`energy_joules`. Never closes core accounting (unlike
        :meth:`average_package_power`), so sampling mid-run cannot
        perturb the simulation's observables.
        """
        return (self.package_power, self.core_power, self.energy_joules(time))

    @property
    def core_power(self) -> float:
        """Instantaneous sum of core powers (O(1) when incremental)."""
        if not self._incremental:
            return sum(core.current_power for core in self.cores)
        return self._core_power_int * INV_POWER_SCALE

    @property
    def package_power(self) -> float:
        """Instantaneous socket power: cores + uncore."""
        if not self._incremental:
            return (self.core_power + self._uncore) * self._sockets
        return (
            self._core_power_int * INV_POWER_SCALE + self._uncore
        ) * self._sockets

    def average_package_power(self, time: float) -> float:
        """Average package power over each core's observed span.

        Uses core energy counters (closing them at ``time``), so call this
        once at the end of a run.
        """
        total_core = 0.0
        span = None
        for core in self.cores:
            stats = core.snapshot(time)
            total_core += stats.energy_joules
            span = stats.wall_seconds if span is None else span
        if not span or span <= 0:
            raise ConfigurationError("cannot average power over empty span")
        avg_cores = total_core / span
        return (avg_cores + self.config.uncore_watts) * self.config.sockets
