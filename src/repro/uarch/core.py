"""CPU core model: C-state lifecycle, residency and energy accounting.

A :class:`Core` is the bookkeeping entity the server simulator drives: it
tracks which C-state the core occupies, integrates per-state residency and
energy (the simulated analogue of the residency MSRs and RAPL counters the
paper reads on real hardware), and counts transitions.

The class is deliberately time-explicit — every mutation takes the current
simulation time — so it can be driven by the event engine, by tests, or by
hand without hidden globals.

Power is recomputed only when the core transitions (state, frequency or
snoop-service changes); the instantaneous value is cached between
transitions, and the owning :class:`~repro.uarch.package.Package`
receives fixed-point deltas so the socket total stays O(1) per event
instead of re-summing every core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.cstates import CState, CStateCatalog, FrequencyPoint
from repro.errors import SimulationError

#: Fixed-point scale for core-power bookkeeping (joint contract with
#: :mod:`repro.uarch.package`). ``power * 2**80`` is an exact float
#: operation (power-of-two scaling only shifts the exponent) and is an
#: exact integer for any power >= ~1e-8 W, so per-core deltas accumulate
#: into a package total with *zero* float drift, independent of the order
#: cores transition in.
POWER_SCALE = 2.0 ** 80

#: Exact inverse (a power of two, so the product back is exact too).
INV_POWER_SCALE = 2.0 ** -80



@dataclass
class CoreStats:
    """Snapshot of a core's accumulated counters.

    Attributes:
        residency_seconds: seconds spent in each state (by name).
        transitions: number of entries into each state.
        energy_joules: total integrated energy.
        wall_seconds: total observed span.
    """

    residency_seconds: Dict[str, float]
    transitions: Dict[str, int]
    energy_joules: float
    wall_seconds: float

    def residency_fraction(self, name: str) -> float:
        """Fraction of wall time in state ``name`` (RCi of Eq. 2)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.residency_seconds.get(name, 0.0) / self.wall_seconds

    @property
    def average_power(self) -> float:
        """Average power over the span (RAPL-style)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.energy_joules / self.wall_seconds

    def residency_table(self) -> Dict[str, float]:
        """All residency fractions, normalised. Sums to ~1."""
        return {
            name: self.residency_fraction(name) for name in self.residency_seconds
        }


class Core:
    """One CPU core with C-state lifecycle tracking.

    The core starts in the catalog's active state (C0). Use
    :meth:`enter_idle` / :meth:`wake` to move through states and
    :meth:`snapshot` to read the accumulated statistics.
    """

    def __init__(
        self,
        core_id: int,
        catalog: CStateCatalog,
        start_time: float = 0.0,
        frequency: Optional[FrequencyPoint] = None,
    ):
        self.core_id = core_id
        self.catalog = catalog
        self._state: CState = catalog.active
        self._frequency = frequency or FrequencyPoint.P1
        self._state_since = start_time
        self._start_time = start_time
        self._residency: Dict[str, float] = {}
        self._transitions: Dict[str, int] = {}
        # Energy accounting is inlined (same arithmetic as
        # :class:`~repro.power.rapl.EnergyCounter`, whose per-call guards
        # would re-check what _accrue already validated on this hot path):
        # piecewise-constant power integrated at every power change.
        self._energy_acc = 0.0
        self._energy_time = start_time
        self._snoop_power_delta = 0.0
        self._power = self._current_power()
        self._power_int = int(self._power * POWER_SCALE)
        #: Owning package (set via attach_to_package): receives power
        #: deltas as a direct `_core_power_int` add, saving a call per
        #: transition.
        self._package = None

    # -- state queries -----------------------------------------------------
    @property
    def state(self) -> CState:
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state.is_active

    @property
    def frequency(self) -> FrequencyPoint:
        return self._frequency

    @property
    def start_time(self) -> float:
        """Time accounting began (construction time)."""
        return self._start_time

    def _current_power(self) -> float:
        state = self._state
        if state._active:
            return self._frequency.active_power_watts
        return state.power_watts + self._snoop_power_delta

    @property
    def current_power(self) -> float:
        """Instantaneous power (cached; recomputed only on transitions)."""
        return self._power

    @property
    def power_fixed_point(self) -> int:
        """Instantaneous power in fixed-point units of ``2**-80`` W."""
        return self._power_int

    def attach_to_package(self, package) -> None:
        """Bind this core to its owning package (one package per core).

        Raises:
            SimulationError: if already attached.
        """
        if self._package is not None:
            raise SimulationError(
                f"core {self.core_id}: already attached to a package"
            )
        self._package = package

    def _update_power(self, time: float) -> None:
        """Recompute power after a transition; push the delta downstream.

        Used by the (rarer) snoop-service path; the lifecycle transitions
        compute the new power inline and call :meth:`_commit_power`
        directly.
        """
        self._commit_power(time, self._current_power())

    # -- transitions ------------------------------------------------------------
    def _accrue(self, time: float) -> None:
        if time < self._state_since:
            raise SimulationError(
                f"core {self.core_id}: time ran backwards "
                f"({time} < {self._state_since})"
            )
        span = time - self._state_since
        name = self._state.name
        self._residency[name] = self._residency.get(name, 0.0) + span
        self._state_since = time

    def _commit_power(self, time: float, power: float) -> None:
        """Integrate energy at the old power, then apply the new level.

        The package total is updated with a single attribute add — the
        delta is exact integer arithmetic, so update order never matters.
        """
        self._energy_acc += self._power * (time - self._energy_time)
        self._energy_time = time
        if power != self._power:
            self._power = power
            power_int = int(power * POWER_SCALE)
            package = self._package
            if package is not None:
                package._core_power_int += power_int - self._power_int
            self._power_int = power_int

    def enter_idle(self, time: float, state: CState) -> None:
        """Enter an idle state (the governor already chose it).

        Raises:
            SimulationError: if already idle or the state is active.
        """
        # The three lifecycle transitions (enter_idle / wake /
        # set_frequency) run once per simulated idle period each; their
        # accrual and power updates are inlined rather than calling
        # _accrue/_update_power to keep the per-event frame count down.
        current = self._state
        if not current._active:
            raise SimulationError(
                f"core {self.core_id}: cannot enter {state.name} from "
                f"{current.name}"
            )
        if state._active:
            raise SimulationError(f"core {self.core_id}: {state.name} is not idle")
        since = self._state_since
        if time < since:
            raise SimulationError(
                f"core {self.core_id}: time ran backwards ({time} < {since})"
            )
        residency = self._residency
        residency[current.name] = residency.get(current.name, 0.0) + (time - since)
        self._state_since = time
        self._state = state
        name = state.name
        transitions = self._transitions
        transitions[name] = transitions.get(name, 0) + 1
        if state.frequency is not None:
            self._frequency = state.frequency
        self._commit_power(time, state.power_watts + self._snoop_power_delta)

    def wake(self, time: float, frequency: Optional[FrequencyPoint] = None) -> float:
        """Exit the idle state back to C0; returns the exit latency paid.

        Raises:
            SimulationError: if the core is already active.
        """
        current = self._state
        if current._active:
            raise SimulationError(f"core {self.core_id}: already active")
        exit_latency = current.exit_latency
        since = self._state_since
        if time < since:
            raise SimulationError(
                f"core {self.core_id}: time ran backwards ({time} < {since})"
            )
        residency = self._residency
        residency[current.name] = residency.get(current.name, 0.0) + (time - since)
        self._state_since = time
        self._snoop_power_delta = 0.0
        self._state = self.catalog.active
        if frequency is not None:
            self._frequency = frequency
        elif self._frequency is FrequencyPoint.PN:
            # Waking from a Pn state (C1E/C6AE) ramps back to base.
            self._frequency = FrequencyPoint.P1
        transitions = self._transitions
        transitions["C0"] = transitions.get("C0", 0) + 1
        self._commit_power(time, self._frequency.active_power_watts)
        return exit_latency

    def set_frequency(self, time: float, frequency: FrequencyPoint) -> None:
        """DVFS change while active (e.g. Turbo grant/revoke)."""
        current = self._state
        if not current._active:
            raise SimulationError(
                f"core {self.core_id}: cannot DVFS while in {current.name}"
            )
        since = self._state_since
        if time < since:
            raise SimulationError(
                f"core {self.core_id}: time ran backwards ({time} < {since})"
            )
        residency = self._residency
        residency[current.name] = residency.get(current.name, 0.0) + (time - since)
        self._state_since = time
        self._frequency = frequency
        self._commit_power(time, frequency.active_power_watts)

    def begin_snoop_service(self, time: float, power_delta: float) -> None:
        """Cache domain woken to serve snoops while idle (C1 or C6A)."""
        if self._state.is_active:
            raise SimulationError(f"core {self.core_id}: snoop service is an idle-state event")
        self._accrue(time)
        self._snoop_power_delta = power_delta
        self._update_power(time)

    def end_snoop_service(self, time: float) -> None:
        """Snoop burst served; fall back to the quiescent idle power."""
        self._accrue(time)
        self._snoop_power_delta = 0.0
        self._update_power(time)

    # -- reporting ------------------------------------------------------------
    def snapshot(self, time: float) -> CoreStats:
        """Close accounting at ``time`` and return the statistics."""
        self._accrue(time)
        self._energy_acc += self._power * (time - self._energy_time)
        self._energy_time = time
        energy = self._energy_acc
        return CoreStats(
            residency_seconds=dict(self._residency),
            transitions=dict(self._transitions),
            energy_joules=energy,
            wall_seconds=time - self._start_time,
        )
