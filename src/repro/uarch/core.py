"""CPU core model: C-state lifecycle, residency and energy accounting.

A :class:`Core` is the bookkeeping entity the server simulator drives: it
tracks which C-state the core occupies, integrates per-state residency and
energy (the simulated analogue of the residency MSRs and RAPL counters the
paper reads on real hardware), and counts transitions.

The class is deliberately time-explicit — every mutation takes the current
simulation time — so it can be driven by the event engine, by tests, or by
hand without hidden globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.cstates import CState, CStateCatalog, FrequencyPoint, active_power
from repro.errors import SimulationError
from repro.power.rapl import EnergyCounter


@dataclass
class CoreStats:
    """Snapshot of a core's accumulated counters.

    Attributes:
        residency_seconds: seconds spent in each state (by name).
        transitions: number of entries into each state.
        energy_joules: total integrated energy.
        wall_seconds: total observed span.
    """

    residency_seconds: Dict[str, float]
    transitions: Dict[str, int]
    energy_joules: float
    wall_seconds: float

    def residency_fraction(self, name: str) -> float:
        """Fraction of wall time in state ``name`` (RCi of Eq. 2)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.residency_seconds.get(name, 0.0) / self.wall_seconds

    @property
    def average_power(self) -> float:
        """Average power over the span (RAPL-style)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.energy_joules / self.wall_seconds

    def residency_table(self) -> Dict[str, float]:
        """All residency fractions, normalised. Sums to ~1."""
        return {
            name: self.residency_fraction(name) for name in self.residency_seconds
        }


class Core:
    """One CPU core with C-state lifecycle tracking.

    The core starts in the catalog's active state (C0). Use
    :meth:`enter_idle` / :meth:`wake` to move through states and
    :meth:`snapshot` to read the accumulated statistics.
    """

    def __init__(
        self,
        core_id: int,
        catalog: CStateCatalog,
        start_time: float = 0.0,
        frequency: Optional[FrequencyPoint] = None,
    ):
        self.core_id = core_id
        self.catalog = catalog
        self._state: CState = catalog.active
        self._frequency = frequency or FrequencyPoint.P1
        self._state_since = start_time
        self._start_time = start_time
        self._residency: Dict[str, float] = {}
        self._transitions: Dict[str, int] = {}
        self._energy = EnergyCounter(f"core{core_id}")
        self._energy.start(start_time, self._current_power())
        self._snoop_power_delta = 0.0

    # -- state queries -----------------------------------------------------
    @property
    def state(self) -> CState:
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state.is_active

    @property
    def frequency(self) -> FrequencyPoint:
        return self._frequency

    def _current_power(self) -> float:
        if self._state.is_active:
            return active_power(self._frequency)
        return self._state.power_watts + self._snoop_power_delta

    @property
    def current_power(self) -> float:
        return self._current_power()

    # -- transitions ------------------------------------------------------------
    def _accrue(self, time: float) -> None:
        if time < self._state_since:
            raise SimulationError(
                f"core {self.core_id}: time ran backwards "
                f"({time} < {self._state_since})"
            )
        span = time - self._state_since
        name = self._state.name
        self._residency[name] = self._residency.get(name, 0.0) + span
        self._state_since = time

    def enter_idle(self, time: float, state: CState) -> None:
        """Enter an idle state (the governor already chose it).

        Raises:
            SimulationError: if already idle or the state is active.
        """
        if not self._state.is_active:
            raise SimulationError(
                f"core {self.core_id}: cannot enter {state.name} from "
                f"{self._state.name}"
            )
        if state.is_active:
            raise SimulationError(f"core {self.core_id}: {state.name} is not idle")
        self._accrue(time)
        self._state = state
        self._transitions[state.name] = self._transitions.get(state.name, 0) + 1
        if state.frequency is not None:
            self._frequency = state.frequency
        self._energy.set_power(time, self._current_power())

    def wake(self, time: float, frequency: Optional[FrequencyPoint] = None) -> float:
        """Exit the idle state back to C0; returns the exit latency paid.

        Raises:
            SimulationError: if the core is already active.
        """
        if self._state.is_active:
            raise SimulationError(f"core {self.core_id}: already active")
        exit_latency = self._state.exit_latency
        self._accrue(time)
        self._snoop_power_delta = 0.0
        self._state = self.catalog.active
        if frequency is not None:
            self._frequency = frequency
        elif self._frequency is FrequencyPoint.PN:
            # Waking from a Pn state (C1E/C6AE) ramps back to base.
            self._frequency = FrequencyPoint.P1
        self._transitions["C0"] = self._transitions.get("C0", 0) + 1
        self._energy.set_power(time, self._current_power())
        return exit_latency

    def set_frequency(self, time: float, frequency: FrequencyPoint) -> None:
        """DVFS change while active (e.g. Turbo grant/revoke)."""
        if not self._state.is_active:
            raise SimulationError(
                f"core {self.core_id}: cannot DVFS while in {self._state.name}"
            )
        self._accrue(time)
        self._frequency = frequency
        self._energy.set_power(time, self._current_power())

    def begin_snoop_service(self, time: float, power_delta: float) -> None:
        """Cache domain woken to serve snoops while idle (C1 or C6A)."""
        if self._state.is_active:
            raise SimulationError(f"core {self.core_id}: snoop service is an idle-state event")
        self._accrue(time)
        self._snoop_power_delta = power_delta
        self._energy.set_power(time, self._current_power())

    def end_snoop_service(self, time: float) -> None:
        """Snoop burst served; fall back to the quiescent idle power."""
        self._accrue(time)
        self._snoop_power_delta = 0.0
        self._energy.set_power(time, self._current_power())

    # -- reporting ------------------------------------------------------------
    def snapshot(self, time: float) -> CoreStats:
        """Close accounting at ``time`` and return the statistics."""
        self._accrue(time)
        energy = self._energy.finish(time)
        return CoreStats(
            residency_seconds=dict(self._residency),
            transitions=dict(self._transitions),
            energy_joules=energy,
            wall_seconds=time - self._start_time,
        )
