"""Turbo / thermal-capacitance model — the Sec 7.3 interaction.

Turbo Boost lets cores exceed base frequency while the package has thermal
headroom. Headroom behaves like a tank (RAPL's PL1/PL2 exponential budget):
it *fills* while package power sits below the sustained limit — i.e. while
idle cores sit in low-power C-states — and *drains* while cores run above
base power.

This is exactly why the paper's vendors' guidance conflicts: disabling
C1E removes its 10 us transition penalty but keeps idle power high, so
"the processor is kept at high power, thereby not gaining enough thermal
capacitance needed during Turbo Boost periods" (Sec 7.3). AW's C6A gives
the low idle power *and* the low latency, so Turbo actually helps.

The model is a token bucket measured in joules of headroom.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cstates import FrequencyPoint
from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class TurboConfig:
    """Parameters of the turbo budget.

    Attributes:
        sustained_watts: package sustained power limit (PL1-like); filling
            happens while package power is below this.
        tank_joules: headroom capacity (thermal capacitance analogue).
        grant_threshold: fraction of tank required to grant turbo to a
            waking core — granting on fumes causes oscillation.
        turbo_extra_watts: extra package power while one core turbos.
    """

    sustained_watts: float = 55.0
    tank_joules: float = 2.0
    grant_threshold: float = 0.10
    turbo_extra_watts: float = 1.5

    def __post_init__(self) -> None:
        if self.sustained_watts <= 0:
            raise ConfigurationError("sustained power must be positive")
        if self.tank_joules <= 0:
            raise ConfigurationError("tank capacity must be positive")
        if not 0.0 <= self.grant_threshold <= 1.0:
            raise ConfigurationError("grant threshold must be in [0, 1]")
        if self.turbo_extra_watts < 0:
            raise ConfigurationError("turbo extra power must be >= 0")


class TurboBudget:
    """Joule-denominated turbo headroom tank.

    Drive it with :meth:`update` whenever package power changes, then ask
    :meth:`frequency_for_burst` when a core starts a busy period.
    """

    def __init__(self, config: TurboConfig = TurboConfig(), enabled: bool = True):
        self.config = config
        self.enabled = enabled
        self._level = config.tank_joules  # start full (cold package)
        self._time = 0.0
        self._package_power = 0.0
        self._grants = 0
        self._denials = 0
        # update()/frequency_for_burst() run on every C-state transition;
        # pin the (frozen) config scalars as plain attributes.
        self._sustained = config.sustained_watts
        self._tank = config.tank_joules
        self._threshold = config.grant_threshold

    # -- accounting ----------------------------------------------------------
    def update(self, time: float, package_power: float) -> None:
        """Integrate headroom up to ``time`` given the *previous* power,
        then record the new package power level.

        Raises:
            SimulationError: if time runs backwards.
        """
        previous = self._time
        if time < previous:
            raise SimulationError(f"turbo budget time ran backwards ({time} < {previous})")
        if package_power < 0:
            raise SimulationError("package power must be >= 0")
        delta = (self._sustained - self._package_power) * (time - previous)
        level = self._level + delta
        if level < 0.0:
            level = 0.0
        elif level > self._tank:
            level = self._tank
        self._level = level
        self._time = time
        self._package_power = package_power

    @property
    def level_fraction(self) -> float:
        """Current headroom as a fraction of the tank."""
        return self._level / self.config.tank_joules

    # -- grants ------------------------------------------------------------------
    def frequency_for_burst(self, time: float, package_power: float) -> FrequencyPoint:
        """Frequency granted to a core starting a busy period now.

        Grants Turbo when enabled and the tank holds at least the grant
        threshold; otherwise base frequency. Updates accounting first.
        """
        self.update(time, package_power)
        if not self.enabled:
            return FrequencyPoint.P1
        if self._level / self._tank >= self._threshold:
            self._grants += 1
            return FrequencyPoint.TURBO
        self._denials += 1
        return FrequencyPoint.P1

    @property
    def grants(self) -> int:
        return self._grants

    @property
    def denials(self) -> int:
        return self._denials

    @property
    def grant_rate(self) -> float:
        """Fraction of burst starts that won turbo."""
        total = self._grants + self._denials
        if total == 0:
            return 0.0
        return self._grants / total
