"""Power delivery, clocking and gating substrate.

This package models the circuit-level building blocks the AgileWatts
architecture composes:

- :mod:`~repro.power.leakage` — leakage scaling across technology nodes and
  voltages (Shahidi [99] methodology used in Table 3 footnote gamma).
- :mod:`~repro.power.pdn` — FIVR / MBVR / LDO power-delivery models with
  conversion-efficiency and static losses.
- :mod:`~repro.power.clock` — ADPLL and clock-distribution network, with
  clock gating and relock latency.
- :mod:`~repro.power.powergate` — power-gate switch fabrics, daisy-chained
  staggered wake-up and multi-zone controllers (Fig 2, Sec 5.3).
- :mod:`~repro.power.retention` — context-retention structures: ungated
  registers, SRPG flops and ungated SRAM (Fig 5).
- :mod:`~repro.power.rapl` — RAPL-style energy accounting over a simulation.
"""

from repro.power.leakage import (
    LeakageModel,
    scale_leakage_power,
    sleep_transistor_efficiency,
)
from repro.power.pdn import FIVR, LDO, MBVR, VoltageRegulator
from repro.power.clock import ADPLL, ClockDistribution
from repro.power.droop import InRushModel, IRDropModel
from repro.power.powergate import PowerGate, StaggeredWakeupController, ZonedPowerGating
from repro.power.retention import (
    RetentionPlan,
    SRPGBank,
    UngatedRegisterFile,
    UngatedSRAM,
)
from repro.power.rapl import EnergyCounter, RAPLDomain

__all__ = [
    "LeakageModel",
    "scale_leakage_power",
    "sleep_transistor_efficiency",
    "FIVR",
    "LDO",
    "MBVR",
    "VoltageRegulator",
    "ADPLL",
    "ClockDistribution",
    "InRushModel",
    "IRDropModel",
    "PowerGate",
    "StaggeredWakeupController",
    "ZonedPowerGating",
    "RetentionPlan",
    "SRPGBank",
    "UngatedRegisterFile",
    "UngatedSRAM",
    "EnergyCounter",
    "RAPLDomain",
]
