"""Clock generation and distribution models.

Two facts from the paper drive AW's third idea (keep the PLL on):

- A Skylake-class all-digital PLL (ADPLL) consumes only ~7 mW, roughly
  constant across voltage/frequency levels [26], so keeping it locked in a
  deep idle state is nearly free.
- Relocking a PLL after power-off takes microseconds and sits on the C6
  exit critical path (part of the ~10 us hardware wake-up, Sec 3).

Clock gating/ungating the distribution network itself takes only 1-2
cycles in an optimized clock distribution system (Sec 5.2.1, [105, 106]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerModelError
from repro.units import MILLIWATT, US


@dataclass
class ADPLL:
    """All-digital phase-locked loop.

    Attributes:
        power_watts: locked power draw (~7 mW on Skylake at any V/F [26]).
        relock_time: time to reacquire lock after being powered off
            (microseconds; part of C6's ~10 us hardware exit).
    """

    power_watts: float = 7 * MILLIWATT
    relock_time: float = 5 * US
    powered: bool = True
    locked: bool = True

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise PowerModelError("ADPLL power must be >= 0")
        if self.relock_time < 0:
            raise PowerModelError("ADPLL relock time must be >= 0")

    def power_off(self) -> None:
        """Shut the PLL down (C6 behaviour). Loses lock."""
        self.powered = False
        self.locked = False

    def power_on(self) -> float:
        """Power the PLL back up; returns the relock latency incurred.

        If the PLL was already locked (AW keeps it on), the cost is zero —
        this asymmetry is exactly the microseconds AW shaves off.
        """
        if self.powered and self.locked:
            return 0.0
        self.powered = True
        self.locked = True
        return self.relock_time

    @property
    def idle_power(self) -> float:
        """Power drawn right now (0 when off)."""
        return self.power_watts if self.powered else 0.0


@dataclass
class ClockDistribution:
    """Core clock-distribution network with per-domain clock gates.

    Domains are gated independently (UFPG domain vs L1/L2 domain in the
    C6A flow). Gating/ungating costs ``gate_cycles`` controller cycles.
    """

    domains: tuple = ("ufpg", "caches")
    gate_cycles: int = 2
    _gated: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gate_cycles < 1:
            raise PowerModelError("clock gate latency is at least one cycle")
        for domain in self.domains:
            self._gated.setdefault(domain, False)

    def _check(self, domain: str) -> None:
        if domain not in self._gated:
            raise PowerModelError(
                f"unknown clock domain {domain!r}; have {sorted(self._gated)}"
            )

    def gate(self, domain: str) -> int:
        """Clock-gate a domain; returns controller cycles spent."""
        self._check(domain)
        if self._gated[domain]:
            return 0
        self._gated[domain] = True
        return self.gate_cycles

    def ungate(self, domain: str) -> int:
        """Clock-ungate a domain; returns controller cycles spent."""
        self._check(domain)
        if not self._gated[domain]:
            return 0
        self._gated[domain] = False
        return self.gate_cycles

    def is_gated(self, domain: str) -> bool:
        self._check(domain)
        return self._gated[domain]

    @property
    def all_gated(self) -> bool:
        return all(self._gated.values())

    @property
    def all_running(self) -> bool:
        return not any(self._gated.values())
