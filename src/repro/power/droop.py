"""Voltage droop, IR drop and in-rush current models (Sec 5.1.1, 5.3).

Two power-integrity effects constrain AW's design:

- **IR drop across power gates** (Sec 5.1.1 performance overhead): the
  gate's on-resistance adds series resistance to the PDN, deepening
  worst-case voltage droops. The droop margin must be re-budgeted as
  extra voltage guard-band, which at a fixed voltage costs maximum
  frequency — an x86 core power-gate implementation measures < 1% fmax
  loss [93]. :class:`IRDropModel` derives that penalty from the gate
  resistance and the core's current draw.

- **in-rush current at wake** (Sec 5.3): waking a gated region charges
  its decoupled capacitance; the current spike scales with the woken
  capacitance over the stagger window. The PDN tolerates the spike the
  AVX gates produce (area 1.0, 15 ns window); :class:`InRushModel`
  checks any zone plan against that proven budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PowerModelError
from repro.power.powergate import PowerGate
from repro.units import NS

#: Relative capacitance-per-area unit: the AVX region defines 1.0.
AVX_REFERENCE_AREA = 1.0

#: The AVX wake's stagger window the PDN is qualified for.
AVX_REFERENCE_WINDOW = 15 * NS


@dataclass(frozen=True)
class IRDropModel:
    """Frequency cost of the power-gate IR drop.

    Attributes:
        gate_resistance_mohm: effective on-resistance of the gate fabric
            in milliohms (well-designed fabrics: ~1 mOhm).
        peak_current_amps: worst-case core current (a 4 W core at ~1 V
            with di/dt transients peaks around 8 A).
        nominal_voltage: the rail voltage the droop eats into.
        droop_to_frequency: fmax sensitivity to voltage margin —
            fractional frequency lost per fractional voltage lost
            (~1.25x near the V/F knee for 14 nm-class cores).
    """

    gate_resistance_mohm: float = 1.0
    peak_current_amps: float = 8.0
    nominal_voltage: float = 1.0
    droop_to_frequency: float = 1.25

    def __post_init__(self) -> None:
        if self.gate_resistance_mohm < 0:
            raise PowerModelError("gate resistance must be >= 0")
        if self.peak_current_amps <= 0 or self.nominal_voltage <= 0:
            raise PowerModelError("current and voltage must be positive")
        if self.droop_to_frequency <= 0:
            raise PowerModelError("sensitivity must be positive")

    @property
    def extra_droop_volts(self) -> float:
        """Worst-case additional droop from the gate: I * R."""
        return self.peak_current_amps * self.gate_resistance_mohm * 1e-3

    @property
    def frequency_penalty(self) -> float:
        """Fractional fmax loss to re-budget the droop margin.

        With the defaults: 8 A x 1 mOhm = 8 mV on a 1 V rail = 0.8%
        voltage, x1.25 sensitivity = 1% frequency — the paper's (and
        [93]'s) < 1% figure.
        """
        voltage_fraction = self.extra_droop_volts / self.nominal_voltage
        return voltage_fraction * self.droop_to_frequency


@dataclass(frozen=True)
class InRushModel:
    """In-rush current check against the AVX-qualified PDN budget.

    The spike magnitude scales with (woken capacitance / stagger window).
    The AVX wake (area 1.0 over 15 ns) defines the qualified budget; any
    zone with a higher charge rate violates it.
    """

    budget_margin: float = 1.0  # 1.0 = exactly the AVX-qualified spike

    def __post_init__(self) -> None:
        if self.budget_margin <= 0:
            raise PowerModelError("budget margin must be positive")

    @property
    def reference_rate(self) -> float:
        """Qualified charge rate: AVX area per AVX window."""
        return AVX_REFERENCE_AREA / AVX_REFERENCE_WINDOW

    def spike_ratio(self, gate: PowerGate) -> float:
        """This gate's charge rate relative to the qualified budget."""
        if gate.stagger_time <= 0:
            raise PowerModelError(f"{gate.name}: needs a positive stagger window")
        rate = gate.relative_area / gate.stagger_time
        return rate / self.reference_rate

    def zone_plan_safe(self, gates: Sequence[PowerGate]) -> bool:
        """True if *every* zone stays within the budget (x margin).

        Zones wake sequentially, so only the per-zone spike matters, not
        the sum — this is exactly why the Sec 5.3 five-zone split works.
        """
        if not gates:
            raise PowerModelError("zone plan cannot be empty")
        return all(
            self.spike_ratio(gate) <= self.budget_margin + 1e-9 for gate in gates
        )

    def worst_zone_ratio(self, gates: Sequence[PowerGate]) -> float:
        """The plan's figure of merit: its worst single-zone spike."""
        if not gates:
            raise PowerModelError("zone plan cannot be empty")
        return max(self.spike_ratio(gate) for gate in gates)


def single_gate_wake_unsafe() -> bool:
    """Sanity helper: waking the whole UFPG region as ONE gate over one
    AVX window would exceed the budget ~4.5x — the motivating fact for
    the staggered zone design."""
    from repro.power.powergate import UFPG_TO_AVX_AREA_RATIO

    monolith = PowerGate(
        "ufpg_monolith",
        relative_area=UFPG_TO_AVX_AREA_RATIO,
        stagger_time=AVX_REFERENCE_WINDOW,
    )
    return InRushModel().spike_ratio(monolith) > 1.0
