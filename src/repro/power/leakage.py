"""Leakage power scaling laws.

Table 3 of the paper derives the L1/L2 sleep-mode leakage by scaling a
published 22 nm L3-slice measurement to Skylake's 14 nm node using the
methodology of Shahidi, *Chip Power Scaling in Recent CMOS Technology
Nodes* (IEEE Access 2018) [99]: for a dimensional scaling factor ``alpha``
(~0.7x for 22->14 nm) and a voltage scaling factor ``beta``, leakage power
scales as ``alpha * beta``. The paper conservatively uses ``beta = 1.0``.

This module also captures the sleep-transistor-as-linear-regulator
observation used for the C6AE row: a sleep transistor is effectively an
LDO whose efficiency is Vout/Vin, so lowering the rail toward the retention
voltage *increases* its efficiency and lowers the leakage it passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PowerModelError

# Dimensional scaling factors between adjacent nodes, relative pitch ratio.
# Values follow the ~0.7x/generation rule of thumb used by [99].
_NODE_PITCH_NM: Dict[int, float] = {
    45: 45.0,
    32: 32.0,
    28: 28.0,
    22: 22.0,
    14: 15.4,  # Intel 14 nm actual gate pitch scaling vs 22 nm is ~0.7x
    10: 11.0,
    7: 7.7,
}


def node_scaling_factor(from_nm: int, to_nm: int) -> float:
    """Dimensional scaling factor ``alpha`` between two technology nodes.

    The paper's 22 nm -> 14 nm transition yields ~0.7x.

    Raises:
        PowerModelError: for unknown nodes.
    """
    if from_nm not in _NODE_PITCH_NM or to_nm not in _NODE_PITCH_NM:
        known = sorted(_NODE_PITCH_NM)
        raise PowerModelError(
            f"unknown node pair ({from_nm}, {to_nm}); known nodes: {known}"
        )
    return _NODE_PITCH_NM[to_nm] / _NODE_PITCH_NM[from_nm]


def scale_leakage_power(
    power_watts: float,
    from_nm: int,
    to_nm: int,
    voltage_scaling: float = 1.0,
) -> float:
    """Scale a leakage measurement across nodes: ``P' = P * alpha * beta``.

    Args:
        power_watts: measured leakage at the source node.
        from_nm / to_nm: technology nodes (e.g. 22 -> 14).
        voltage_scaling: ``beta`` in [0.7, 1.0]; the paper conservatively
            uses 1.0 (no voltage scaling credit).

    Raises:
        PowerModelError: on negative power or out-of-range beta.
    """
    if power_watts < 0:
        raise PowerModelError(f"leakage power must be >= 0, got {power_watts}")
    if not 0.5 <= voltage_scaling <= 1.0:
        raise PowerModelError(
            f"voltage scaling beta expected in [0.5, 1.0], got {voltage_scaling}"
        )
    alpha = node_scaling_factor(from_nm, to_nm)
    return power_watts * alpha * voltage_scaling


def sleep_transistor_efficiency(v_in: float, v_out: float) -> float:
    """Power-conversion efficiency of a sleep transistor acting as an LVR.

    Efficiency = Vout / Vin (Sec 5.1.2): the closer the input rail is to
    the retained output voltage, the less power burns across the device.

    Raises:
        PowerModelError: if voltages are non-positive or v_out > v_in.
    """
    if v_in <= 0 or v_out <= 0:
        raise PowerModelError(f"voltages must be positive, got {v_in}, {v_out}")
    if v_out > v_in:
        raise PowerModelError(f"v_out {v_out} cannot exceed v_in {v_in}")
    return v_out / v_in


@dataclass(frozen=True)
class LeakageModel:
    """Leakage of a logic/SRAM block with optional power gating / sleep mode.

    Attributes:
        full_leakage_watts: leakage of the block at nominal voltage with no
            mitigation (for a whole Skylake core this is approximately the
            C1 power, since C1 removes only dynamic power).
        gate_effectiveness: fraction of leakage a power gate eliminates
            (the paper cites 95-97%; residual 3-5% remains).
    """

    full_leakage_watts: float
    gate_effectiveness: float = 0.96

    def __post_init__(self) -> None:
        if self.full_leakage_watts < 0:
            raise PowerModelError("full_leakage_watts must be >= 0")
        if not 0.0 <= self.gate_effectiveness <= 1.0:
            raise PowerModelError("gate_effectiveness must be in [0, 1]")

    def gated_residual(self, gated_fraction: float = 1.0) -> float:
        """Residual leakage when ``gated_fraction`` of the block is gated.

        The ungated remainder keeps leaking fully. Paper Sec 5.1.1 applies
        this with gated_fraction = 0.70 (UFPG covers ~70% of core leakage).
        """
        if not 0.0 <= gated_fraction <= 1.0:
            raise PowerModelError("gated_fraction must be in [0, 1]")
        gated = self.full_leakage_watts * gated_fraction
        ungated = self.full_leakage_watts * (1.0 - gated_fraction)
        return gated * (1.0 - self.gate_effectiveness) + ungated

    def residual_of_gated_region(self, gated_fraction: float) -> float:
        """Residual leakage of *only* the gated region (excludes remainder)."""
        if not 0.0 <= gated_fraction <= 1.0:
            raise PowerModelError("gated_fraction must be in [0, 1]")
        return (
            self.full_leakage_watts * gated_fraction * (1.0 - self.gate_effectiveness)
        )

    def at_voltage(self, v_nominal: float, v_actual: float) -> "LeakageModel":
        """Leakage rescaled for a different rail voltage.

        Subthreshold leakage is super-linear in V; we use the quadratic
        approximation common in architecture-level models, which is also
        consistent with the paper's C6A (P1) -> C6AE (Pn) reductions.
        """
        if v_nominal <= 0 or v_actual <= 0:
            raise PowerModelError("voltages must be positive")
        ratio = (v_actual / v_nominal) ** 2
        return LeakageModel(self.full_leakage_watts * ratio, self.gate_effectiveness)
