"""Context-retention structures used by UFPG (Sec 4.1, Fig 5).

A modern core carries ~8 KB of context (CSRs, fuse registers, microcode
patch SRAM) that C6 serialises to an uncore save/restore SRAM — a ~9 us
process at 800 MHz. AW instead retains context *in place* with three
techniques, each modelled here:

- :class:`UngatedRegisterFile` (Fig 5a): move a unit's registers into the
  core's ungated power domain. Suits units with small, local context
  (execution units, OoO engine).
- :class:`UngatedSRAM` (Fig 5b): power the ~2 KB microcode-patch SRAM from
  the ungated rail so it never needs re-initialisation.
- :class:`SRPGBank` (Fig 5c): state-retention power gates — flip-flops with
  a shadow latch on the ungated rail — for distributed context that cannot
  be physically relocated.

Save = assert ``Ret`` then deassert ``Pwr`` (3-4 controller cycles);
restore = the reverse (1 cycle after power-good). No serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import PowerModelError
from repro.units import KB, MILLIWATT

#: Total context a Skylake-class core must retain across power-off (Sec 4.1).
CORE_CONTEXT_BYTES = 8 * KB

#: The microcode patch/data SRAM portion of that context [66, 67].
MICROCODE_SRAM_BYTES = 2 * KB

#: Power of the full 8 KB context held at retention voltage (Sec 5.1.1).
RETENTION_POWER_AT_VRET = 0.2 * MILLIWATT

#: Conservative multipliers from retention voltage to P1 / Pn rails.
RETENTION_MULTIPLIER_P1 = 10.0
RETENTION_MULTIPLIER_PN = 5.0


def context_retention_power(context_bytes: int, rail: str) -> float:
    """Idle power to hold ``context_bytes`` of context on a given rail.

    The paper holds retention structures on the core's ungated rail, which
    sits at P1 or Pn voltage (not a dedicated retention rail), and
    conservatively multiplies the retention-level power by 10x / 5x:
    ~2 mW at P1 and ~1 mW at Pn for the full 8 KB.

    Args:
        context_bytes: retained context size.
        rail: "P1", "Pn" or "Vret".

    Raises:
        PowerModelError: on negative size or unknown rail.
    """
    if context_bytes < 0:
        raise PowerModelError("context size must be >= 0")
    base = RETENTION_POWER_AT_VRET * (context_bytes / CORE_CONTEXT_BYTES)
    multipliers = {
        "P1": RETENTION_MULTIPLIER_P1,
        "Pn": RETENTION_MULTIPLIER_PN,
        "Vret": 1.0,
    }
    if rail not in multipliers:
        raise PowerModelError(f"unknown rail {rail!r}; choose from {sorted(multipliers)}")
    return base * multipliers[rail]


@dataclass(frozen=True)
class RetentionStructure:
    """Base record for one retained context block.

    Attributes:
        name: owning unit (e.g. "ooo_engine").
        context_bytes: bytes of state retained in place.
        area_overhead_fraction: extra silicon relative to the protected
            structure (all three techniques are < 1% per Table 3).
        save_cycles / restore_cycles: PMA controller cycles on the C6A
            entry / exit path.
    """

    name: str
    context_bytes: int
    area_overhead_fraction: float
    save_cycles: int
    restore_cycles: int

    def __post_init__(self) -> None:
        if self.context_bytes < 0:
            raise PowerModelError(f"{self.name}: context size must be >= 0")
        if not 0.0 <= self.area_overhead_fraction <= 0.05:
            raise PowerModelError(
                f"{self.name}: retention area overhead should be small "
                f"(< 5%), got {self.area_overhead_fraction}"
            )
        if self.save_cycles < 0 or self.restore_cycles < 0:
            raise PowerModelError(f"{self.name}: cycle counts must be >= 0")

    def retention_power(self, rail: str) -> float:
        """Idle power of this block's retained context on ``rail``."""
        return context_retention_power(self.context_bytes, rail)


class UngatedRegisterFile(RetentionStructure):
    """Fig 5(a): registers relocated to the ungated domain.

    Applicable to units whose context is small and local: execution units
    (the AVX precedent), execution ports, the out-of-order engine.
    Save/restore are free — the state simply never loses power — but the
    convention here charges the 0-cycle cost explicitly so flows can sum
    uniformly over techniques.
    """

    def __init__(self, name: str, context_bytes: int):
        super().__init__(
            name=name,
            context_bytes=context_bytes,
            area_overhead_fraction=0.01,  # isolation cells, < 1% [50]
            save_cycles=0,
            restore_cycles=0,
        )


class SRPGBank(RetentionStructure):
    """Fig 5(c): state-retention power-gate flops for distributed context.

    Save: assert Ret, deassert Pwr (3-4 cycles); restore: deassert Ret
    after power-good (1 cycle).
    """

    def __init__(self, name: str, context_bytes: int, save_cycles: int = 4):
        if not 3 <= save_cycles <= 4:
            raise PowerModelError("SRPG save takes 3-4 cycles (Sec 5.2.1)")
        super().__init__(
            name=name,
            context_bytes=context_bytes,
            area_overhead_fraction=0.01,  # selective retention, < 1% [65, 97]
            save_cycles=save_cycles,
            restore_cycles=1,
        )


class UngatedSRAM(RetentionStructure):
    """Fig 5(b): SRAM (microcode patches/data) on the ungated rail.

    Avoids the multi-microsecond sequential re-initialisation from the
    uncore S/R SRAM that the C6 exit flow performs.
    """

    def __init__(
        self,
        name: str = "microcode_patch_sram",
        context_bytes: int = MICROCODE_SRAM_BYTES,
    ):
        super().__init__(
            name=name,
            context_bytes=context_bytes,
            area_overhead_fraction=0.01,  # isolation cells, < 1% of SRAM area
            save_cycles=0,
            restore_cycles=0,
        )


@dataclass
class RetentionPlan:
    """The full in-place retention plan for a core's ~8 KB of context.

    The default plan follows Sec 4.1: execution units / ports / OoO engine
    context goes to the ungated domain, the 2 KB microcode SRAM goes on the
    ungated rail, and the remaining distributed context uses SRPGs.
    """

    structures: Sequence[RetentionStructure]

    def __post_init__(self) -> None:
        if not self.structures:
            raise PowerModelError("retention plan cannot be empty")
        names = [s.name for s in self.structures]
        if len(set(names)) != len(names):
            raise PowerModelError(f"duplicate structure names in plan: {names}")

    @classmethod
    def default_skylake(cls) -> "RetentionPlan":
        """The paper's retention plan for a Skylake-class core."""
        ungated_register_bytes = 3 * KB  # exec units + ports + OoO engine
        srpg_bytes = (
            CORE_CONTEXT_BYTES - MICROCODE_SRAM_BYTES - ungated_register_bytes
        )
        return cls(
            structures=[
                UngatedRegisterFile("execution_units", 1 * KB),
                UngatedRegisterFile("execution_ports", 1 * KB),
                UngatedRegisterFile("ooo_engine", 1 * KB),
                SRPGBank("distributed_csrs", srpg_bytes),
                UngatedSRAM(),
            ]
        )

    @property
    def total_context_bytes(self) -> int:
        return sum(s.context_bytes for s in self.structures)

    def retention_power(self, rail: str) -> float:
        """Idle power to hold the whole plan's context on ``rail``.

        ~2 mW at P1, ~1 mW at Pn for the default 8 KB plan (Table 3 beta).
        """
        return sum(s.retention_power(rail) for s in self.structures)

    @property
    def save_cycles(self) -> int:
        """Controller cycles to save all context (max across structures).

        Structures save in parallel — Ret is a broadcast signal — so the
        critical path is the slowest structure, i.e. the SRPG bank's 3-4
        cycles, not the sum.
        """
        return max(s.save_cycles for s in self.structures)

    @property
    def restore_cycles(self) -> int:
        """Controller cycles to restore all context (max across structures)."""
        return max(s.restore_cycles for s in self.structures)

    def area_overhead_report(self) -> Dict[str, float]:
        """Per-structure area overhead fractions, for the Table 3 rows."""
        return {s.name: s.area_overhead_fraction for s in self.structures}

    def by_technique(self) -> Dict[str, List[str]]:
        """Group structure names by retention technique."""
        groups: Dict[str, List[str]] = {}
        for s in self.structures:
            groups.setdefault(type(s).__name__, []).append(s.name)
        return groups
