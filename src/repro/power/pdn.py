"""Power delivery network (PDN) models.

Modern CPUs use one of three PDN styles (Sec 3): a fully-integrated voltage
regulator per core (FIVR, used by Skylake server), a motherboard VR (MBVR)
or a low-dropout regulator (LDO). For the AW power accounting two FIVR
properties matter (Sec 5.1.4):

- *dynamic* conversion loss: ~80% efficiency at light load, so delivering
  P watts to the core burns an extra P * (1/0.8 - 1) = 0.25 P in the FIVR;
- *static* loss: ~100 mW per core of control/feedback power that is burned
  even when the output is 0 V (i.e. also in C6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.units import MILLIWATT


@dataclass(frozen=True)
class VoltageRegulator:
    """A generic voltage regulator with a flat efficiency and static loss.

    Attributes:
        name: human-readable identifier.
        efficiency: output/input power ratio in (0, 1].
        static_loss_watts: power burned regardless of load (>= 0).
    """

    name: str
    efficiency: float
    static_loss_watts: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise PowerModelError(
                f"{self.name}: efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.static_loss_watts < 0:
            raise PowerModelError(f"{self.name}: static loss must be >= 0")

    def conversion_loss(self, delivered_watts: float) -> float:
        """Power burned in the regulator to deliver ``delivered_watts``.

        Excludes the static loss (query that separately); this matches the
        paper's Table 3 split between "FIVR inefficiency" and "FIVR static
        losses" rows.
        """
        if delivered_watts < 0:
            raise PowerModelError("delivered power must be >= 0")
        return delivered_watts * (1.0 / self.efficiency - 1.0)

    def input_power(self, delivered_watts: float) -> float:
        """Total power drawn from the input rail, including static loss."""
        return delivered_watts + self.conversion_loss(delivered_watts) + self.static_loss_watts


class FIVR(VoltageRegulator):
    """Skylake-style fully-integrated per-core voltage regulator.

    Defaults follow the paper: 80% light-load efficiency [41, 90, 91] and
    ~100 mW static loss [41, 91, 104].
    """

    def __init__(
        self,
        efficiency: float = 0.80,
        static_loss_watts: float = 100 * MILLIWATT,
    ):
        super().__init__("FIVR", efficiency, static_loss_watts)


class MBVR(VoltageRegulator):
    """Motherboard voltage regulator: higher efficiency, off-die static cost.

    MBVR static losses are board-level and not attributed per-core, hence
    static_loss defaults to 0 here; efficiency ~90% at light load.
    """

    def __init__(self, efficiency: float = 0.90):
        super().__init__("MBVR", efficiency, 0.0)


class LDO(VoltageRegulator):
    """Low-dropout regulator: efficiency equals Vout/Vin.

    The same physics the sleep transistors exploit (Sec 5.1.2).
    """

    def __init__(self, v_in: float, v_out: float):
        if v_in <= 0 or v_out <= 0:
            raise PowerModelError("LDO voltages must be positive")
        if v_out > v_in:
            raise PowerModelError(f"LDO v_out {v_out} cannot exceed v_in {v_in}")
        super().__init__("LDO", v_out / v_in, 0.0)
        object.__setattr__(self, "v_in", v_in)
        object.__setattr__(self, "v_out", v_out)
