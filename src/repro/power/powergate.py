"""Power gates, staggered wake-up and multi-zone gating controllers.

Background (Sec 3, Fig 2): a power-gated unit sits behind a fabric of
switch cells. Waking the unit instantly would draw a damaging in-rush
current spike, so controllers daisy-chain the switch cells' sleep signals
and turn them on in a staggered sequence. Skylake staggers the AVX gates
over ~15 ns.

AgileWatts (Sec 5.3) gates ~70% of the core — about 4.5x the area and
capacitance of the AVX units — and bounds in-rush by splitting the UFPG
region into five zones, each staggered over <= 15 ns and woken
sequentially, for a total of < 70 ns (4.5 x 15 ns = 67.5 ns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import PowerModelError
from repro.units import NS

#: Skylake staggers the AVX power-gate wake-up over ~15 ns [26][35].
AVX_STAGGER_TIME = 15 * NS

#: Ratio of UFPG area+capacitance to the AVX units' (Sec 5.3, from [78]).
UFPG_TO_AVX_AREA_RATIO = 4.5


@dataclass(frozen=True)
class PowerGate:
    """One power-gated region behind a daisy-chained switch fabric.

    Attributes:
        name: region identifier.
        relative_area: area of the region relative to the AVX units
            (the in-rush-current budget scales with area/capacitance).
        stagger_time: wall-clock time over which the controller staggers
            the switch-cell turn-on for this region.
        gate_effectiveness: fraction of region leakage eliminated when
            gated (95-97% per [76, 77, 191]).
    """

    name: str
    relative_area: float
    stagger_time: float = AVX_STAGGER_TIME
    gate_effectiveness: float = 0.96

    def __post_init__(self) -> None:
        if self.relative_area <= 0:
            raise PowerModelError(f"{self.name}: relative_area must be > 0")
        if self.stagger_time < 0:
            raise PowerModelError(f"{self.name}: stagger_time must be >= 0")
        if not 0.0 <= self.gate_effectiveness <= 1.0:
            raise PowerModelError(f"{self.name}: effectiveness must be in [0, 1]")

    def in_rush_safe(self, reference_area: float = 1.0) -> bool:
        """True if this region alone respects the per-wake in-rush budget.

        The budget is calibrated to the AVX gates: any region whose area is
        at most ``reference_area`` may be woken over one AVX-style stagger
        window without exceeding the current spike the PDN tolerates.
        """
        return self.relative_area <= reference_area + 1e-12

    def residual_leakage(self, region_leakage_watts: float) -> float:
        """Leakage that survives gating this region."""
        if region_leakage_watts < 0:
            raise PowerModelError("region leakage must be >= 0")
        return region_leakage_watts * (1.0 - self.gate_effectiveness)


@dataclass
class StaggeredWakeupController:
    """Daisy-chained staggered wake-up over an ordered set of power gates.

    Models the Fig 2 controller: gates wake strictly sequentially, each
    taking its own stagger window; the ``ready`` acknowledgement of the
    last chain marks the region fully conducting.
    """

    gates: Sequence[PowerGate]
    gated: bool = True
    _wake_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.gates:
            raise PowerModelError("controller needs at least one power gate")

    @property
    def wake_latency(self) -> float:
        """Total sequential wake-up latency (sum of stagger windows)."""
        return sum(gate.stagger_time for gate in self.gates)

    @property
    def sleep_latency(self) -> float:
        """Gating (sleep) is a single sleep-signal assertion: ~one window.

        Entering a gated state does not need staggering — current falls,
        it does not spike — so it completes within one stagger window of
        the slowest gate.
        """
        return max(gate.stagger_time for gate in self.gates)

    def sleep(self) -> float:
        """Gate all regions; returns latency. Idempotent."""
        if self.gated:
            return 0.0
        self.gated = True
        return self.sleep_latency

    def wake(self) -> float:
        """Ungate all regions sequentially; returns latency. Idempotent."""
        if not self.gated:
            return 0.0
        self.gated = False
        self._wake_count += 1
        return self.wake_latency

    @property
    def wake_count(self) -> int:
        """Number of completed wake sequences (for transition accounting)."""
        return self._wake_count

    def max_in_rush_area(self) -> float:
        """Largest single region woken at once — the in-rush figure of merit."""
        return max(gate.relative_area for gate in self.gates)


def make_ufpg_zones(
    total_relative_area: float = UFPG_TO_AVX_AREA_RATIO,
    zones: int = 5,
    stagger_time: float = AVX_STAGGER_TIME,
    gate_effectiveness: float = 0.96,
) -> List[PowerGate]:
    """Split the UFPG region into equal zones per Sec 5.3.

    Five zones of 4.5/5 = 0.9 AVX-equivalents each: every zone is smaller
    than the AVX region, so staggering each over <= 15 ns keeps the in-rush
    current within the proven AVX budget.

    Raises:
        PowerModelError: if any zone would exceed one AVX-equivalent, i.e.
            the split does not satisfy the in-rush constraint.
    """
    if zones < 1:
        raise PowerModelError(f"need at least one zone, got {zones}")
    if total_relative_area <= 0:
        raise PowerModelError("total relative area must be positive")
    per_zone = total_relative_area / zones
    if per_zone > 1.0 + 1e-9:
        raise PowerModelError(
            f"{zones} zones of {per_zone:.2f} AVX-equivalents each exceed the "
            "in-rush budget; use more zones"
        )
    # The stagger window scales with the zone's capacitance (area): a zone
    # of 0.9 AVX-equivalents needs only 0.9 x 15 ns, so five zones wake in
    # 4.5 x 15 ns = 67.5 ns total (Sec 5.3).
    per_zone_stagger = stagger_time * per_zone
    return [
        PowerGate(
            name=f"ufpg_zone_{i}",
            relative_area=per_zone,
            stagger_time=per_zone_stagger,
            gate_effectiveness=gate_effectiveness,
        )
        for i in range(zones)
    ]


@dataclass
class ZonedPowerGating:
    """The UFPG power-gate subsystem: five zones + controller (Sec 5.3)."""

    zones: int = 5
    total_relative_area: float = UFPG_TO_AVX_AREA_RATIO
    stagger_time: float = AVX_STAGGER_TIME
    gate_effectiveness: float = 0.96

    def __post_init__(self) -> None:
        gates = make_ufpg_zones(
            self.total_relative_area,
            self.zones,
            self.stagger_time,
            self.gate_effectiveness,
        )
        self.controller = StaggeredWakeupController(gates, gated=False)

    @property
    def wake_latency(self) -> float:
        """< 70 ns with the default five-zone split (67.5 ns)."""
        return self.controller.wake_latency

    @property
    def in_rush_safe(self) -> bool:
        """Every zone fits within the AVX-calibrated in-rush budget."""
        return self.controller.max_in_rush_area() <= 1.0 + 1e-9
