"""RAPL-style energy accounting.

The paper measures real-machine power via Intel's Running Average Power
Limit (RAPL) interface and per-C-state residency counters. The simulator
needs the same two observables, so this module provides:

- :class:`EnergyCounter` — integrates a piecewise-constant power signal
  into joules, exactly like a RAPL MSR accumulates energy units.
- :class:`RAPLDomain` — groups counters (e.g. per-core, package) and
  reports average power over a measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import PowerModelError, SimulationError


@dataclass
class EnergyCounter:
    """Integrates piecewise-constant power over simulation time.

    Usage: call :meth:`set_power` whenever the observed component changes
    power level; the counter accrues ``power * dt`` for the elapsed span.
    """

    name: str = "energy"
    _time: float = field(default=0.0, init=False)
    _power: float = field(default=0.0, init=False)
    _energy: float = field(default=0.0, init=False)
    _started: bool = field(default=False, init=False)

    def start(self, time: float, power: float) -> None:
        """Begin accumulation at ``time`` with initial ``power``."""
        if power < 0:
            raise PowerModelError(f"{self.name}: power must be >= 0, got {power}")
        self._time = time
        self._power = power
        self._started = True

    def set_power(self, time: float, power: float) -> None:
        """Record a power-level change at ``time``.

        Raises:
            SimulationError: if called before :meth:`start` or time runs
                backwards.
        """
        if not self._started:
            raise SimulationError(f"{self.name}: set_power before start")
        if time < self._time:
            raise SimulationError(
                f"{self.name}: time ran backwards ({time} < {self._time})"
            )
        if power < 0:
            raise PowerModelError(f"{self.name}: power must be >= 0, got {power}")
        self._energy += self._power * (time - self._time)
        self._time = time
        self._power = power

    def finish(self, time: float) -> float:
        """Close the window at ``time`` and return accumulated joules."""
        self.set_power(time, self._power)
        return self._energy

    @property
    def energy_joules(self) -> float:
        """Energy accumulated so far (up to the last power change)."""
        return self._energy

    @property
    def current_power(self) -> float:
        return self._power


@dataclass
class RAPLDomain:
    """A named collection of energy counters with window-average reporting."""

    name: str
    counters: Dict[str, EnergyCounter] = field(default_factory=dict)
    _window_start: float = field(default=0.0, init=False)

    def add_counter(self, key: str) -> EnergyCounter:
        """Create (or fetch) a counter under this domain."""
        if key not in self.counters:
            self.counters[key] = EnergyCounter(f"{self.name}/{key}")
        return self.counters[key]

    def begin_window(self, time: float) -> None:
        self._window_start = time

    def total_energy(self) -> float:
        return sum(c.energy_joules for c in self.counters.values())

    def average_power(self, time: float) -> float:
        """Average power over the window [begin_window, time].

        Raises:
            SimulationError: on a zero-length window.
        """
        span = time - self._window_start
        if span <= 0:
            raise SimulationError(f"{self.name}: zero-length RAPL window")
        # Flush all counters to `time` so partial spans are included.
        energy = 0.0
        for counter in self.counters.values():
            counter.set_power(time, counter.current_power)
            energy += counter.energy_joules
        return energy / span
