"""Runtime sim-sanitizer: cheap always-on asserts + periodic deep audits.

Static analysis (:mod:`repro.analyze`) proves what an AST can prove;
this module checks the invariants only a *running* simulation exposes.
Enable with ``REPRO_SANITIZE=1`` in the environment or ``repro
run/sweep --sanitize`` (the flag exports the env var, so pool workers
inherit it under both fork and spawn). When enabled:

- **SAN001** — the engine runs its checked twin loop: every popped heap
  entry must come in strictly increasing ``(time, seq)`` order, carry a
  sequence number the counter actually issued, and never fire behind
  the clock. The fast loop checks none of this (``step()`` does, the
  hot ``run()`` loop deliberately does not), so a corrupted timestamp
  silently drags the clock backwards — exactly the bug class this
  catches.
- **SAN002** — :class:`~repro.server.node.ServerNode` recycles
  ``_Request`` objects through a :class:`CheckedFreeList` that rejects
  double-frees: a request returned to the pool while already free is
  reachable from two owners and will corrupt an in-flight request when
  reused.
- **SAN003** — every :data:`AUDIT_INTERVAL` executed events (and once at
  end of run) the package's O(1) fixed-point core-power accumulator is
  re-summed against the per-core powers. The accumulator is exact
  (integer deltas in 2**-80 W units), so the tolerance covers only the
  float summation order of the *reference*, never accumulated drift.
- **SAN004** — every :meth:`~repro.store.result_store.ResultStore.put`
  round-trips the encoded row through the codec and compares canonical
  JSON; a truncating or lossy codec fails on the very write that would
  have corrupted the store.
- **SAN005** — :func:`~repro.cluster.sharding.merge_node_results`
  spot-checks merge order-invariance: integer observables (completions,
  latency sample counts) must be conserved exactly, float re-sums in
  reversed node order must agree within the documented bound.

Violations raise :class:`SanitizerError`, which carries a structured
:class:`~repro.analyze.findings.Finding` so runtime and static results
render identically; a runtime finding's path names the checked
component (``runtime:<component>``) instead of a file.

Disabled (the default), the only cost is one :func:`is_enabled` read
per ``Simulator``/``ServerNode`` construction and per store write — the
hot loop is untouched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Set

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.analyze.findings import Finding

__all__ = [
    "AUDIT_INTERVAL",
    "ENV_VAR",
    "CheckedFreeList",
    "SanitizerError",
    "SimSanitizer",
    "enabled",
    "is_enabled",
    "violation",
]

ENV_VAR = "REPRO_SANITIZE"

#: Executed events between deep audits. Amortises the O(cores) power
#: re-sum to a constant per event; tests shrink it to force audits.
AUDIT_INTERVAL = 4096

#: Session override; None defers to the environment variable.
_enabled: Optional[bool] = None


def is_enabled() -> bool:
    """Whether sanitizer checks are active for new simulations."""
    if _enabled is not None:
        return _enabled
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


@contextmanager
def enabled(on: bool = True) -> Iterator[None]:
    """Enable (or force off) the sanitizer for a scope.

    Sets both the in-process flag and ``REPRO_SANITIZE`` in the
    environment — worker processes spawned inside the scope inherit the
    setting — and restores both on exit.
    """
    global _enabled
    previous_flag = _enabled
    previous_env = os.environ.get(ENV_VAR)
    _enabled = on
    os.environ[ENV_VAR] = "1" if on else "0"
    try:
        yield
    finally:
        _enabled = previous_flag
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env


class SanitizerError(SimulationError):
    """A sanitizer invariant failed; carries the structured finding."""

    def __init__(self, finding: "Finding") -> None:
        self.finding = finding
        super().__init__(
            f"{finding.anchor}: {finding.rule_id} {finding.message}"
        )


def violation(rule_id: str, component: str, message: str) -> SanitizerError:
    """Build a :class:`SanitizerError` wrapping a runtime ``Finding``.

    The Finding import is deferred so ``import repro.simkit`` does not
    drag in the whole analyzer; a violation is already the slow path.
    """
    from repro.analyze.findings import Finding

    return SanitizerError(
        Finding(
            path=f"runtime:{component}",
            line=0,
            col=0,
            rule_id=rule_id,
            message=message,
        )
    )


class SimSanitizer:
    """Per-simulator audit registry driven by the checked run loop.

    The engine calls :meth:`tick` once per executed event; every
    :data:`AUDIT_INTERVAL` ticks (and at :meth:`flush`, called when a
    ``run()`` returns) the registered deep audits execute. Audits are
    plain callables that raise :class:`SanitizerError` on violation and
    must not mutate simulation state — they run *between* events on the
    shared clock, so any side effect would break bit-identity with an
    unsanitized run.
    """

    __slots__ = ("audits", "_interval", "_countdown")

    def __init__(self, interval: Optional[int] = None) -> None:
        self.audits: List[Callable[[], None]] = []
        self._interval = AUDIT_INTERVAL if interval is None else interval
        self._countdown = self._interval

    def add_audit(self, audit: Callable[[], None]) -> None:
        self.audits.append(audit)

    def tick(self) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._interval
            self.flush()

    def flush(self) -> None:
        for audit in self.audits:
            audit()


class CheckedFreeList(list):
    """A free list that catches double-frees (SAN002).

    Drop-in for the plain list :class:`~repro.server.node.ServerNode`
    recycles ``_Request`` objects through: ``append`` (free) rejects an
    object that is already in the pool — i.e. reachable from two owners,
    about to be handed out twice and corrupted mid-flight — and ``pop``
    (allocate) releases it again. Membership is tracked by object
    identity; identity never orders anything or reaches any result, it
    only distinguishes "already free" from "in flight".
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        super().__init__()
        self._free: Set[int] = set()

    def append(self, item: object) -> None:
        key = id(item)  # repro: allow[DET006] identity keys a membership check only; never ordering, never observable
        if key in self._free:
            raise violation(
                "SAN002",
                "server.node",
                "request returned to the free list while already free: "
                "double-free in the _Request recycling path would hand "
                "one object to two in-flight requests",
            )
        self._free.add(key)
        super().append(item)

    def pop(self, index: int = -1) -> object:
        item = super().pop(index)
        self._free.discard(id(item))  # repro: allow[DET006] identity keys a membership check only; never ordering, never observable
        return item
