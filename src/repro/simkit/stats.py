"""Online statistics used for latency and power reporting.

The evaluation reports average and tail (p99) request latency and average
power. :class:`OnlineStats` keeps numerically-stable running moments
(Welford), :class:`PercentileTracker` tracks percentiles — exactly by
default (all samples kept; simulations up to a few million samples are
affordable and avoid quantile-sketch error in the reproduction), or via
a bounded-memory mergeable :class:`~repro.simkit.sketch.DDSketch` when
constructed with ``sketch_error`` (fleet-scale runs; see
:mod:`repro.cluster.sharding`) — and :class:`Histogram` provides
fixed-bin summaries for traces.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.simkit.sketch import DDSketch


class OnlineStats:
    """Streaming mean/variance/min/max via Welford's algorithm."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        """Mean of observations; 0.0 if empty (convenient for reports)."""
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 with < 2 observations."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new OnlineStats equivalent to seeing both streams."""
        merged = OnlineStats()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


class PercentileTracker:
    """Percentiles over recorded samples: exact, or sketch-backed.

    Exact mode (the default): samples are appended in O(1) and sorted
    lazily on the first query after a mutation; the sorted array is then
    cached until the next ``add``/``add_many`` invalidates it. An
    ``analyze()`` pass reading p50/p95/p99/p99.9 therefore sorts once,
    not once per percentile — recording millions of latencies costs
    O(n log n) total instead of the O(n^2) of sorted insertion or the
    O(k·n log n) of re-sorting per query.

    Sketch mode (``sketch_error=alpha``): samples stream into a
    bounded-memory :class:`~repro.simkit.sketch.DDSketch` whose
    percentiles carry at most ``alpha`` relative error (documented in
    :mod:`repro.simkit.sketch`). Memory is O(max_bins) regardless of
    sample count, and two sketch-backed trackers :meth:`merge` exactly —
    the backend fleet-scale sharded execution uses. ``samples`` is
    unavailable in sketch mode (there are none); ``count``, ``mean`` and
    min/max stay exact.
    """

    def __init__(self, sketch_error: Optional[float] = None) -> None:
        self._samples: List[float] = []
        self._dirty = False
        self._sketch: Optional[DDSketch] = None
        if sketch_error is not None:
            self._sketch = DDSketch(relative_error=sketch_error)
            self._bind_sketch_hot_path()

    def _bind_sketch_hot_path(self) -> None:
        # Instance-attribute override: sketch-mode add/add_many go
        # straight to the sketch with no per-sample dispatch branch, and
        # the exact-mode class methods stay byte-identical to before.
        self.add = self._sketch.add
        self.add_many = self._sketch.add_many

    def __getstate__(self):
        state = self.__dict__.copy()
        # Drop the bound-method overrides; __setstate__ re-binds them.
        state.pop("add", None)
        state.pop("add_many", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._sketch is not None:
            self._bind_sketch_hot_path()

    @classmethod
    def _from_sketch(cls, sketch: DDSketch) -> "PercentileTracker":
        """Wrap an existing sketch (merge and store-decode paths)."""
        tracker = cls.__new__(cls)
        tracker._samples = []
        tracker._dirty = False
        tracker._sketch = sketch
        tracker._bind_sketch_hot_path()
        return tracker

    @property
    def sketch_error(self) -> Optional[float]:
        """The sketch's relative-error bound, or ``None`` in exact mode."""
        return None if self._sketch is None else self._sketch.relative_error

    @property
    def sketch(self) -> Optional[DDSketch]:
        """The backing sketch (``None`` in exact mode)."""
        return self._sketch

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._dirty = True

    def add_many(self, values: Sequence[float]) -> None:
        self._samples.extend(values)
        self._dirty = True

    @property
    def _sorted(self) -> List[float]:
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        return self._samples

    @property
    def count(self) -> int:
        if self._sketch is not None:
            return self._sketch.count
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded samples (order unspecified).

        Exposed so trackers can be serialized exactly (repro.store); the
        returned list is safe to mutate.

        Raises:
            ConfigurationError: in sketch mode — a sketch-backed tracker
                keeps bucket counts, not samples (serialize its
                :attr:`sketch` state instead).
        """
        if self._sketch is not None:
            raise ConfigurationError(
                "sketch-backed PercentileTracker keeps no samples; "
                "serialize tracker.sketch.to_state() instead"
            )
        return list(self._samples)

    def percentile(self, p: float) -> float:
        """Percentile: exact with linear interpolation (numpy 'linear'),
        or within ``sketch_error`` relative error in sketch mode.

        Raises:
            ConfigurationError: if p outside [0, 100].
            ValueError: if no samples recorded.
        """
        if not 0 <= p <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        if self._sketch is not None:
            return self._sketch.quantile(p / 100.0)
        if not self._sorted:
            raise ValueError("no samples recorded")
        if len(self._sorted) == 1:
            return self._sorted[0]
        data = self._sorted
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or data[low] == data[high]:
            return data[low]
        frac = rank - low
        return data[low] * (1 - frac) + data[high] * frac

    @property
    def mean(self) -> float:
        if self._sketch is not None:
            return self._sketch.mean
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def merge(self, other: "PercentileTracker") -> "PercentileTracker":
        """A new tracker equivalent to seeing both streams.

        Exact mode concatenates the sample lists in argument order
        (percentiles depend only on the sample *multiset*, so any merge
        order yields bit-identical percentiles; the mean's float
        summation order is the concatenation order). Sketch mode merges
        bucket counts — exact integer addition, order-independent.

        Raises:
            ConfigurationError: on mixed backends or mismatched sketch
                parameters.
        """
        if (self._sketch is None) != (other._sketch is None):
            raise ConfigurationError(
                "cannot merge an exact PercentileTracker with a "
                "sketch-backed one; build both with the same sketch_error"
            )
        if self._sketch is not None:
            return PercentileTracker._from_sketch(self._sketch.merge(other._sketch))
        merged = PercentileTracker()
        merged._samples = self._samples + other._samples
        merged._dirty = bool(merged._samples)
        return merged

    @classmethod
    def merge_all(cls, trackers: Iterable["PercentileTracker"]) -> "PercentileTracker":
        """Merge many trackers in one pass (single list build / sketch fold).

        Equivalent to folding :meth:`merge` left-to-right, but exact mode
        extends one output list instead of building K intermediate
        copies — O(total samples), not O(K * total).
        """
        trackers = list(trackers)
        if not trackers:
            return cls()
        first_sketch = trackers[0]._sketch
        for tracker in trackers[1:]:
            if (tracker._sketch is None) != (first_sketch is None):
                raise ConfigurationError(
                    "cannot merge exact and sketch-backed "
                    "PercentileTrackers; build all with the same sketch_error"
                )
        if first_sketch is not None:
            # Start from an empty merge so the result never aliases an
            # input tracker's live sketch.
            merged_sketch = DDSketch(
                first_sketch.relative_error, first_sketch.max_bins
            ).merge(first_sketch)
            for tracker in trackers[1:]:
                merged_sketch = merged_sketch.merge(tracker._sketch)
            return cls._from_sketch(merged_sketch)
        merged = cls()
        out: List[float] = []
        for tracker in trackers:
            out.extend(tracker._samples)
        merged._samples = out
        merged._dirty = bool(out)
        return merged

    def percentiles(self, ps: Sequence[float]) -> List[float]:
        """Several percentiles off one cached sort (order preserved)."""
        return [self.percentile(p) for p in ps]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """p99.9 — the deep-tail view fan-out amplification dominates."""
        return self.percentile(99.9)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold`` (exact mode);
        approximate within the bucket resolution in sketch mode."""
        if self._sketch is not None:
            return self._sketch.fraction_above(threshold)
        if not self._sorted:
            return 0.0
        idx = bisect_left(self._sorted, threshold)
        # advance past equal values
        while idx < len(self._sorted) and self._sorted[idx] == threshold:
            idx += 1
        return (len(self._sorted) - idx) / len(self._sorted)


class Histogram:
    """Fixed-width binning over [low, high) with under/overflow bins."""

    def __init__(self, low: float, high: float, bins: int):
        if bins <= 0:
            raise ConfigurationError(f"bins must be positive, got {bins}")
        if not low < high:
            raise ConfigurationError(f"need low < high, got [{low}, {high})")
        self._low = low
        self._high = high
        self._bins = bins
        self._width = (high - low) / bins
        self._counts = [0] * bins
        self._underflow = 0
        self._overflow = 0
        self._total = 0

    def add(self, value: float) -> None:
        self._total += 1
        if value < self._low:
            self._underflow += 1
        elif value >= self._high:
            self._overflow += 1
        else:
            idx = int((value - self._low) / self._width)
            # guard against float edge landing exactly on high
            idx = min(idx, self._bins - 1)
            self._counts[idx] += 1

    @property
    def total(self) -> int:
        return self._total

    @property
    def counts(self) -> List[int]:
        return list(self._counts)

    @property
    def underflow(self) -> int:
        return self._underflow

    @property
    def overflow(self) -> int:
        return self._overflow

    def bin_edges(self) -> List[float]:
        return [self._low + i * self._width for i in range(self._bins + 1)]

    def mode_bin(self) -> Optional[int]:
        """Index of the most populated bin, or None if empty."""
        if self._total == self._underflow + self._overflow:
            return None
        best = max(range(self._bins), key=lambda i: self._counts[i])
        return best


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean; the workhorse of residency-weighted power (Eq. 2).

    Raises:
        ConfigurationError: on length mismatch or non-positive total weight.
    """
    if len(values) != len(weights):
        raise ConfigurationError("values and weights must have equal length")
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError(f"total weight must be positive, got {total}")
    return sum(v * w for v, w in zip(values, weights)) / total
