"""Discrete-event simulation substrate.

``simkit`` is a small, dependency-free discrete-event simulation kernel:

- :class:`~repro.simkit.engine.Simulator` — the event loop and clock.
- :mod:`~repro.simkit.distributions` — seeded random variates for load
  generators and service-time models.
- :mod:`~repro.simkit.stats` — online statistics (mean/variance,
  percentiles, histograms) used for latency and power reporting.
- :mod:`~repro.simkit.trace` — optional event tracing.
"""

from repro.simkit.engine import Event, Simulator
from repro.simkit.distributions import (
    Degenerate,
    EmpiricalDistribution,
    Exponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    Uniform,
    make_distribution,
)
from repro.simkit.sketch import DDSketch
from repro.simkit.stats import Histogram, OnlineStats, PercentileTracker
from repro.simkit.trace import TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "Degenerate",
    "EmpiricalDistribution",
    "Exponential",
    "LogNormal",
    "MixtureDistribution",
    "Pareto",
    "Uniform",
    "make_distribution",
    "DDSketch",
    "Histogram",
    "OnlineStats",
    "PercentileTracker",
    "TraceRecorder",
]
