"""Event tracing for debugging and analysis.

A :class:`TraceRecorder` collects (time, source, kind, payload) tuples.
Simulation actors emit into it when tracing is enabled; it is disabled by
default so hot loops pay only a boolean check.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    time: float
    source: str
    kind: str
    payload: Any


class TraceRecorder:
    """Append-only trace with simple filtering helpers."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        """Record one event if tracing is enabled and capacity allows."""
        if not self.enabled:
            return
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._dropped += 1
            return
        self._events.append(TraceEvent(time, source, kind, payload))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because the trace hit its capacity."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given source and/or kind."""
        out = []
        for event in self._events:
            if source is not None and event.source != source:
                continue
            if kind is not None and event.kind != kind:
                continue
            out.append(event)
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of event kinds; handy for assertions in tests."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0


NULL_TRACE = TraceRecorder(enabled=False)
"""A shared disabled recorder; actors default to this to avoid None checks."""
