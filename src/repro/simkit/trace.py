"""Event tracing for debugging and analysis.

A :class:`TraceRecorder` collects (time, source, kind, payload) tuples.
Simulation actors emit into it when tracing is enabled; it is disabled by
default so hot loops pay only a boolean check.

Cluster plumbing: a shared recorder is handed to each node wrapped in a
:class:`PrefixedTrace` so per-node sources stay distinguishable
(``n0.core3`` vs ``n1.core3``), and the Chrome-trace exporter
(:mod:`repro.obs.chrometrace`) maps the prefix back to a process lane.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    time: float
    source: str
    kind: str
    payload: Any


class TraceRecorder:
    """Append-only trace with simple filtering helpers.

    Args:
        enabled: record events (the default for explicitly-built
            recorders; :data:`NULL_TRACE` is the disabled singleton).
        capacity: optional cap on retained events. Once reached, further
            events are counted in :attr:`dropped` instead of stored — and
            ``log`` (if given) is called once with a warning, so capped
            traces never lose data *silently*.
        log: one-line warning sink (the runner log hook shape:
            ``log(message)``), called at most once per fill-up.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: Optional[int] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.enabled = enabled
        self._capacity = capacity
        self._log = log
        self._warned = False
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        """Record one event if tracing is enabled and capacity allows."""
        if not self.enabled:
            return
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._dropped += 1
            if not self._warned:
                self._warned = True
                if self._log is not None:
                    self._log(
                        f"trace: capacity {self._capacity} reached at "
                        f"t={time:.6f}; further events are dropped (count "
                        "them via .dropped / trace-export metadata)"
                    )
            return
        self._events.append(TraceEvent(time, source, kind, payload))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because the trace hit its capacity."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given source and/or kind."""
        out = []
        for event in self._events:
            if source is not None and event.source != source:
                continue
            if kind is not None and event.kind != kind:
                continue
            out.append(event)
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of event kinds; handy for assertions in tests."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
        self._warned = False


class PrefixedTrace:
    """A view of a shared recorder that prefixes every source string.

    Duck-typed to the two members actors touch (``enabled`` and
    :meth:`record`), so a :class:`~repro.server.node.ServerNode` embedded
    in a cluster records ``n{i}.core{c}`` events into the cluster's one
    recorder without per-node recorder objects or hot-path string checks
    when tracing is off (``enabled`` proxies the inner recorder's flag).
    """

    __slots__ = ("_inner", "_prefix")

    def __init__(self, inner: TraceRecorder, prefix: str):
        self._inner = inner
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    def record(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        self._inner.record(time, self._prefix + source, kind, payload)


NULL_TRACE = TraceRecorder(enabled=False)
"""A shared disabled recorder; actors default to this to avoid None checks."""
