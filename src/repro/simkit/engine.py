"""Discrete-event simulation engine.

The engine is a classic calendar-queue simulator: the heap holds
``(time, seq, payload)`` triples where the payload is either a bare
callback (the allocation-free fast path) or an :class:`Event` wrapper
(the cancellable path). The sequence number breaks ties deterministically
so two events scheduled for the same instant always fire in scheduling
order, which keeps every simulation reproducible for a fixed seed — and
because both paths draw from the *same* sequence counter, mixing them
never reorders anything.

Two scheduling paths:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` that can be cancelled and carries a debug label.
- :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_at_fast`
  push the callback straight into the heap — no ``Event`` object, no
  cancellation, no label. This is the hot path for the ~95% of simulation
  events (service completions, wakes, arrivals) that are never cancelled:
  per-event cost drops to a tuple allocation plus a heap push, and the
  fired order is bit-identical to the slow path for the same scheduling
  sequence.

Time is a float in **seconds**. Nanosecond-scale C-state transitions inside
a seconds-scale run are well within float64 resolution (~1e-16 relative).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simkit import sanitizer as _sanitizer

EventCallback = Callable[[], Any]


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancelled events stay in the heap but are skipped when popped (lazy
    deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(
        self, time: float, seq: int, callback: EventCallback, label: str = ""
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state}, label={self.label!r})"


#: Heap entry: (time, seq, payload). seq is unique, so comparisons never
#: reach the payload (callbacks and Events need not be orderable). The
#: payload slot is ``Any`` on purpose: it holds either an :class:`Event`
#: or a bare callback, discriminated by an exact ``__class__`` test in
#: the hot loop — a ``Union`` would force casts on the most executed
#: lines in the repository.
_HeapEntry = Tuple[float, int, Any]


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(1.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.0]
    """

    def __init__(self) -> None:
        #: Current simulation time in seconds. A plain attribute (not a
        #: property): handlers read it once per event, and the property
        #: descriptor call was measurable at millions of events. Treat as
        #: read-only outside the engine.
        self.now = 0.0
        self._queue: List[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._peak_pending = 0
        #: Runtime sanitizer hook. None unless REPRO_SANITIZE was on at
        #: construction; components register deep audits on it and
        #: ``run()`` dispatches to the checked twin loop when present.
        self.sanitizer: Optional[_sanitizer.SimSanitizer] = (
            _sanitizer.SimSanitizer() if _sanitizer.is_enabled() else None
        )
        # Telemetry tick hook (see set_tick_hook): None unless a
        # TimelineSampler attached, in which case run() dispatches to the
        # _run_ticked twin loop. The hot loop itself is untouched, so
        # probes-off costs exactly one branch per run() call.
        self._tick_hook: Optional[Callable[[float], None]] = None
        self._tick_hz = 0.0
        self._tick_index = 0

    # -- clock ---------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._queue)

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of the event heap over the simulation's lifetime.

        Memory pressure in long runs is governed by this, not by the
        instantaneous :attr:`pending_events`; streaming event sources keep
        it O(actors) instead of O(total events).
        """
        return self._peak_pending

    # -- scheduling ------------------------------------------------------------
    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Returns an :class:`Event` handle that supports cancellation. Use
        :meth:`schedule_at_fast` when the event will never be cancelled.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, label)
        queue = self._queue
        heapq.heappush(queue, (time, seq, event))
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)
        return event

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, label)

    def schedule_at_fast(self, time: float, callback: EventCallback) -> None:
        """Allocation-free scheduling at absolute ``time``.

        Determinism contract: identical to :meth:`schedule_at` in firing
        order (both paths share one sequence counter), but the event
        cannot be cancelled and carries no label, so no :class:`Event`
        object is allocated. Use for hot-path events that always fire.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (time, seq, callback))
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)

    def schedule_fast(self, delay: float, callback: EventCallback) -> None:
        """Allocation-free scheduling after ``delay`` seconds from now.

        See :meth:`schedule_at_fast` for the determinism contract
        (no cancel, no label).

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (self.now + delay, seq, callback))
        if len(queue) > self._peak_pending:
            self._peak_pending = len(queue)

    # -- telemetry ticks ---------------------------------------------------------
    def set_tick_hook(self, hz: float, callback: Callable[[float], None]) -> None:
        """Install a simulated-time tick hook firing at ``hz`` Hz.

        ``callback(tick_time)`` is invoked from :meth:`run` at every tick
        boundary ``k / hz`` — *before* any event scheduled at or after
        that instant executes, so the callback observes the
        piecewise-constant simulation state as it stands at the tick.
        Ticks are not heap events: they consume no sequence numbers, do
        not count toward :attr:`events_processed` and cannot reorder
        anything, so a run with a hook attached executes the exact same
        event sequence as one without (the bit-identity contract the
        telemetry probes rely on).

        The hook must treat the simulation as read-only. Only one hook
        may be installed at a time.

        Raises:
            SimulationError: if a hook is already installed or ``hz`` is
                not a positive finite rate.
        """
        if self._tick_hook is not None:
            raise SimulationError("simulator already has a tick hook")
        if not (hz > 0) or not math.isfinite(hz):
            raise SimulationError(f"tick rate must be positive and finite, got {hz}")
        self._tick_hook = callback
        self._tick_hz = float(hz)
        # First tick = smallest k with k / hz >= now (k = 0 at time zero,
        # so the initial state is always sampled). ceil() on the product
        # can land one off either way at representation boundaries; the
        # two correction loops run at most once each.
        index = int(math.ceil(self.now * hz))
        while index / hz < self.now:
            index += 1
        while index > 0 and (index - 1) / hz >= self.now:
            index -= 1
        self._tick_index = index

    def clear_tick_hook(self) -> None:
        """Remove the telemetry tick hook. Idempotent."""
        self._tick_hook = None

    # -- execution -------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event. Returns False if queue is empty."""
        while self._queue:
            time, _seq, payload = heapq.heappop(self._queue)
            if payload.__class__ is Event:
                if payload.cancelled:
                    continue
                payload = payload.callback
            if time < self.now:
                raise SimulationError("event heap yielded an event in the past")
            self.now = time
            self._events_processed += 1
            payload()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so residency accounting that
        closes out at ``sim.now`` covers the full horizon.
        """
        if self.sanitizer is not None:
            self._run_checked(until, max_events)
            return
        if self._tick_hook is not None:
            self._run_ticked(until, max_events)
            return
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        # This loop is the single most executed piece of code in the
        # repository: hot names are localised, the bound checks are
        # hoisted to infinities, and entries are popped first — the rare
        # past-the-bound entry is pushed back, which costs one heap op
        # per run() instead of a peek-then-pop pair per event.
        queue = self._queue
        heappop = heapq.heappop
        event_class = Event
        until_t = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        executed = 0
        try:
            while queue:
                entry = heappop(queue)
                payload = entry[2]
                if payload.__class__ is event_class:
                    if payload.cancelled:
                        continue
                    payload = payload.callback
                time = entry[0]
                if time > until_t or executed >= budget:
                    heapq.heappush(queue, entry)
                    break
                self.now = time
                executed += 1
                # Kept live (not batched into the finally): callbacks and
                # instrumentation may sample events_processed mid-run.
                self._events_processed += 1
                payload()
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def _run_ticked(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """Twin of :meth:`run` interleaving telemetry ticks between events.

        Kept as a separate loop so the probes-off hot path stays exactly
        as fast. Ticks at ``k / hz`` fire before any event at or after
        that instant; they are not heap events, so the event sequence,
        sequence numbers and counters are bit-identical to an untracked
        run. Remaining ticks up to ``until`` fire after the last event so
        a ``run(until=horizon)`` samples the full horizon; when the
        ``max_events`` budget stops the run early, pending ticks stay
        pending for the next call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        event_class = Event
        until_t = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        executed = 0
        hook = self._tick_hook
        assert hook is not None
        hz = self._tick_hz
        index = self._tick_index
        try:
            while queue:
                entry = heappop(queue)
                payload = entry[2]
                if payload.__class__ is event_class:
                    if payload.cancelled:
                        continue
                    payload = payload.callback
                time = entry[0]
                if time > until_t or executed >= budget:
                    heapq.heappush(queue, entry)
                    break
                tick = index / hz
                while tick <= time:
                    hook(tick)
                    index += 1
                    tick = index / hz
                self.now = time
                executed += 1
                self._events_processed += 1
                payload()
        finally:
            self._tick_index = index
            self._running = False
        if until is not None:
            tick = index / hz
            while tick <= until_t:
                hook(tick)
                index += 1
                tick = index / hz
            self._tick_index = index
            if self.now < until:
                self.now = until

    def _run_checked(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The sanitized twin of :meth:`run` (SAN001 + deep audits).

        Kept as a separate loop so the unchecked hot path stays exactly
        as fast; event execution order, clock updates and counters are
        identical, so a run that raises no violation is bit-identical to
        an unsanitized run. Per pop it verifies strictly increasing
        ``(time, seq)`` heap order (which subsumes monotonic event time
        and unique sequence numbers), that the sequence number was
        actually issued by this simulator's counter, and that no event
        fires behind the clock — the check the fast loop deliberately
        omits. ``(last_time, last_seq)`` reset per call: a past-the-bound
        entry pushed back here is legitimately re-popped by the next run.
        """
        san = self.sanitizer
        assert san is not None
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        event_class = Event
        until_t = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        executed = 0
        last_time = -math.inf
        last_seq = -1
        try:
            while queue:
                entry = heappop(queue)
                time = entry[0]
                seq = entry[1]
                if time < last_time or (
                    time == last_time and seq <= last_seq
                ):
                    raise _sanitizer.violation(
                        "SAN001", "simkit.engine",
                        f"heap yielded (t={time!r}, seq={seq}) after "
                        f"(t={last_time!r}, seq={last_seq}): heap order "
                        "corrupted (non-monotonic event time or "
                        "duplicate sequence)",
                    )
                if seq < 0 or seq >= self._seq:
                    raise _sanitizer.violation(
                        "SAN001", "simkit.engine",
                        f"popped sequence number {seq} was never issued "
                        f"(counter at {self._seq}): the heap was "
                        "tampered with outside the scheduling API",
                    )
                if time < self.now:
                    raise _sanitizer.violation(
                        "SAN001", "simkit.engine",
                        f"event at t={time!r} fires behind the clock "
                        f"(now={self.now!r}): executing it would move "
                        "simulation time backwards",
                    )
                payload = entry[2]
                if payload.__class__ is event_class:
                    if payload.cancelled:
                        continue
                    payload = payload.callback
                if time > until_t or executed >= budget:
                    heapq.heappush(queue, entry)
                    break
                hook = self._tick_hook
                if hook is not None:
                    tick = self._tick_index / self._tick_hz
                    while tick <= time:
                        hook(tick)
                        self._tick_index += 1
                        tick = self._tick_index / self._tick_hz
                last_time = time
                last_seq = seq
                self.now = time
                executed += 1
                self._events_processed += 1
                payload()
                san.tick()
        finally:
            self._running = False
        if until is not None:
            hook = self._tick_hook
            if hook is not None:
                tick = self._tick_index / self._tick_hz
                while tick <= until_t:
                    hook(tick)
                    self._tick_index += 1
                    tick = self._tick_index / self._tick_hz
            if self.now < until:
                self.now = until
        san.flush()

    def drain(self) -> None:
        """Discard all pending events without executing them."""
        self._queue.clear()
