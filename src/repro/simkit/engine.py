"""Discrete-event simulation engine.

The engine is a classic calendar-queue simulator: events are (time, seq,
callback) triples kept in a binary heap. The sequence number breaks ties
deterministically so two events scheduled for the same instant always fire
in scheduling order, which keeps every simulation reproducible for a fixed
seed.

Time is a float in **seconds**. Nanosecond-scale C-state transitions inside
a seconds-scale run are well within float64 resolution (~1e-16 relative).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

EventCallback = Callable[[], Any]


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancelled events stay in the heap but are skipped when popped (lazy
    deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: float, seq: int, callback: EventCallback, label: str = ""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {state}, label={self.label!r})"


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(1.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._peak_pending = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._queue)

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of the event heap over the simulation's lifetime.

        Memory pressure in long runs is governed by this, not by the
        instantaneous :attr:`pending_events`; streaming event sources keep
        it O(actors) instead of O(total events).
        """
        return self._peak_pending

    # -- scheduling ------------------------------------------------------------
    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._peak_pending:
            self._peak_pending = len(self._queue)
        return event

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, label)

    # -- execution -------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event. Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded an event in the past")
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so residency accounting that
        closes out at ``sim.now`` covers the full horizon.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                executed += 1
                event.callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events without executing them."""
        self._queue.clear()
