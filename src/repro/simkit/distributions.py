"""Seeded random variates for workload and service-time modelling.

Each distribution wraps a private :class:`random.Random` instance so that
every stochastic component of a simulation (arrivals, service times, snoop
traffic) draws from an independent, reproducible stream. Two simulations
built with the same seeds produce bit-identical schedules.

All distributions expose:

- ``sample() -> float`` — one variate (always >= 0 for the provided types)
- ``mean`` — the analytic mean, used by load calculators and tests
"""

from __future__ import annotations

import math
import random
from functools import partial
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


class Distribution:
    """Base class: a reproducible non-negative random variate."""

    def sample(self) -> float:
        raise NotImplementedError

    def sampler(self) -> Callable[[], float]:
        """A zero-argument callable drawing from the same stream as
        :meth:`sample`.

        The default is the bound :meth:`sample` itself. Subclasses whose
        sample is a single :mod:`random` call override this with a
        C-dispatching :func:`~functools.partial`, which skips one Python
        frame per draw — service-time sampling runs once per simulated
        request, so the frame is measurable at scale. Both entry points
        consume the identical random stream.
        """
        return self.sample

    @property
    def mean(self) -> float:
        raise NotImplementedError

    def sample_many(self, n: int) -> List[float]:
        """Draw ``n`` variates (convenience for vector consumers)."""
        if n < 0:
            raise ConfigurationError(f"cannot draw {n} samples")
        return [self.sample() for _ in range(n)]


class Degenerate(Distribution):
    """A constant: always returns ``value``. Useful for deterministic tests."""

    def __init__(self, value: float):
        if value < 0:
            raise ConfigurationError(f"degenerate value must be >= 0, got {value}")
        self._value = float(value)

    def sample(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Degenerate({self._value})"


class Exponential(Distribution):
    """Exponential with given mean (inter-arrival times of Poisson processes)."""

    def __init__(self, mean: float, seed: int = 0):
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean}")
        self._mean = float(mean)
        self._lambd = 1.0 / self._mean
        self._rng = random.Random(seed)

    def sample(self) -> float:
        return self._rng.expovariate(self._lambd)

    def sampler(self) -> Callable[[], float]:
        return partial(self._rng.expovariate, self._lambd)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Uniform(Distribution):
    """Uniform on [low, high)."""

    def __init__(self, low: float, high: float, seed: int = 0):
        if not 0 <= low <= high:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high})")
        self._low = float(low)
        self._high = float(high)
        self._rng = random.Random(seed)

    def sample(self) -> float:
        return self._rng.uniform(self._low, self._high)

    def sampler(self) -> Callable[[], float]:
        return partial(self._rng.uniform, self._low, self._high)

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self._low}, {self._high})"


class LogNormal(Distribution):
    """Log-normal parameterised by its *actual* mean and sigma (of log).

    Service times of real services are right-skewed; log-normal is the
    conventional fit (e.g. Mutilate's Facebook ETC service times).
    """

    def __init__(self, mean: float, sigma: float = 0.5, seed: int = 0):
        if mean <= 0:
            raise ConfigurationError(f"lognormal mean must be > 0, got {mean}")
        if sigma < 0:
            raise ConfigurationError(f"lognormal sigma must be >= 0, got {sigma}")
        self._mean = float(mean)
        self._sigma = float(sigma)
        # E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        self._mu = math.log(mean) - sigma * sigma / 2.0
        self._rng = random.Random(seed)

    def sample(self) -> float:
        if self._sigma == 0:
            return self._mean
        return self._rng.lognormvariate(self._mu, self._sigma)

    def sampler(self) -> Callable[[], float]:
        if self._sigma == 0:
            return self.sample
        return partial(self._rng.lognormvariate, self._mu, self._sigma)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean}, sigma={self._sigma})"


class Pareto(Distribution):
    """Bounded-mean Pareto (heavy-tailed), parameterised by mean and alpha > 1.

    Used for tail-heavy request mixes (e.g. MySQL OLTP transactions with
    occasional large scans).
    """

    def __init__(self, mean: float, alpha: float = 2.5, seed: int = 0):
        if mean <= 0:
            raise ConfigurationError(f"pareto mean must be > 0, got {mean}")
        if alpha <= 1:
            raise ConfigurationError(f"pareto alpha must be > 1, got {alpha}")
        self._mean = float(mean)
        self._alpha = float(alpha)
        # E[X] = alpha * xm / (alpha - 1)  =>  xm = mean * (alpha - 1) / alpha
        self._xm = mean * (alpha - 1.0) / alpha
        self._rng = random.Random(seed)

    def sample(self) -> float:
        u = self._rng.random()
        # Inverse CDF; clamp u away from 0 to avoid infinities.
        u = max(u, 1e-12)
        return self._xm / (u ** (1.0 / self._alpha))

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Pareto(mean={self._mean}, alpha={self._alpha})"


class EmpiricalDistribution(Distribution):
    """Samples from a fixed list of observations with replacement."""

    def __init__(self, observations: Sequence[float], seed: int = 0):
        if not observations:
            raise ConfigurationError("empirical distribution needs observations")
        if any(x < 0 for x in observations):
            raise ConfigurationError("observations must be non-negative")
        self._observations = [float(x) for x in observations]
        self._rng = random.Random(seed)
        self._mean = sum(self._observations) / len(self._observations)

    def sample(self) -> float:
        return self._rng.choice(self._observations)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"EmpiricalDistribution(n={len(self._observations)})"


class MixtureDistribution(Distribution):
    """Weighted mixture of distributions (e.g. GET/SET request mix)."""

    def __init__(self, components: Sequence[Tuple[float, Distribution]], seed: int = 0):
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        weights = [w for w, _ in components]
        if any(w <= 0 for w in weights):
            raise ConfigurationError("mixture weights must be positive")
        total = sum(weights)
        self._weights = [w / total for w in weights]
        self._dists = [d for _, d in components]
        self._rng = random.Random(seed)
        self._cum: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w
            self._cum.append(acc)

    def sample(self) -> float:
        u = self._rng.random()
        for threshold, dist in zip(self._cum, self._dists):
            if u <= threshold:
                return dist.sample()
        return self._dists[-1].sample()

    @property
    def mean(self) -> float:
        return sum(w * d.mean for w, d in zip(self._weights, self._dists))

    def __repr__(self) -> str:
        return f"MixtureDistribution(k={len(self._dists)})"


_FACTORIES: Dict[str, type] = {
    "degenerate": Degenerate,
    "exponential": Exponential,
    "uniform": Uniform,
    "lognormal": LogNormal,
    "pareto": Pareto,
}


def make_distribution(kind: str, **kwargs) -> Distribution:
    """Build a distribution from a name; used by config-file driven runs.

    Example:
        >>> d = make_distribution("exponential", mean=2.0, seed=7)
        >>> d.mean
        2.0
    """
    try:
        factory = _FACTORIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {kind!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
