"""Mergeable quantile sketch with a bounded relative error (DDSketch).

Exact percentiles keep every sample, so a 1000-node fleet serving 10^8
requests would pin ~1 GB of latency floats per run. :class:`DDSketch`
(Masson, Lee & Rim, "DDSketch: a fast and fully-mergeable quantile
sketch with relative-error guarantees", VLDB 2019) replaces the sample
list with logarithmically-spaced buckets: values land in bucket
``ceil(log_gamma(v))`` for ``gamma = (1 + alpha) / (1 - alpha)``, and
every bucket midpoint is within relative error ``alpha`` of any value in
the bucket. The structure is:

- **bounded**: at most ``max_bins`` buckets are kept (the lowest buckets
  collapse together past the cap, preserving the *high*-quantile
  guarantee, which is the tail this project reports);
- **exactly mergeable**: bucket counts are integers, so merging two
  sketches is per-bucket integer addition — associative, commutative,
  and bit-reproducible regardless of merge order. That is what lets
  sharded cluster execution (:mod:`repro.cluster.sharding`) combine
  per-node percentile state without replaying samples.

Count, sum, min and max are tracked exactly alongside the buckets, so
``mean`` and the extreme quantiles (p0/p100) carry no sketch error.

The guarantee: for any quantile ``q`` whose rank does not fall in a
collapsed bucket, ``|estimate - true| <= alpha * true``. With the
default ``alpha = 0.01`` a true p99 of 1.00 ms is reported in
[0.99 ms, 1.01 ms] — far below run-to-run simulation noise — from a few
hundred buckets regardless of sample count.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default relative-error bound (1%).
DEFAULT_RELATIVE_ERROR = 0.01

#: Default bucket cap. Latencies here span ~1 us to ~1 s (six decades);
#: at alpha=0.01 a decade costs ~115 buckets, so 2048 leaves 3x headroom
#: before any collapsing happens.
DEFAULT_MAX_BINS = 2048

#: Values below this land in the zero bucket (reported as 0.0). Request
#: latencies are seconds; 1e-12 s is far below any representable service
#: time, so in practice only exact zeros hit it.
MIN_TRACKABLE = 1e-12


class DDSketch:
    """Relative-error quantile sketch over non-negative values.

    Args:
        relative_error: the accuracy bound ``alpha`` (0 < alpha < 1).
        max_bins: bucket cap; lowest buckets collapse past it.
    """

    __slots__ = (
        "relative_error", "max_bins", "_gamma", "_multiplier",
        "_bins", "_zero_count", "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ConfigurationError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        if max_bins < 2:
            raise ConfigurationError(f"max_bins must be >= 2, got {max_bins}")
        self.relative_error = float(relative_error)
        self.max_bins = int(max_bins)
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._multiplier = 1.0 / math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        if value < 0.0:
            raise ConfigurationError(
                f"DDSketch records non-negative values, got {value}"
            )
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value < MIN_TRACKABLE:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) * self._multiplier)
        bins = self._bins
        bins[index] = bins.get(index, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse()

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _collapse(self) -> None:
        """Merge the lowest buckets until the cap holds.

        Collapsing low buckets trades low-quantile accuracy for tail
        accuracy (the DDSketch choice): counts migrate upward into the
        lowest *kept* bucket, so high quantiles keep their bound.
        """
        order = sorted(self._bins)
        keep_from = len(order) - self.max_bins + 1
        floor_index = order[keep_from]
        moved = sum(self._bins.pop(index) for index in order[:keep_from])
        self._bins[floor_index] += moved

    # -- queries -----------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean (sum and count carry no sketch error)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def num_bins(self) -> int:
        return len(self._bins)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within the relative error.

        Uses the same rank convention as the exact tracker's linear
        interpolation anchor (``rank = q * (count - 1)``) so sketch and
        exact percentiles are directly comparable; the answer is clamped
        to the exact observed [min, max].

        Raises:
            ConfigurationError: if ``q`` is outside [0, 1].
            ValueError: if no observations were recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            raise ValueError("no samples recorded")
        # Min and max are tracked exactly, so the extreme quantiles carry
        # no sketch error (the docstring's p0/p100 guarantee).
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self._count - 1)
        cumulative = self._zero_count
        if cumulative > rank:
            return 0.0
        gamma = self._gamma
        for index in sorted(self._bins):
            cumulative += self._bins[index]
            if cumulative > rank:
                estimate = 2.0 * gamma ** index / (gamma + 1.0)
                return min(max(estimate, self._min), self._max)
        return self._max  # pragma: no cover - rank <= count-1 always lands

    def fraction_above(self, threshold: float) -> float:
        """Approximate fraction of observations strictly above ``threshold``.

        Buckets entirely above the threshold's bucket count fully; the
        threshold's own bucket counts as not-above (values there are
        within ``alpha`` of the threshold either way).
        """
        if self._count == 0:
            return 0.0
        if threshold < 0.0:
            return 1.0
        if threshold < MIN_TRACKABLE:
            above = self._count - self._zero_count
        else:
            boundary = math.ceil(math.log(threshold) * self._multiplier)
            # repro: allow[DET005] integer bucket counts: exact, order-independent addition
            above = sum(
                count for index, count in self._bins.items() if index > boundary
            )
        return above / self._count

    # -- merging -----------------------------------------------------------
    def merge(self, other: "DDSketch") -> "DDSketch":
        """A new sketch equivalent to seeing both streams.

        Bucket counts are integers, so the merge is exact: associative,
        commutative, and independent of the order shards complete in.

        Raises:
            ConfigurationError: if the sketches were built with different
                ``relative_error`` or ``max_bins`` (their buckets would
                not align).
        """
        if (
            self.relative_error != other.relative_error
            or self.max_bins != other.max_bins
        ):
            raise ConfigurationError(
                "cannot merge DDSketches with different parameters: "
                f"(alpha={self.relative_error}, max_bins={self.max_bins}) vs "
                f"(alpha={other.relative_error}, max_bins={other.max_bins})"
            )
        merged = DDSketch(self.relative_error, self.max_bins)
        merged._bins = dict(self._bins)
        # repro: allow[DET005] integer bucket counts merge exactly in any order
        for index, count in other._bins.items():
            merged._bins[index] = merged._bins.get(index, 0) + count
        if len(merged._bins) > merged.max_bins:
            merged._collapse()
        merged._zero_count = self._zero_count + other._zero_count
        merged._count = self._count + other._count
        merged._sum = self._sum + other._sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    # -- serialization -----------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """JSON-safe exact state; inverse of :meth:`from_state`.

        Floats survive a JSON round trip bit-for-bit (shortest-repr), so
        decode-then-merge equals merge-then-encode exactly.
        """
        bins: List[Tuple[int, int]] = sorted(self._bins.items())
        return {
            "relative_error": self.relative_error,
            "max_bins": self.max_bins,
            "count": self._count,
            "sum": self._sum,
            "zero_count": self._zero_count,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "bin_indices": [index for index, _ in bins],
            "bin_counts": [count for _, count in bins],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "DDSketch":
        """Rebuild a sketch from :meth:`to_state` output.

        Raises:
            ConfigurationError: on missing or inconsistent fields.
        """
        try:
            sketch = cls(
                relative_error=state["relative_error"],
                max_bins=state["max_bins"],
            )
            indices: Sequence[int] = state["bin_indices"]
            counts: Sequence[int] = state["bin_counts"]
            if len(indices) != len(counts):
                raise ConfigurationError(
                    "bin_indices and bin_counts lengths differ"
                )
            sketch._bins = {
                int(index): int(count) for index, count in zip(indices, counts)
            }
            sketch._zero_count = int(state["zero_count"])
            sketch._count = int(state["count"])
            sketch._sum = float(state["sum"])
            if sketch._count:
                sketch._min = float(state["min"])
                sketch._max = float(state["max"])
            return sketch
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"corrupt DDSketch state: {exc}") from exc
