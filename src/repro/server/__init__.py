"""Server-node simulation.

- :mod:`~repro.server.node` — the N-core latency-critical server: request
  dispatch, per-core queues, C-state lifecycle, turbo, snoops.
- :mod:`~repro.server.config` — the paper's named configurations
  (baseline, NT_Baseline, NT_No_C6, ..., AW variants).
- :mod:`~repro.server.metrics` — run results: residency, power, latency.
"""

from repro.server.config import ServerConfiguration, named_configuration, CONFIGURATION_NAMES
from repro.server.metrics import RunResult
from repro.server.node import ServerNode, simulate

__all__ = [
    "ServerConfiguration",
    "named_configuration",
    "CONFIGURATION_NAMES",
    "RunResult",
    "ServerNode",
    "simulate",
]
