"""Run results: the observables the paper's figures plot.

A :class:`RunResult` is what one simulated (workload, configuration,
request-rate) point yields: C-state residencies and transition counts
(Figs 8a, 9d, 12a/b, 13a/b), average core and package power (Figs 8b, 9c),
and average/tail latency, server-side and end-to-end (Figs 8c, 9a/b, 10,
11, 12c, 13c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simkit.stats import PercentileTracker


@dataclass
class RunResult:
    """Aggregated observables of one simulation run.

    Attributes:
        config_name: the named configuration simulated.
        workload_name: the service simulated.
        qps: offered aggregate request rate.
        horizon: simulated wall-clock seconds.
        cores: core count.
        residency: fraction of core-time per C-state name (averaged over
            cores; sums to ~1).
        transitions_per_second: per-core C-state entries per second.
        avg_core_power: average per-core power (RAPL-style integration).
        package_power: average socket power (cores + uncore).
        server_latency: per-request server-side latency tracker.
        completed: requests completed.
        turbo_grant_rate: fraction of busy-period starts granted Turbo.
        network_latency: constant network component for end-to-end views.
        node_detail: cluster runs only — one JSON-safe breakdown dict per
            node (residency, transitions, power, leaf latency); ``None``
            for single-node runs, so their records are unchanged.
        hedges_issued: cluster runs only — duplicate leaves issued by the
            hedged-request timer.
        events_processed: perf counter — simulation events executed by
            the engine during the run (cluster runs share one simulator,
            so the cluster result carries the fleet-wide count).
        peak_pending_events: perf counter — high-water mark of the event
            heap; the memory bound streaming event sources maintain.
        timeline: telemetry runs only — the JSON-safe simulated-time
            series dict sampled by :class:`~repro.obs.timeline.
            TimelineSampler` (``None`` unless ``telemetry_hz`` was set,
            so untracked results and their records are unchanged).
    """

    config_name: str
    workload_name: str
    qps: float
    horizon: float
    cores: int
    residency: Dict[str, float]
    transitions_per_second: Dict[str, float]
    avg_core_power: float
    package_power: float
    server_latency: PercentileTracker
    completed: int
    turbo_grant_rate: float
    network_latency: float
    snoops_served: int = 0
    node_detail: Optional[List[Dict[str, object]]] = None
    hedges_issued: int = 0
    events_processed: int = 0
    peak_pending_events: int = 0
    timeline: Optional[Dict[str, object]] = None

    # -- latency views ------------------------------------------------------
    @property
    def avg_latency(self) -> float:
        """Average server-side latency (seconds)."""
        return self.server_latency.mean

    @property
    def tail_latency(self) -> float:
        """p99 server-side latency (seconds)."""
        return self.server_latency.p99

    @property
    def avg_latency_e2e(self) -> float:
        """Average end-to-end latency (network + server side)."""
        return self.network_latency + self.avg_latency

    @property
    def tail_latency_e2e(self) -> float:
        return self.network_latency + self.tail_latency

    # -- throughput ------------------------------------------------------------
    @property
    def achieved_qps(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.completed / self.horizon

    @property
    def utilization(self) -> float:
        """C0 residency — the fraction of core-time doing work."""
        return self.residency.get("C0", 0.0)

    def residency_of(self, name: str) -> float:
        return self.residency.get(name, 0.0)

    # -- structured output --------------------------------------------------
    # -- perf counters ------------------------------------------------------
    @property
    def events_per_request(self) -> float:
        """Simulation events per completed request — the work-per-outcome
        ratio ``sweep --emit perf`` consumers normalise wall time by."""
        if self.completed <= 0:
            return 0.0
        return self.events_processed / self.completed

    def to_record(self, detail: bool = True) -> Dict[str, object]:
        """Flat JSON-safe record of this run's observables.

        The headline metrics are always present; ``detail`` adds the
        C-state ``residency`` fractions and per-core
        ``transitions_per_second`` dicts (key-sorted for stable output).
        This is the canonical record shape of the Experiment API and of
        ``repro sweep --emit residency``.
        """
        record: Dict[str, object] = {
            "workload": self.workload_name,
            "config": self.config_name,
            "qps": self.qps,
            "horizon": self.horizon,
            "cores": self.cores,
            "completed": self.completed,
            "achieved_qps": self.achieved_qps,
            "avg_core_power": self.avg_core_power,
            "package_power": self.package_power,
            "avg_latency": self.avg_latency,
            "p99_latency": self.tail_latency,
            "avg_latency_e2e": self.avg_latency_e2e,
            "p99_latency_e2e": self.tail_latency_e2e,
            "turbo_grant_rate": self.turbo_grant_rate,
            "snoops_served": self.snoops_served,
        }
        if self.server_latency.sketch_error is not None:
            # Sketch-backed runs label their latency figures with the
            # relative-error guarantee; exact records keep their shape.
            record["latency_sketch_error"] = self.server_latency.sketch_error
        if self.node_detail is not None:
            # Cluster runs only, so single-node records keep their shape.
            record["nodes"] = len(self.node_detail)
            record["hedges_issued"] = self.hedges_issued
        if detail:
            record["residency"] = {
                k: v for k, v in sorted(self.residency.items())
            }
            record["transitions_per_second"] = {
                k: v for k, v in sorted(self.transitions_per_second.items())
            }
            if self.node_detail is not None:
                record["node_detail"] = self.node_detail
        return record

    def summary(self) -> str:
        from repro.units import pretty_power, pretty_time

        parts = [
            f"{self.workload_name}/{self.config_name} @ {self.qps:.0f} QPS:",
            f"power/core {pretty_power(self.avg_core_power)}",
            f"pkg {pretty_power(self.package_power)}",
            f"avg {pretty_time(self.avg_latency)}",
            f"p99 {pretty_time(self.tail_latency)}",
            "residency "
            + " ".join(f"{k}={v * 100:.0f}%" for k, v in sorted(self.residency.items())),
        ]
        return "  ".join(parts)


def compare_power(baseline: RunResult, other: RunResult) -> float:
    """Fractional average-core-power reduction of ``other`` vs baseline."""
    if baseline.avg_core_power <= 0:
        return 0.0
    return (baseline.avg_core_power - other.avg_core_power) / baseline.avg_core_power


def compare_latency(baseline: RunResult, other: RunResult, tail: bool = False) -> float:
    """Fractional latency reduction of ``other`` vs baseline (server side).

    Positive means ``other`` is faster.
    """
    base = baseline.tail_latency if tail else baseline.avg_latency
    new = other.tail_latency if tail else other.avg_latency
    if base <= 0:
        return 0.0
    return (base - new) / base
