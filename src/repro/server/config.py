"""Named server configurations (the paper's tuned BIOS variants).

The evaluation compares the baseline (P-states disabled, Turbo and all
C-states enabled) against vendor-recommended tunings that successively
disable Turbo, C6 and C1E (Sec 7.2), plus Turbo-enabled variants
(Sec 7.3), and the AgileWatts variants where C6A/C6AE replace C1/C1E.

Naming follows the paper: ``NT_`` prefixes mean "No Turbo"; ``T_`` means
Turbo enabled; ``No_C6``/``No_C1E`` are BIOS C-state disables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import CStateCatalog, skylake_baseline_catalog
from repro.errors import ConfigurationError


@dataclass
class ServerConfiguration:
    """Everything that distinguishes one evaluated configuration.

    Attributes:
        name: the paper's configuration name.
        catalog: the C-state hierarchy (with BIOS disables applied).
        turbo_enabled: whether Turbo Boost may be granted.
        frequency_derate: fmax loss applied to service times (AW's ~1%
            power-gate penalty; 0 for the baseline hierarchy).
        is_agilewatts: True for catalogs containing C6A/C6AE.
    """

    name: str
    catalog: CStateCatalog
    turbo_enabled: bool
    frequency_derate: float = 0.0
    is_agilewatts: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.frequency_derate < 0.1:
            raise ConfigurationError("frequency derate expected to be < 10%")


def _aw_catalog(design: Optional[AgileWattsDesign], keep_c6: bool) -> CStateCatalog:
    design = design if design is not None else AgileWattsDesign()
    return design.catalog(keep_c6=keep_c6)


def named_configuration(
    name: str, design: Optional[AgileWattsDesign] = None
) -> ServerConfiguration:
    """Build one of the paper's named configurations.

    Supported names:

    - ``baseline``: P-states off, Turbo on, all C-states on (Sec 7.1).
    - ``NT_Baseline``: Turbo off, all C-states on.
    - ``NT_No_C6``: Turbo off, C6 off.
    - ``NT_No_C6_No_C1E``: Turbo off, C6 and C1E off.
    - ``T_No_C6`` / ``T_No_C6_No_C1E``: as above with Turbo on.
    - ``AW``: AW hierarchy (C6A/C6AE/C6), Turbo on — the Sec 7.1 AW point.
    - ``NT_AW``: AW hierarchy, Turbo off.
    - ``T_C6A_No_C6_No_C1E`` / ``NT_C6A_No_C6_No_C1E``: only C6A enabled
      (the Sec 7.3 green-line configurations).
    - ``AW_No_C6``: C6A/C6AE without legacy C6 (Figs 12/13 comparison).

    Raises:
        ConfigurationError: for unknown names.
    """
    derate = None
    if name == "baseline":
        return ServerConfiguration(name, skylake_baseline_catalog(), turbo_enabled=True)
    if name == "NT_Baseline":
        return ServerConfiguration(name, skylake_baseline_catalog(), turbo_enabled=False)
    if name == "NT_No_C6":
        catalog = skylake_baseline_catalog().disable("C6")
        return ServerConfiguration(name, catalog, turbo_enabled=False)
    if name == "NT_No_C6_No_C1E":
        catalog = skylake_baseline_catalog().disable("C6", "C1E")
        return ServerConfiguration(name, catalog, turbo_enabled=False)
    if name == "T_No_C6":
        catalog = skylake_baseline_catalog().disable("C6")
        return ServerConfiguration(name, catalog, turbo_enabled=True)
    if name == "T_No_C6_No_C1E":
        catalog = skylake_baseline_catalog().disable("C6", "C1E")
        return ServerConfiguration(name, catalog, turbo_enabled=True)
    if name == "T_Baseline_No_C1E":
        # The Fig 12/13 baseline: C1 and C6 enabled (no C1E), Turbo on.
        catalog = skylake_baseline_catalog().disable("C1E")
        return ServerConfiguration(name, catalog, turbo_enabled=True)

    aw_design = design if design is not None else AgileWattsDesign()
    derate = aw_design.frequency_penalty
    if name == "AW":
        return ServerConfiguration(
            name, _aw_catalog(aw_design, keep_c6=True), turbo_enabled=True,
            frequency_derate=derate, is_agilewatts=True,
        )
    if name == "NT_AW":
        return ServerConfiguration(
            name, _aw_catalog(aw_design, keep_c6=True), turbo_enabled=False,
            frequency_derate=derate, is_agilewatts=True,
        )
    if name == "AW_No_C6":
        return ServerConfiguration(
            name, _aw_catalog(aw_design, keep_c6=False), turbo_enabled=True,
            frequency_derate=derate, is_agilewatts=True,
        )
    if name == "T_C6A_No_C6_No_C1E":
        catalog = _aw_catalog(aw_design, keep_c6=False).disable("C6AE")
        return ServerConfiguration(
            name, catalog, turbo_enabled=True,
            frequency_derate=derate, is_agilewatts=True,
        )
    if name == "NT_C6A_No_C6_No_C1E":
        catalog = _aw_catalog(aw_design, keep_c6=False).disable("C6AE")
        return ServerConfiguration(
            name, catalog, turbo_enabled=False,
            frequency_derate=derate, is_agilewatts=True,
        )
    raise ConfigurationError(
        f"unknown configuration {name!r}; choose from {CONFIGURATION_NAMES}"
    )


CONFIGURATION_NAMES: List[str] = [
    "baseline",
    "NT_Baseline",
    "NT_No_C6",
    "NT_No_C6_No_C1E",
    "T_No_C6",
    "T_No_C6_No_C1E",
    "T_Baseline_No_C1E",
    "AW",
    "NT_AW",
    "AW_No_C6",
    "T_C6A_No_C6_No_C1E",
    "NT_C6A_No_C6_No_C1E",
]
