"""The simulated latency-critical server.

One :class:`ServerNode` models the paper's testbed server: N cores
(10 physical per socket on the Xeon Silver 4114), an open-loop request
stream dispatched across them, per-core FIFO queues (the paper pins
service threads to cores), an idle governor per core, a shared turbo
budget, and background snoop traffic.

Core lifecycle (per core)::

    ACTIVE ──queue empties──> ENTERING ──entry done──> IDLE (Cx)
      ^                                                   │
      └── WAKING <─────────── arrival (pays exit latency) ┘

Arrivals during ENTERING must first let the entry complete, then pay the
exit latency — the worst case the paper's Fig 8c "worst case" curve
charges on every query. Request latency is measured server-side
(completion - arrival) with the constant network component added for
end-to-end views.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional

from repro.core.cstates import CState, FrequencyPoint
from repro.errors import ConfigurationError, SimulationError
from repro.governor.idle import IdleGovernor, MenuGovernor
from repro.server.config import ServerConfiguration
from repro.server.metrics import RunResult
from repro.simkit.engine import Simulator
from repro.simkit.stats import PercentileTracker
from repro.simkit.trace import NULL_TRACE, TraceRecorder
from repro.uarch.coherence import SnoopModel, SnoopTrafficGenerator
from repro.uarch.core import Core
from repro.uarch.package import Package, PackageConfig
from repro.uarch.turbo import TurboBudget, TurboConfig
from repro.workloads.base import Workload
from repro.workloads.loadgen import ArrivalStream, LoadGenerator, OpenLoopPoisson


class CoreMode(Enum):
    ACTIVE = "active"
    ENTERING = "entering"
    IDLE = "idle"
    WAKING = "waking"


@dataclass
class _Request:
    arrival: float
    #: Cluster hook: called with the completion time when the request
    #: finishes service (see :meth:`ServerNode.inject`).
    on_complete: Optional[Callable[[float], None]] = None


class _CoreRuntime:
    """Mutable per-core simulation state."""

    __slots__ = (
        "core", "queue", "governor", "mode", "busy", "idle_since",
        "wake_pending", "snoop_token", "entry_event",
    )

    def __init__(self, core: Core, governor: IdleGovernor):
        self.core = core
        self.queue: Deque[_Request] = deque()
        self.governor = governor
        self.mode = CoreMode.ACTIVE
        self.busy = False
        self.idle_since = 0.0
        self.wake_pending = False
        self.snoop_token = 0
        self.entry_event = None


class ServerNode:
    """Event-driven model of one latency-critical server."""

    def __init__(
        self,
        workload: Workload,
        configuration: ServerConfiguration,
        qps: float,
        cores: int = 10,
        horizon: float = 0.5,
        seed: int = 42,
        uncore_watts: float = 38.0,
        snoops_enabled: bool = True,
        turbo_config: Optional[TurboConfig] = None,
        governor_factory=None,
        trace: Optional[TraceRecorder] = None,
        sim: Optional[Simulator] = None,
        external_arrivals: bool = False,
    ):
        if cores <= 0:
            raise ConfigurationError("need at least one core")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.workload = workload
        self.configuration = configuration
        self.qps = qps
        self.n_cores = cores
        self.horizon = horizon
        self.seed = seed
        #: A cluster passes its shared simulator so K nodes advance one
        #: clock; standalone nodes own a private one.
        self.sim = sim if sim is not None else Simulator()
        #: When True the node never arms its own load generator: requests
        #: arrive solely through :meth:`inject` (cluster dispatch).
        self.external_arrivals = external_arrivals
        self._dispatch_rng = random.Random(seed)
        self._loadgen: LoadGenerator = OpenLoopPoisson(qps, seed=seed + 1)

        catalog = configuration.catalog
        make_governor = governor_factory or (lambda: MenuGovernor())
        self._runtimes: List[_CoreRuntime] = [
            _CoreRuntime(Core(i, catalog), make_governor()) for i in range(cores)
        ]
        self.package = Package(
            [rt.core for rt in self._runtimes],
            PackageConfig(cores=cores, uncore_watts=uncore_watts),
            turbo=TurboBudget(turbo_config or TurboConfig(), enabled=configuration.turbo_enabled),
        )
        self.snoop_model = SnoopModel()
        self._snoops_enabled = snoops_enabled and workload.snoop_rate_hz > 0
        self._snoop_gens = [
            SnoopTrafficGenerator(workload.snoop_rate_hz, seed=seed + 100 + i)
            for i in range(cores)
        ]
        self.latency = PercentileTracker()
        self.completed = 0
        self.snoops_served = 0
        #: Requests accepted but not yet finished (queued + in service);
        #: the load signal cluster balancers read.
        self.in_flight = 0
        self.trace = trace if trace is not None else NULL_TRACE

    # -- wiring ------------------------------------------------------------
    def _schedule_arrivals(self) -> None:
        """Arm the lazy arrival stream (see :class:`ArrivalStream`): the
        heap holds O(cores + in-flight) events instead of O(qps * horizon).

        The stream is built here, not in ``__init__``, so a
        ``_loadgen`` swapped in before :meth:`run` (tests exercising
        misbehaving generators do this) takes effect.
        """
        ArrivalStream(
            self.sim, self._loadgen, self.horizon, self._on_arrival
        ).start()

    def _arm_snoops(self) -> None:
        if not self._snoops_enabled:
            return
        for idx in range(self.n_cores):
            self._schedule_next_snoop(idx)

    def _schedule_next_snoop(self, idx: int) -> None:
        delay = self._snoop_gens[idx].next_arrival_delay()
        if delay is None:
            return
        when = self.sim.now + delay
        if when >= self.horizon:
            return
        self.sim.schedule_at(when, lambda: self._on_snoop(idx), label=f"snoop{idx}")

    # -- request path ------------------------------------------------------------
    def inject(self, on_complete: Optional[Callable[[float], None]] = None) -> None:
        """Accept one externally-generated request at the current sim time.

        Cluster dispatchers call this instead of the node's own load
        generator; ``on_complete(completion_time)`` fires when the request
        finishes service (never for requests still in flight at the
        horizon, which — as in the standalone node — simply don't count).
        """
        self._on_arrival(self.sim.now, on_complete)

    def _on_arrival(
        self,
        arrival: float,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        idx = self._dispatch_rng.randrange(self.n_cores)
        rt = self._runtimes[idx]
        self.in_flight += 1
        rt.queue.append(_Request(arrival, on_complete))
        if rt.mode is CoreMode.ACTIVE and not rt.busy:
            self._start_service(rt)
        elif rt.mode is CoreMode.IDLE:
            self._begin_wake(rt)
        elif rt.mode is CoreMode.ENTERING:
            rt.wake_pending = True
        # WAKING: the pending wake will drain the queue.

    def _start_service(self, rt: _CoreRuntime) -> None:
        if rt.busy or not rt.queue:
            raise SimulationError("invalid service start")
        rt.busy = True
        request = rt.queue.popleft()
        service_time = self.workload.service.sample(
            frequency=rt.core.frequency,
            frequency_derate=self.configuration.frequency_derate,
        )
        self.sim.schedule(
            service_time, lambda: self._finish_service(rt, request), label="finish"
        )

    def _finish_service(self, rt: _CoreRuntime, request: _Request) -> None:
        self.latency.add(self.sim.now - request.arrival)
        self.completed += 1
        self.in_flight -= 1
        if request.on_complete is not None:
            # Fire while the core still reads busy, so a callback that
            # synchronously injects back into this node queues safely.
            request.on_complete(self.sim.now)
        rt.busy = False
        if rt.queue:
            self._start_service(rt)
        else:
            self._go_idle(rt)

    # -- idle path -----------------------------------------------------------------
    def _go_idle(self, rt: _CoreRuntime) -> None:
        state = rt.governor.choose(self.configuration.catalog)
        rt.mode = CoreMode.ENTERING
        rt.idle_since = self.sim.now
        rt.wake_pending = False
        rt.entry_event = self.sim.schedule(
            state.entry_latency,
            lambda: self._entry_complete(rt, state),
            label="entry",
        )

    def _entry_complete(self, rt: _CoreRuntime, state: CState) -> None:
        rt.core.enter_idle(self.sim.now, state)
        self.package.turbo.update(self.sim.now, self.package.package_power)
        rt.mode = CoreMode.IDLE
        self.trace.record(
            self.sim.now, f"core{rt.core.core_id}", "enter_idle", state.name
        )
        if rt.wake_pending or rt.queue:
            self._begin_wake(rt)

    def _begin_wake(self, rt: _CoreRuntime) -> None:
        if rt.mode is not CoreMode.IDLE:
            raise SimulationError(f"cannot wake core in mode {rt.mode}")
        rt.governor.observe_idle(self.sim.now - rt.idle_since)
        rt.snoop_token += 1  # invalidate in-flight snoop service
        self.trace.record(
            self.sim.now, f"core{rt.core.core_id}", "wake", rt.core.state.name
        )
        exit_latency = rt.core.wake(self.sim.now)
        frequency = self.package.turbo.frequency_for_burst(
            self.sim.now, self.package.package_power
        )
        rt.core.set_frequency(self.sim.now, frequency)
        rt.mode = CoreMode.WAKING
        self.sim.schedule(exit_latency, lambda: self._wake_complete(rt), label="wake")

    def _wake_complete(self, rt: _CoreRuntime) -> None:
        rt.mode = CoreMode.ACTIVE
        if rt.queue and not rt.busy:
            self._start_service(rt)
        elif not rt.queue:
            # Spurious wake (race with service completion): go back idle.
            self._go_idle(rt)

    # -- snoop path -----------------------------------------------------------------
    def _on_snoop(self, idx: int) -> None:
        rt = self._runtimes[idx]
        state = rt.core.state
        if rt.mode is CoreMode.IDLE and self.snoop_model.sees_snoops(state.name):
            delta = self.snoop_model.power_delta_for(state.name)
            rt.core.begin_snoop_service(self.sim.now, delta)
            token = rt.snoop_token
            duration = self.snoop_model.service_time + state.snoop_wake_overhead
            self.sim.schedule(
                duration, lambda: self._end_snoop(rt, token), label="snoop_end"
            )
            self.snoops_served += 1
            self.trace.record(
                self.sim.now, f"core{rt.core.core_id}", "snoop", state.name
            )
        self._schedule_next_snoop(idx)

    def _end_snoop(self, rt: _CoreRuntime, token: int) -> None:
        # A wake may have raced us; only restore idle power if still idle.
        if rt.mode is CoreMode.IDLE and rt.snoop_token == token:
            rt.core.end_snoop_service(self.sim.now)

    # -- run ------------------------------------------------------------------------
    def start(self) -> None:
        """Arm this node's event sources on its simulator.

        Standalone nodes arm the arrival stream and snoop traffic; nodes
        embedded in a cluster (``external_arrivals=True``) arm snoops
        only — logical arrivals reach them through :meth:`inject`.
        """
        if not self.external_arrivals:
            self._schedule_arrivals()
        self._arm_snoops()

    def run(self) -> RunResult:
        """Simulate the full horizon and aggregate the observables."""
        self.start()
        self.sim.run(until=self.horizon)
        return self.collect()

    def collect(self) -> RunResult:
        """Aggregate the observables after the simulator has run."""
        residency: Dict[str, float] = {}
        transitions: Dict[str, float] = {}
        energy = 0.0
        for rt in self._runtimes:
            stats = rt.core.snapshot(self.horizon)
            for name, seconds in stats.residency_seconds.items():
                residency[name] = residency.get(name, 0.0) + seconds
            for name, count in stats.transitions.items():
                transitions[name] = transitions.get(name, 0.0) + count
            energy += stats.energy_joules

        total_core_time = self.horizon * self.n_cores
        residency = {k: v / total_core_time for k, v in residency.items()}
        transitions_ps = {
            k: v / (self.horizon * self.n_cores) for k, v in transitions.items()
        }
        avg_core_power = energy / total_core_time
        package_power = (
            avg_core_power * self.n_cores + self.package.config.uncore_watts
        )
        return RunResult(
            config_name=self.configuration.name,
            workload_name=self.workload.name,
            qps=self.qps,
            horizon=self.horizon,
            cores=self.n_cores,
            residency=residency,
            transitions_per_second=transitions_ps,
            avg_core_power=avg_core_power,
            package_power=package_power,
            server_latency=self.latency,
            completed=self.completed,
            turbo_grant_rate=self.package.turbo.grant_rate,
            network_latency=self.workload.network_latency,
            snoops_served=self.snoops_served,
        )


def simulate(
    workload: Workload,
    configuration: ServerConfiguration,
    qps: float,
    cores: int = 10,
    horizon: float = 0.5,
    seed: int = 42,
    **kwargs,
) -> RunResult:
    """One-call convenience wrapper: build a node and run it."""
    node = ServerNode(
        workload=workload,
        configuration=configuration,
        qps=qps,
        cores=cores,
        horizon=horizon,
        seed=seed,
        **kwargs,
    )
    return node.run()
