"""The simulated latency-critical server.

One :class:`ServerNode` models the paper's testbed server: N cores
(10 physical per socket on the Xeon Silver 4114), an open-loop request
stream dispatched across them, per-core FIFO queues (the paper pins
service threads to cores), an idle governor per core, a shared turbo
budget, and background snoop traffic.

Core lifecycle (per core)::

    ACTIVE ──queue empties──> ENTERING ──entry done──> IDLE (Cx)
      ^                                                   │
      └── WAKING <─────────── arrival (pays exit latency) ┘

Arrivals during ENTERING must first let the entry complete, then pay the
exit latency — the worst case the paper's Fig 8c "worst case" curve
charges on every query. Request latency is measured server-side
(completion - arrival) with the constant network component added for
end-to-end views.

Hot-path discipline: the per-event code allocates nothing beyond the
engine's heap entry — callbacks are prebound per core at construction,
requests are recycled through a free list, and scheduling goes through
:meth:`~repro.simkit.engine.Simulator.schedule_fast` (service
completions, C-state entries and wakes are never cancelled). The
``fast_path=False`` reference mode routes the same call sites through the
original Event-allocating scheduler so the golden bit-identity tests can
replay both and compare.
"""

from __future__ import annotations

import random
from collections import deque
from enum import Enum
from functools import partial
from typing import Callable, Deque, Dict, List, Optional

from repro.core.cstates import CState
from repro.errors import ConfigurationError, SimulationError
from repro.governor.idle import IdleGovernor, MenuGovernor
from repro.server.config import ServerConfiguration
from repro.server.metrics import RunResult
from repro.simkit import sanitizer as _sanitizer
from repro.simkit.engine import Simulator
from repro.simkit.stats import PercentileTracker
from repro.simkit.trace import NULL_TRACE, TraceRecorder
from repro.uarch.coherence import SnoopModel, SnoopTrafficGenerator
from repro.uarch.core import INV_POWER_SCALE as _INV_POWER_SCALE
from repro.uarch.core import Core
from repro.uarch.package import Package, PackageConfig
from repro.uarch.turbo import TurboBudget, TurboConfig
from repro.workloads.base import Workload
from repro.workloads.loadgen import ArrivalStream, LoadGenerator, OpenLoopPoisson


class CoreMode(Enum):
    ACTIVE = "active"
    ENTERING = "entering"
    IDLE = "idle"
    WAKING = "waking"


# Module-level aliases: the mode tests in the arrival/wake handlers are
# identity comparisons, and a global load is cheaper than an Enum class
# attribute lookup at millions of events.
_ACTIVE = CoreMode.ACTIVE
_ENTERING = CoreMode.ENTERING
_IDLE = CoreMode.IDLE
_WAKING = CoreMode.WAKING


class _Request:
    """One in-flight request. Instances are recycled via the node's free
    list, so a steady-state run allocates O(max in-flight) of them total
    rather than one per arrival."""

    __slots__ = ("arrival", "on_complete", "trace_id")

    def __init__(self, arrival: float = 0.0,
                 on_complete: Optional[Callable[[float], None]] = None):
        self.arrival = arrival
        #: Cluster hook: called with the completion time when the request
        #: finishes service (see :meth:`ServerNode.inject`).
        self.on_complete = on_complete
        #: Span id for trace export; only written inside ``trace.enabled``
        #: branches (stale values on recycled requests are never read).
        self.trace_id = 0


class _CoreRuntime:
    """Mutable per-core simulation state."""

    __slots__ = (
        "core", "queue", "governor", "mode", "busy", "idle_since",
        "wake_pending", "snoop_token", "in_service", "entering_state",
        "finish_cb", "entry_cb", "wake_cb", "snoop_cb",
    )

    def __init__(self, core: Core, governor: IdleGovernor):
        self.core = core
        self.queue: Deque[_Request] = deque()
        self.governor = governor
        self.mode = _ACTIVE
        self.busy = False
        self.idle_since = 0.0
        self.wake_pending = False
        self.snoop_token = 0
        #: Request currently in service (cores serve one at a time), read
        #: back by the prebound finish callback.
        self.in_service: Optional[_Request] = None
        #: C-state chosen by the governor for the in-flight entry, read
        #: back by the prebound entry-complete callback.
        self.entering_state: Optional[CState] = None
        # Prebound per-core event callbacks (set by the node) — scheduling
        # a service completion, C-state entry or wake allocates no closure.
        self.finish_cb: Callable[[], None] = None
        self.entry_cb: Callable[[], None] = None
        self.wake_cb: Callable[[], None] = None
        self.snoop_cb: Callable[[], None] = None


class ServerNode:
    """Event-driven model of one latency-critical server.

    ``fast_path`` selects the allocation-free scheduling path (the
    default). ``False`` replays the identical event sequence through the
    cancellable :class:`~repro.simkit.engine.Event` path — slower, used
    by the bit-identity tests as the reference.
    """

    def __init__(
        self,
        workload: Workload,
        configuration: ServerConfiguration,
        qps: float,
        cores: int = 10,
        horizon: float = 0.5,
        seed: int = 42,
        uncore_watts: float = 38.0,
        snoops_enabled: bool = True,
        turbo_config: Optional[TurboConfig] = None,
        governor_factory=None,
        trace: Optional[TraceRecorder] = None,
        sim: Optional[Simulator] = None,
        external_arrivals: bool = False,
        fast_path: bool = True,
        sketch_error: Optional[float] = None,
        loadgen: Optional[LoadGenerator] = None,
        telemetry_hz: Optional[float] = None,
    ):
        if cores <= 0:
            raise ConfigurationError("need at least one core")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.workload = workload
        self.configuration = configuration
        self.qps = qps
        self.n_cores = cores
        self.horizon = horizon
        self.seed = seed
        #: A cluster passes its shared simulator so K nodes advance one
        #: clock; standalone nodes own a private one.
        self.sim = sim if sim is not None else Simulator()
        #: When True the node never arms its own load generator: requests
        #: arrive solely through :meth:`inject` (cluster dispatch).
        self.external_arrivals = external_arrivals
        self.fast_path = fast_path
        # One call-site indirection selects the scheduling path: both
        # consume (delay/time, callback) in the same order, so sequence
        # numbers — and therefore event order — are identical.
        if fast_path:
            self._sched = self.sim.schedule_fast
            self._sched_at = self.sim.schedule_at_fast
        else:
            self._sched = self.sim.schedule
            self._sched_at = self.sim.schedule_at
        self._dispatch_rng = random.Random(seed)
        # Core dispatch replicates Random._randbelow_with_getrandbits
        # inline (draw cores.bit_length() bits, reject >= cores): the
        # identical bit stream randrange(cores) consumes, without the two
        # Python frames per arrival. Guarded by the golden digest tests.
        self._getrandbits = self._dispatch_rng.getrandbits
        self._core_bits = cores.bit_length()
        # An explicit loadgen overrides the default Poisson stream (the
        # sharded round-robin path feeds Erlang-thinned arrivals here);
        # the default keeps the seed + 1 derivation bit-identical.
        self._loadgen: LoadGenerator = (
            loadgen if loadgen is not None else OpenLoopPoisson(qps, seed=seed + 1)
        )
        self._sample_service = workload.service.sample
        self._frequency_derate = configuration.frequency_derate

        catalog = configuration.catalog
        self._catalog = catalog
        make_governor = governor_factory or (lambda: MenuGovernor())
        self._runtimes: List[_CoreRuntime] = [
            _CoreRuntime(Core(i, catalog), make_governor()) for i in range(cores)
        ]
        for index, runtime in enumerate(self._runtimes):
            # functools.partial dispatches at C level: firing one of these
            # costs a single Python frame (the handler itself).
            runtime.finish_cb = partial(self._finish_service, runtime)
            runtime.entry_cb = partial(self._entry_complete, runtime)
            runtime.wake_cb = partial(self._wake_complete, runtime)
            runtime.snoop_cb = partial(self._on_snoop, index)
        self.package = Package(
            [rt.core for rt in self._runtimes],
            PackageConfig(cores=cores, uncore_watts=uncore_watts),
            turbo=TurboBudget(turbo_config or TurboConfig(), enabled=configuration.turbo_enabled),
            incremental=fast_path,
        )
        self.snoop_model = SnoopModel()
        self._snoops_enabled = snoops_enabled and workload.snoop_rate_hz > 0
        self._snoop_gens = [
            SnoopTrafficGenerator(workload.snoop_rate_hz, seed=seed + 100 + i)
            for i in range(cores)
        ]
        # sketch_error=None keeps exact percentiles (the default for all
        # single-node paths); a float selects the bounded-memory
        # mergeable DDSketch backend for fleet-scale runs.
        self.latency = PercentileTracker(sketch_error=sketch_error)
        self._latency_add = self.latency.add
        self.completed = 0
        self.snoops_served = 0
        #: Requests accepted but not yet finished (queued + in service);
        #: the load signal cluster balancers read.
        self.in_flight = 0
        self.trace = trace if trace is not None else NULL_TRACE
        #: Monotone id stamped on traced requests (advanced only inside
        #: ``trace.enabled`` branches, so untraced runs never touch it).
        self._trace_seq = 0
        #: Telemetry sampling rate in simulated Hz. Only standalone nodes
        #: (which own their simulator) arm a sampler in :meth:`run`;
        #: cluster-embedded nodes are sampled by the cluster's sampler on
        #: the shared simulator.
        self.telemetry_hz = telemetry_hz
        #: Recycled :class:`_Request` instances.
        self._request_pool: List[_Request] = []
        san = self.sim.sanitizer
        if san is not None:
            # SAN002: the free list rejects double-frees. SAN003: the
            # periodic audit re-sums core power against the fixed-point
            # accumulator. Both only exist under REPRO_SANITIZE, so the
            # unsanitized hot path keeps the plain list and zero audits.
            self._request_pool = _sanitizer.CheckedFreeList()
            san.add_audit(self._audit_package_power)
        self._pool_append = self._request_pool.append
        self._turbo = self.package.turbo

    def _audit_package_power(self) -> None:
        """SAN003 deep audit: fixed-point accumulator vs full re-sum.

        The accumulator is exact (integer deltas in 2**-80 W units), so
        the tolerance only covers the float summation order of the
        reference sum — any real dropped or double-counted delta is
        orders of magnitude above it.
        """
        reference = 0.0
        for core in self.package.cores:
            reference += core.current_power
        incremental = self.package._core_power_int * _INV_POWER_SCALE
        bound = 1e-9 * max(1.0, abs(reference))
        if abs(incremental - reference) > bound:
            raise _sanitizer.violation(
                "SAN003", "uarch.package",
                f"incremental core power {incremental!r} W differs from "
                f"the re-summed reference {reference!r} W beyond the "
                f"documented bound ({bound:.3e} W): a power delta was "
                "dropped or double-counted",
            )

    # -- wiring ------------------------------------------------------------
    def _schedule_arrivals(self) -> None:
        """Arm the lazy arrival stream (see :class:`ArrivalStream`): the
        heap holds O(cores + in-flight) events instead of O(qps * horizon).

        The stream is built here, not in ``__init__``, so a
        ``_loadgen`` swapped in before :meth:`run` (tests exercising
        misbehaving generators do this) takes effect.
        """
        ArrivalStream(
            self.sim, self._loadgen, self.horizon, self._on_arrival,
            fast_path=self.fast_path,
        ).start()

    def _arm_snoops(self) -> None:
        if not self._snoops_enabled:
            return
        for idx in range(self.n_cores):
            self._schedule_next_snoop(idx)

    def _schedule_next_snoop(self, idx: int) -> None:
        delay = self._snoop_gens[idx].next_arrival_delay()
        if delay is None:
            return
        when = self.sim.now + delay
        if when >= self.horizon:
            return
        self._sched_at(when, self._runtimes[idx].snoop_cb)

    # -- request path ------------------------------------------------------------
    def inject(self, on_complete: Optional[Callable[[float], None]] = None) -> None:
        """Accept one externally-generated request at the current sim time.

        Cluster dispatchers call this instead of the node's own load
        generator; ``on_complete(completion_time)`` fires when the request
        finishes service (never for requests still in flight at the
        horizon, which — as in the standalone node — simply don't count).
        """
        self._on_arrival(self.sim.now, on_complete)

    def _on_arrival(
        self,
        arrival: float,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        n_cores = self.n_cores
        index = self._getrandbits(self._core_bits)
        while index >= n_cores:
            index = self._getrandbits(self._core_bits)
        rt = self._runtimes[index]
        self.in_flight += 1
        pool = self._request_pool
        if pool:
            request = pool.pop()
            request.arrival = arrival
            request.on_complete = on_complete
        else:
            request = _Request(arrival, on_complete)
        trace = self.trace
        if trace.enabled:
            span = self._trace_seq
            self._trace_seq = span + 1
            request.trace_id = span
            trace.record(arrival, f"core{index}", "arrival", span)
        rt.queue.append(request)
        mode = rt.mode
        if mode is _ACTIVE:
            if not rt.busy:
                self._start_service(rt)
        elif mode is _IDLE:
            self._begin_wake(rt)
        elif mode is _ENTERING:
            rt.wake_pending = True
        # WAKING: the pending wake will drain the queue.

    def _start_service(self, rt: _CoreRuntime) -> None:
        if rt.busy or not rt.queue:
            raise SimulationError("invalid service start")
        rt.busy = True
        rt.in_service = rt.queue.popleft()
        service_time = self._sample_service(
            rt.core.frequency, self._frequency_derate
        )
        self._sched(service_time, rt.finish_cb)

    def _finish_service(self, rt: _CoreRuntime) -> None:
        request = rt.in_service
        rt.in_service = None
        arrival = request.arrival
        on_complete = request.on_complete
        request.on_complete = None
        now = self.sim.now
        trace = self.trace
        if trace.enabled:
            trace.record(
                now, f"core{rt.core.core_id}", "complete", request.trace_id
            )
        self._pool_append(request)
        self._latency_add(now - arrival)
        self.completed += 1
        self.in_flight -= 1
        if on_complete is not None:
            # Fire while the core still reads busy, so a callback that
            # synchronously injects back into this node queues safely.
            on_complete(now)
        rt.busy = False
        if rt.queue:
            self._start_service(rt)
        else:
            self._go_idle(rt)

    # -- idle path -----------------------------------------------------------------
    def _go_idle(self, rt: _CoreRuntime) -> None:
        state = rt.governor.choose(self._catalog)
        rt.mode = _ENTERING
        rt.idle_since = self.sim.now
        rt.wake_pending = False
        rt.entering_state = state
        self._sched(state.entry_latency, rt.entry_cb)

    def _entry_complete(self, rt: _CoreRuntime) -> None:
        state = rt.entering_state
        now = self.sim.now
        rt.core.enter_idle(now, state)
        self._turbo.update(now, self.package.package_power)
        rt.mode = _IDLE
        trace = self.trace
        if trace.enabled:
            trace.record(now, f"core{rt.core.core_id}", "enter_idle", state.name)
        if rt.wake_pending or rt.queue:
            self._begin_wake(rt)

    def _begin_wake(self, rt: _CoreRuntime) -> None:
        if rt.mode is not _IDLE:
            raise SimulationError(f"cannot wake core in mode {rt.mode}")
        now = self.sim.now
        rt.governor.observe_idle(now - rt.idle_since)
        rt.snoop_token += 1  # invalidate in-flight snoop service
        trace = self.trace
        if trace.enabled:
            trace.record(now, f"core{rt.core.core_id}", "wake", rt.core.state.name)
        exit_latency = rt.core.wake(now)
        frequency = self._turbo.frequency_for_burst(now, self.package.package_power)
        if frequency is not rt.core.frequency:
            # Same-frequency DVFS is an exact no-op (zero-span accrual on
            # an existing key, unchanged power): skip the call entirely.
            rt.core.set_frequency(now, frequency)
        rt.mode = _WAKING
        self._sched(exit_latency, rt.wake_cb)

    def _wake_complete(self, rt: _CoreRuntime) -> None:
        rt.mode = _ACTIVE
        if rt.queue and not rt.busy:
            self._start_service(rt)
        elif not rt.queue:
            # Spurious wake (race with service completion): go back idle.
            self._go_idle(rt)

    # -- snoop path -----------------------------------------------------------------
    def _on_snoop(self, idx: int) -> None:
        rt = self._runtimes[idx]
        state = rt.core.state
        if rt.mode is _IDLE and self.snoop_model.sees_snoops(state.name):
            delta = self.snoop_model.power_delta_for(state.name)
            rt.core.begin_snoop_service(self.sim.now, delta)
            token = rt.snoop_token
            duration = self.snoop_model.service_time + state.snoop_wake_overhead
            self._sched(duration, lambda: self._end_snoop(rt, token))
            self.snoops_served += 1
            trace = self.trace
            if trace.enabled:
                trace.record(
                    self.sim.now, f"core{rt.core.core_id}", "snoop", state.name
                )
        self._schedule_next_snoop(idx)

    def _end_snoop(self, rt: _CoreRuntime, token: int) -> None:
        # A wake may have raced us; only restore idle power if still idle.
        if rt.mode is _IDLE and rt.snoop_token == token:
            rt.core.end_snoop_service(self.sim.now)

    # -- telemetry ------------------------------------------------------------------
    def telemetry_sample(self, time: float) -> Dict[str, float]:
        """Instantaneous observables for the telemetry probes (read-only).

        Reads the package's O(1) incremental power accounting, the
        non-mutating mid-run energy integral, per-core C-state occupancy
        and queue depths. Called from the engine tick hook, so it must
        never mutate simulation state — in particular it must not touch
        ``Core.snapshot`` (which closes accounting).
        """
        queued = 0
        frequency_hz = 0.0
        counts: Dict[str, int] = {}
        for rt in self._runtimes:
            queued += len(rt.queue)
            core = rt.core
            frequency_hz += core.frequency.frequency_hz
            name = core.state.name
            counts[name] = counts.get(name, 0) + 1
        package_power, core_power, energy_j = self.package.telemetry_power(time)
        row = {
            "package_power": package_power,
            "core_power": core_power,
            "energy_j": energy_j,
            "in_flight": float(self.in_flight),
            "queued": float(queued),
            "frequency_ghz": frequency_hz / (1e9 * self.n_cores),
            "completed": float(self.completed),
        }
        # sorted(): series layout must be a function of the state names,
        # not of per-run dict insertion history (DET005 discipline).
        for name in sorted(counts):
            row["cstate." + name] = float(counts[name])
        return row

    # -- run ------------------------------------------------------------------------
    def start(self) -> None:
        """Arm this node's event sources on its simulator.

        Standalone nodes arm the arrival stream and snoop traffic; nodes
        embedded in a cluster (``external_arrivals=True``) arm snoops
        only — logical arrivals reach them through :meth:`inject`.
        """
        if not self.external_arrivals:
            self._schedule_arrivals()
        self._arm_snoops()

    def run(self) -> RunResult:
        """Simulate the full horizon and aggregate the observables."""
        self.start()
        sampler = None
        if self.telemetry_hz is not None:
            from repro.obs.timeline import TimelineSampler

            sampler = TimelineSampler(self.telemetry_hz, [self])
            sampler.attach(self.sim)
        self.sim.run(until=self.horizon)
        result = self.collect()
        if sampler is not None:
            self.sim.clear_tick_hook()
            result.timeline = sampler.finish()
        return result

    def collect(self) -> RunResult:
        """Aggregate the observables after the simulator has run."""
        residency: Dict[str, float] = {}
        transitions: Dict[str, float] = {}
        energy = 0.0
        for rt in self._runtimes:
            stats = rt.core.snapshot(self.horizon)
            # sorted(): per-key accumulation order must be a function of
            # the state names, not of per-core dict insertion history
            # (DET005 — bit-identity across executors).
            for name, seconds in sorted(stats.residency_seconds.items()):
                residency[name] = residency.get(name, 0.0) + seconds
            for name, count in sorted(stats.transitions.items()):
                transitions[name] = transitions.get(name, 0.0) + count
            energy += stats.energy_joules

        total_core_time = self.horizon * self.n_cores
        residency = {k: v / total_core_time for k, v in residency.items()}
        transitions_ps = {
            k: v / (self.horizon * self.n_cores) for k, v in transitions.items()
        }
        avg_core_power = energy / total_core_time
        package_power = (
            avg_core_power * self.n_cores + self.package.config.uncore_watts
        )
        return RunResult(
            config_name=self.configuration.name,
            workload_name=self.workload.name,
            qps=self.qps,
            horizon=self.horizon,
            cores=self.n_cores,
            residency=residency,
            transitions_per_second=transitions_ps,
            avg_core_power=avg_core_power,
            package_power=package_power,
            server_latency=self.latency,
            completed=self.completed,
            turbo_grant_rate=self.package.turbo.grant_rate,
            network_latency=self.workload.network_latency,
            snoops_served=self.snoops_served,
            events_processed=self.sim.events_processed,
            peak_pending_events=self.sim.peak_pending_events,
        )


def simulate(
    workload: Workload,
    configuration: ServerConfiguration,
    qps: float,
    cores: int = 10,
    horizon: float = 0.5,
    seed: int = 42,
    **kwargs,
) -> RunResult:
    """One-call convenience wrapper: build a node and run it."""
    node = ServerNode(
        workload=workload,
        configuration=configuration,
        qps=qps,
        cores=cores,
        horizon=horizon,
        seed=seed,
        **kwargs,
    )
    return node.run()
