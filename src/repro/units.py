"""Unit helpers and conversions used throughout the library.

The simulator keeps time in **seconds** (floats) and power in **watts**.
The paper mixes microseconds, nanoseconds, milliwatts and watts; these
helpers make call sites read like the paper text (``2 * US``, ``70 * NS``,
``55 * MILLIWATT``) instead of raw exponents.
"""

from __future__ import annotations

# -- time -------------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365 * DAY

# -- power / energy ---------------------------------------------------------
WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6
KILOWATT = 1e3

JOULE = 1.0
KWH = 3.6e6  # joules per kilowatt-hour

# -- frequency --------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# -- capacity ---------------------------------------------------------------
KB = 1024
MB = 1024 * KB


def seconds_to_us(value: float) -> float:
    """Convert seconds to microseconds."""
    return value / US


def seconds_to_ns(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value / NS


def watts_to_mw(value: float) -> float:
    """Convert watts to milliwatts."""
    return value / MILLIWATT


def joules_to_kwh(value: float) -> float:
    """Convert joules to kilowatt-hours."""
    return value / KWH


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Duration of ``cycles`` clock cycles at ``frequency_hz``.

    Raises:
        ValueError: if ``frequency_hz`` is not positive.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def pretty_time(value: float) -> str:
    """Render a duration with a sensible unit (for reports)."""
    if value < 0:
        return "-" + pretty_time(-value)
    if value == 0:
        return "0s"
    if value < 1e-9:
        return f"{value / PS:.1f}ps"
    if value < 1e-6:
        return f"{value / NS:.1f}ns"
    if value < 1e-3:
        return f"{value / US:.1f}us"
    if value < 1.0:
        return f"{value / MS:.1f}ms"
    return f"{value:.3f}s"


def pretty_power(value: float) -> str:
    """Render a power with a sensible unit (for reports)."""
    if value < 0:
        return "-" + pretty_power(-value)
    if value < 1e-3:
        return f"{value / MICROWATT:.1f}uW"
    if value < 1.0:
        return f"{value / MILLIWATT:.1f}mW"
    return f"{value:.2f}W"
