"""Cluster experiments: tail-at-scale, balancing policy, fleet energy.

The paper's motivation is fleet-level: a latency-critical request fans
out to many leaf servers and completes at the slowest one, so a p99
wakeup penalty on one server is an expected-case event at scale. These
extension studies run the :mod:`repro.cluster` subsystem over the
existing scenario grid machinery:

- ``fanout_tail`` — p99 versus fan-out per idle governor at a *constant
  per-node leaf rate* (the logical rate shrinks as fan-out grows, so the
  curve isolates max-of-R amplification from load). The tail-at-scale
  figure: deep-idle governors amplify hard, shallow ones stay flat but
  burn the idle power back.
- ``balancer_study`` — balancer x governor x load: what queue-aware
  balancing (JSQ, power-of-two-choices) buys over random/round-robin as
  load and wakeup penalty interact.
- ``cluster_energy`` — cluster-wide power versus delivered load:
  energy-proportionality metrics (dynamic range, proportionality gap)
  for the whole fleet rather than one socket.
- ``fleet_scale`` — tail latency and fleet power versus fleet *size* at
  constant per-node load, on the partitioned sharded-execution path
  (random balancing, sketch-backed percentiles): the fleet-level view
  the sharding tentpole exists for, with bounded memory per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytical.proportionality import analyze_curve
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    register_experiment,
)
from repro.experiments.common import format_table
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.sweep.spec import DEFAULT_CORES, DEFAULT_SEED
from repro.units import seconds_to_us

#: Cluster sweeps cost nodes x the single-node horizon; keep the default
#: window shorter than the paper sweeps' 0.4 s but long enough for a
#: stable p99 at the lowest per-node rate.
DEFAULT_CLUSTER_HORIZON = 0.1


@dataclass(frozen=True)
class ClusterParams:
    """Knobs shared by the cluster experiments."""

    nodes: int = 8
    cores: int = DEFAULT_CORES
    horizon: float = DEFAULT_CLUSTER_HORIZON
    seed: int = DEFAULT_SEED
    workload: str = "memcached"
    config: str = "baseline"
    balancer: str = "random"


# -- fanout_tail ---------------------------------------------------------------

@dataclass(frozen=True)
class FanoutTailParams(ClusterParams):
    """``fanout_tail`` sweep: fan-out degrees x idle governors.

    ``per_node_kqps`` is the *leaf* rate each node sees regardless of
    fan-out: the logical rate is ``per_node_kqps * nodes / fanout``, so
    rising fan-out changes only how many wakeup penalties a request
    maxes over, never the per-server load.
    """

    fanouts: Tuple[int, ...] = (1, 2, 4, 8)
    governors: Tuple[str, ...] = ("menu", "c1_only")
    per_node_kqps: float = 40.0
    hedge_ms: Optional[float] = None


@register_experiment
class FanoutTailExperiment(Experiment):
    id = "fanout_tail"
    title = "Cluster fan-out: p99 amplification per idle governor (tail at scale)."
    artifact = "extension"
    Params = FanoutTailParams

    def _spec(self, governor: str, fanout: int) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload=p.workload, config=p.config,
            qps=p.per_node_kqps * 1000.0 * p.nodes / fanout,
            cores=p.cores, horizon=p.horizon, seed=p.seed,
            governor=governor, nodes=p.nodes, balancer=p.balancer,
            fanout=fanout, hedge_ms=p.hedge_ms,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(governor, fanout)
            for governor in self.params.governors
            for fanout in self.params.fanouts
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        p = self.params
        records: List[Dict[str, object]] = []
        by_governor: Dict[str, List[Dict[str, object]]] = {}
        for governor in p.governors:
            # The amplification baseline is the *smallest* fan-out, not
            # the first listed: `--params fanouts=8,4,1` must not invert
            # the ratios.
            base_p99 = self.point(
                results, self._spec(governor, min(p.fanouts))
            ).tail_latency
            series: List[Dict[str, object]] = []
            for fanout in p.fanouts:
                run = self.point(results, self._spec(governor, fanout))
                p99 = run.tail_latency
                record = {
                    "governor": governor,
                    "fanout": fanout,
                    "per_node_kqps": p.per_node_kqps,
                    "p99_amplification": p99 / base_p99 if base_p99 else 0.0,
                    **run.to_record(),
                }
                series.append(record)
                records.append(record)
            by_governor[governor] = series
        notes = [
            "p99 amplification is relative to the smallest fan-out of the "
            "same governor; per-node leaf rate is held constant across "
            "fan-outs."
        ]
        return self.make_result(records=records, payload=by_governor, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        by_governor: Dict[str, List[Dict[str, object]]] = result.payload
        governors = list(by_governor)
        lines = [
            f"Cluster tail at scale: p99 (us) vs fan-out, "
            f"{self.params.nodes} nodes @ {self.params.per_node_kqps:.0f} "
            f"KQPS/node ({self.params.config})"
        ]
        headers = ["fanout"]
        for governor in governors:
            headers += [f"{governor} p99", f"{governor} x"]
        rows = []
        for i, fanout in enumerate(self.params.fanouts):
            row = [str(fanout)]
            for governor in governors:
                record = by_governor[governor][i]
                row += [
                    f"{seconds_to_us(record['p99_latency']):.1f}",
                    f"{record['p99_amplification']:.2f}",
                ]
            rows.append(row)
        lines.append(format_table(headers, rows))
        lines.extend(result.notes)
        return "\n".join(lines)

    def quick_params(self) -> FanoutTailParams:
        return FanoutTailParams(
            nodes=4, cores=4, horizon=0.02, per_node_kqps=20.0,
            fanouts=(1, 4), governors=("menu", "c1_only"),
        )


# -- balancer_study ------------------------------------------------------------

@dataclass(frozen=True)
class BalancerStudyParams(ClusterParams):
    """``balancer_study`` sweep: balancing policy x governor x load."""

    balancers: Tuple[str, ...] = ("random", "round_robin", "jsq", "power_of_two")
    governors: Tuple[str, ...] = ("menu", "c1_only")
    per_node_kqps: Tuple[float, ...] = (20.0, 60.0)
    fanout: int = 1


@register_experiment
class BalancerStudyExperiment(Experiment):
    id = "balancer_study"
    title = "Cluster balancing: policy x governor x load on tail latency."
    artifact = "extension"
    Params = BalancerStudyParams

    def _spec(self, balancer: str, governor: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload=p.workload, config=p.config,
            qps=kqps * 1000.0 * p.nodes / p.fanout,
            cores=p.cores, horizon=p.horizon, seed=p.seed,
            governor=governor, nodes=p.nodes, balancer=balancer,
            fanout=p.fanout,
        )

    def grid(self) -> ScenarioGrid:
        p = self.params
        return ScenarioGrid([
            self._spec(balancer, governor, kqps)
            for balancer in p.balancers
            for governor in p.governors
            for kqps in p.per_node_kqps
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        p = self.params
        records = []
        for balancer in p.balancers:
            for governor in p.governors:
                for kqps in p.per_node_kqps:
                    run = self.point(results, self._spec(balancer, governor, kqps))
                    records.append({
                        "balancer": balancer,
                        "governor": governor,
                        "per_node_kqps": kqps,
                        **run.to_record(),
                    })
        return self.make_result(records=records, payload=records)

    def render_text(self, result: ExperimentResult) -> str:
        p = self.params
        lines = [
            f"Cluster balancer study: p99 / avg latency (us), "
            f"{p.nodes} nodes, fan-out {p.fanout} ({p.config})"
        ]
        rows = [
            [
                record["balancer"],
                record["governor"],
                f"{record['per_node_kqps']:.0f}K",
                f"{seconds_to_us(record['avg_latency']):.1f}",
                f"{seconds_to_us(record['p99_latency']):.1f}",
                f"{record['package_power']:.1f}",
            ]
            for record in result.records
        ]
        lines.append(format_table(
            ["balancer", "governor", "KQPS/node", "avg", "p99", "cluster W"],
            rows,
        ))
        return "\n".join(lines)

    def quick_params(self) -> BalancerStudyParams:
        return BalancerStudyParams(
            nodes=4, cores=4, horizon=0.02,
            balancers=("random", "jsq"), governors=("menu",),
            per_node_kqps=(20.0,),
        )


# -- cluster_energy ------------------------------------------------------------

@dataclass(frozen=True)
class ClusterEnergyParams(ClusterParams):
    """``cluster_energy`` sweep: per-node load levels x configurations."""

    configs: Tuple[str, ...] = ("baseline", "AW")
    per_node_kqps: Tuple[float, ...] = (5.0, 10.0, 20.0, 50.0, 100.0, 200.0)
    governor: str = "menu"


@register_experiment
class ClusterEnergyExperiment(Experiment):
    id = "cluster_energy"
    title = "Cluster energy proportionality: fleet power vs delivered load."
    artifact = "extension"
    Params = ClusterEnergyParams

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload=p.workload, config=config,
            qps=kqps * 1000.0 * p.nodes,
            cores=p.cores, horizon=p.horizon, seed=p.seed,
            governor=p.governor, nodes=p.nodes, balancer=p.balancer,
        )

    def grid(self) -> ScenarioGrid:
        p = self.params
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in p.configs
            for kqps in p.per_node_kqps
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        p = self.params
        records = []
        notes = []
        curves: Dict[str, List[Tuple[float, float]]] = {}
        for config in p.configs:
            curve = []
            for kqps in p.per_node_kqps:
                run = self.point(results, self._spec(config, kqps))
                records.append({
                    "per_node_kqps": kqps,
                    "utilization": run.utilization,
                    **run.to_record(),
                })
                curve.append((run.utilization, run.package_power))
            curve.sort(key=lambda point: point[0])
            curves[config] = curve
            report = analyze_curve(curve)
            notes.append(
                f"{config}: cluster dynamic range "
                f"{report.dynamic_range:.2f}x, proportionality gap "
                f"{report.proportionality_gap * 100:.1f}%"
            )
        return self.make_result(records=records, payload=curves, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        p = self.params
        lines = [
            f"Cluster energy proportionality: {p.nodes} nodes "
            f"({', '.join(p.configs)})"
        ]
        rows = [
            [
                record["config"],
                f"{record['per_node_kqps']:.0f}K",
                f"{record['utilization'] * 100:.1f}%",
                f"{record['package_power']:.1f}",
                f"{record['package_power'] / p.nodes:.1f}",
            ]
            for record in result.records
        ]
        lines.append(format_table(
            ["config", "KQPS/node", "util", "cluster W", "W/node"], rows
        ))
        lines.extend(result.notes)
        return "\n".join(lines)

    def quick_params(self) -> ClusterEnergyParams:
        return ClusterEnergyParams(
            nodes=2, cores=4, horizon=0.02,
            per_node_kqps=(10.0, 50.0), configs=("baseline", "AW"),
        )


# -- fleet_scale ---------------------------------------------------------------

@dataclass(frozen=True)
class FleetScaleParams(ClusterParams):
    """``fleet_scale`` sweep: fleet sizes at constant per-node load.

    Every point is shardable (random balancing, single-leaf requests)
    and sketch-backed, so it runs on the partitioned execution path with
    memory bounded by the sketch's bucket cap rather than the request
    count — the regime that makes 1000-node fleets tractable.
    """

    fleet_sizes: Tuple[int, ...] = (16, 64, 256)
    per_node_kqps: float = 25.0
    sketch_error: float = 0.01


@register_experiment
class FleetScaleExperiment(Experiment):
    id = "fleet_scale"
    title = "Fleet scaling: tail latency and power vs fleet size (sharded path)."
    artifact = "extension"
    Params = FleetScaleParams

    def _spec(self, nodes: int) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload=p.workload, config=p.config,
            qps=p.per_node_kqps * 1000.0 * nodes,
            cores=p.cores, horizon=p.horizon, seed=p.seed,
            nodes=nodes, balancer="random",
            sketch_error=p.sketch_error,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(nodes) for nodes in self.params.fleet_sizes
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        p = self.params
        records: List[Dict[str, object]] = []
        for nodes in p.fleet_sizes:
            run = self.point(results, self._spec(nodes))
            records.append({
                "per_node_kqps": p.per_node_kqps,
                "p999_latency": run.server_latency.p999,
                "power_per_node": run.package_power / nodes,
                **run.to_record(detail=False),
            })
        notes = [
            "Per-node load is constant across fleet sizes; with random "
            "balancing each node sees an independent Poisson stream, so "
            "per-request percentiles should be scale-invariant up to "
            f"sampling noise (sketch error {p.sketch_error:.0%}).",
        ]
        return self.make_result(records=records, payload=records, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        p = self.params
        lines = [
            f"Fleet scaling @ {p.per_node_kqps:.0f} KQPS/node "
            f"({p.workload}/{p.config}, random balancing, "
            f"sketch alpha={p.sketch_error:.0%})"
        ]
        rows = [
            [
                str(record["nodes"]),
                f"{record['achieved_qps'] / 1e6:.2f}M",
                f"{seconds_to_us(record['avg_latency']):.1f}",
                f"{seconds_to_us(record['p99_latency']):.1f}",
                f"{seconds_to_us(record['p999_latency']):.1f}",
                f"{record['power_per_node']:.1f}",
            ]
            for record in result.records
        ]
        lines.append(format_table(
            ["nodes", "QPS", "avg", "p99", "p99.9", "W/node"], rows
        ))
        lines.extend(result.notes)
        return "\n".join(lines)

    def quick_params(self) -> FleetScaleParams:
        return FleetScaleParams(
            fleet_sizes=(2, 4), per_node_kqps=20.0, horizon=0.02, cores=4,
        )


def main() -> None:  # pragma: no cover - convenience entry point
    for experiment_cls in (
        FanoutTailExperiment, BalancerStudyExperiment, ClusterEnergyExperiment,
        FleetScaleExperiment,
    ):
        experiment = experiment_cls()
        print(experiment.render_text(experiment.execute()))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
