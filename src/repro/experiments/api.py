"""First-class Experiment API: declarative registry and structured output.

Every paper artifact (a figure, a table, an extension study) is an
:class:`Experiment`: it *declares* the simulation points it needs
(:meth:`Experiment.grid`) separately from how it turns results into an
artifact (:meth:`Experiment.analyze`), and renders independently of both
(:meth:`Experiment.render_text` plus the generic :func:`render_json` /
:func:`render_jsonl` / :func:`render_csv` renderers).

That split is what lets ``python -m repro run --all`` execute *one*
deduplicated batched sweep for the union of every selected experiment's
grid — Fig 10's grid is a superset of Fig 9's, Table 5's of Fig 8's — and
then analyze each experiment from the shared result map, instead of 20
serial prefetches:

    experiments = [get_experiment(i) for i in experiment_ids()]
    results = run_experiments(experiments)      # one SweepRunner.run_many
    for experiment in experiments:
        print(experiment.render_text(results[experiment.id]))

Experiments register themselves with :func:`register_experiment`::

    @register_experiment
    class MyStudy(Experiment):
        id = "my_study"
        title = "My study: what X buys"
        artifact = "extension"

        def grid(self):
            return ScenarioGrid([ScenarioSpec(...), ...])

        def analyze(self, results=None):
            result = self.point(results, spec)      # map hit or memoised run
            return self.make_result(records=[...], payload=...)

The legacy ``run()``/``main()`` module functions are kept as thin
deprecation shims over the registered classes, so existing imports and
printed outputs are unchanged.
"""

from __future__ import annotations

import abc
import csv
import io
import json
import re
import types
import typing
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import (
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import ConfigurationError, SimulationError
from repro.server.metrics import RunResult
from repro.sweep.runner import SweepRunner, default_runner
from repro.sweep.spec import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    CacheKey,
    ScenarioGrid,
    ScenarioSpec,
)

#: Shared result map: cache key -> simulated result (one entry per unique
#: spec across every experiment in a batch).
ResultMap = Mapping[CacheKey, RunResult]

#: Output formats understood by :func:`render` (and ``repro run --format``).
FORMATS: Tuple[str, ...] = ("table", "json", "jsonl", "csv")

#: File extension per format for ``repro run --out DIR``.
_EXTENSIONS = {"table": "txt", "json": "json", "jsonl": "jsonl", "csv": "csv"}


@dataclass(frozen=True)
class NoParams:
    """Parameter set of experiments with nothing to configure."""


@dataclass(frozen=True)
class FigureSeries:
    """One named line/bar series of an experiment figure."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]


@dataclass(frozen=True)
class FigureSpec:
    """Declarative figure description rendered by :mod:`repro.obs.figures`.

    Backend-independent by design: experiments declare *what* to plot;
    the report renders it with matplotlib when installed and a pure-SVG
    fallback otherwise, so ``repro report`` works in both environments.
    """

    id: str
    title: str
    x_label: str
    y_label: str
    series: Tuple[FigureSeries, ...]
    kind: str = "line"  # "line" or "bar"
    log_y: bool = False


#: Record metrics the generic figure builder plots against qps, with
#: axis labels (latencies are milliseconds end-to-end at the server).
_GENERIC_METRICS: Tuple[Tuple[str, str], ...] = (
    ("p99_latency", "p99 latency (s)"),
    ("package_power", "package power (W)"),
)


def _numeric(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        # Static paper tables carry unit-suffixed strings ("4.00W",
        # "5 cycles"); plot their leading number.
        match = re.match(r"^\s*(-?\d+(?:\.\d+)?)", value)
        if match:
            return float(match.group(1))
    return None


def generic_figures(result: ExperimentResult) -> List["FigureSpec"]:
    """Default figures from an experiment's flat records.

    When records carry a numeric ``qps`` axis, plots each of
    :data:`_GENERIC_METRICS` against it (one series per ``config``
    value). Otherwise falls back to a bar chart of the first numeric
    column. Experiments with bespoke artwork override
    :meth:`Experiment.figures` instead.
    """
    records = result.records
    if not records:
        return []
    figures: List[FigureSpec] = []
    qps_values = [_numeric(r.get("qps")) for r in records]
    if sum(1 for q in qps_values if q is not None) >= 2:
        for metric, y_label in _GENERIC_METRICS:
            groups: Dict[str, List[Tuple[float, float]]] = {}
            for record, q in zip(records, qps_values):
                y = _numeric(record.get(metric))
                if q is None or y is None:
                    continue
                label = str(record.get("config", result.experiment_id))
                groups.setdefault(label, []).append((q, y))
            series = tuple(
                FigureSeries(
                    label=label,
                    x=tuple(p[0] for p in sorted(points)),
                    y=tuple(p[1] for p in sorted(points)),
                )
                for label, points in groups.items()
                if points
            )
            if series:
                figures.append(
                    FigureSpec(
                        id=f"{result.experiment_id}:{metric}",
                        title=f"{result.artifact}: {metric} vs offered load",
                        x_label="offered load (QPS)",
                        y_label=y_label,
                        series=series,
                    )
                )
    if figures:
        return figures
    # No qps axis: first numeric column as a bar chart over records.
    for key in _union_keys(records):
        values = [_numeric(r.get(key)) for r in records]
        if sum(1 for v in values if v is not None) >= 1:
            points = [
                (float(i), v) for i, v in enumerate(values) if v is not None
            ]
            return [
                FigureSpec(
                    id=f"{result.experiment_id}:{key}",
                    title=f"{result.artifact}: {key} by record",
                    x_label="record",
                    y_label=key,
                    series=(
                        FigureSeries(
                            label=key,
                            x=tuple(p[0] for p in points),
                            y=tuple(p[1] for p in points),
                        ),
                    ),
                    kind="bar",
                )
            ]
    # Nothing numeric at all (purely descriptive tables): a record-count
    # bar keeps the report's one-figure-per-experiment invariant.
    return [
        FigureSpec(
            id=f"{result.experiment_id}:records",
            title=f"{result.artifact}: records",
            x_label="",
            y_label="records",
            series=(
                FigureSeries(
                    label="records", x=(0.0,), y=(float(len(records)),)
                ),
            ),
            kind="bar",
        )
    ]


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment.

    Attributes:
        experiment_id: the registered experiment id.
        title: one-line experiment description.
        artifact: the paper artifact this regenerates (e.g. ``"Figure 8"``).
        records: flat-ish JSON-safe dicts — the machine-readable form of
            every number the artifact reports, including C-state
            residency/transition detail where a :class:`RunResult` backs
            the record.
        payload: the experiment's legacy typed value (what the module's
            ``run()`` returned before the API existed); rendering helpers
            use it, machine consumers should prefer ``records``.
        notes: free-text addenda (paper bands, headline comparisons).
    """

    experiment_id: str
    title: str
    artifact: str
    records: List[Dict[str, object]]
    payload: object = None
    notes: List[str] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON envelope: everything except the typed payload."""
        return {
            "experiment": self.experiment_id,
            "title": self.title,
            "artifact": self.artifact,
            "records": self.records,
            "notes": list(self.notes),
        }


class Experiment(abc.ABC):
    """One reproducible paper artifact.

    Subclasses set the class attributes ``id``, ``title`` and
    ``artifact``, optionally a ``Params`` dataclass describing their
    knobs, and implement :meth:`analyze` (and :meth:`grid` when they
    simulate). Register with :func:`register_experiment`.
    """

    #: Registered experiment id (CLI name).
    id: ClassVar[str]
    #: One-line description, shown by ``repro list``.
    title: ClassVar[str]
    #: Which paper artifact this regenerates (``"Table 3"``, ``"Figure 8"``,
    #: ``"Section 7.5"``, ``"extension"`` ...).
    artifact: ClassVar[str]
    #: Parameter dataclass; instances are held on ``self.params``.
    Params: ClassVar[type] = NoParams

    def __init__(self, params: Optional[object] = None):
        self.params = self.Params() if params is None else params
        #: Runner used when a point is missing from the shared result
        #: map; :func:`run_experiments` pins it to the batch's runner so
        #: fallbacks honour the caller's store/cache/policy choices.
        self._fallback_runner: Optional[SweepRunner] = None

    # -- declarative surface -----------------------------------------------
    def grid(self) -> ScenarioGrid:
        """Every simulation point this experiment needs, declared up front.

        Analytical/static experiments return the default empty grid.
        """
        return ScenarioGrid([])

    @abc.abstractmethod
    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        """Turn simulated results into the structured artifact.

        ``results`` maps spec cache keys to :class:`RunResult` (typically
        the shared map of a batched cross-experiment run). Points missing
        from the map are simulated on demand through the process-wide
        runner (memoised), so ``analyze()`` is also self-sufficient.
        """

    def render_text(self, result: ExperimentResult) -> str:
        """Human-readable rendering (the artifact's legacy table text)."""
        from repro.experiments.common import format_table

        if not result.records:
            return f"{result.artifact}: no records"
        headers = _union_keys(result.records)
        rows = [[_csv_cell(r.get(h, "")) for h in headers] for r in result.records]
        return format_table(headers, rows)

    def figures(self, result: ExperimentResult) -> List[FigureSpec]:
        """Declarative figures for the HTML report (``repro report``).

        The default derives generic qps-vs-metric plots from the flat
        records (see :func:`generic_figures`); experiments with bespoke
        artwork override this.
        """
        return generic_figures(result)

    # -- quick mode ---------------------------------------------------------
    def quick_params(self) -> object:
        """Reduced parameters for smoke tests; default: unchanged."""
        return self.params

    def quick(self) -> "Experiment":
        """A copy configured for a fast (seconds, not minutes) run."""
        return type(self)(params=self.quick_params())

    # -- execution helpers --------------------------------------------------
    def point(self, results: Optional[ResultMap], spec: ScenarioSpec) -> RunResult:
        """Resolve one spec: shared result map first, memoised run second.

        Raises:
            SimulationError: if the fallback run does not yield a result
                (the runner's failure policy skipped or recorded the
                point) — experiments need every point they declared.
        """
        if results is not None:
            hit = results.get(spec.cache_key)
            if hit is not None:
                return hit
        runner = self._fallback_runner
        result = (runner if runner is not None else default_runner()).run(spec)
        if not isinstance(result, RunResult):
            detail = getattr(result, "error", "skipped by the failure policy")
            raise SimulationError(
                f"experiment {self.id!r} is missing point {spec.cache_key}: "
                f"{detail}"
            )
        return result

    def execute(self, runner: Optional[SweepRunner] = None) -> ExperimentResult:
        """Run this experiment's own grid (batched) and analyze it."""
        return run_experiments([self], runner=runner)[self.id]

    def make_result(
        self,
        records: Sequence[Dict[str, object]],
        payload: object = None,
        notes: Sequence[str] = (),
    ) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            artifact=self.artifact,
            records=list(records),
            payload=payload,
            notes=list(notes),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(id={self.id!r}, params={self.params!r})"


# -- registry -----------------------------------------------------------------

#: Registered experiment classes by id, in registration (= reading) order.
_REGISTRY: Dict[str, Type[Experiment]] = {}


def register_experiment(cls: Type[Experiment]) -> Type[Experiment]:
    """Class decorator: add ``cls`` to the experiment registry.

    Ids must be unique; re-registering the *same* class (e.g. a module
    reload) replaces the entry silently, while a different class claiming
    an existing id is a configuration error.
    """
    for attribute in ("id", "title", "artifact"):
        value = getattr(cls, attribute, None)
        if not isinstance(value, str) or not value:
            raise ConfigurationError(
                f"experiment class {cls.__name__} must define a non-empty "
                f"string {attribute!r}"
            )
    existing = _REGISTRY.get(cls.id)
    if existing is not None:
        # The same class may re-register (module reload, or `python -m
        # repro.experiments.fig8` re-executing a module as __main__); a
        # *different* class claiming a taken id is an error.
        same_class = existing.__qualname__ == cls.__qualname__ and (
            existing.__module__ == cls.__module__
            or "__main__" in (existing.__module__, cls.__module__)
        )
        if not same_class:
            raise ConfigurationError(
                f"experiment id {cls.id!r} already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
    _REGISTRY[cls.id] = cls
    return cls


def unregister_experiment(experiment_id: str) -> None:
    """Remove an id from the registry (tests registering throwaways)."""
    _REGISTRY.pop(experiment_id, None)


def experiment_ids() -> List[str]:
    """All registered ids, in registration (reading) order."""
    _ensure_registry_populated()
    return list(_REGISTRY)


def get_experiment_class(experiment_id: str) -> Type[Experiment]:
    _ensure_registry_populated()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"registered: {', '.join(_REGISTRY) or '(none)'}"
        ) from None


def get_experiment(
    experiment_id: str, params: Optional[object] = None
) -> Experiment:
    """A fresh instance of the registered experiment."""
    return get_experiment_class(experiment_id)(params=params)


def all_experiments() -> List[Experiment]:
    """Fresh default-parameter instances of every registered experiment."""
    return [get_experiment(experiment_id) for experiment_id in experiment_ids()]


def _ensure_registry_populated() -> None:
    """Import the experiment package so self-registration has happened.

    Users that go straight to this module (``from repro.experiments.api
    import experiment_ids``) would otherwise see an empty registry.
    """
    if not _REGISTRY:
        import repro.experiments  # noqa: F401  (imports register the classes)


# -- CLI parameter overrides ---------------------------------------------------

#: Raw strings accepted as None for Optional[...] parameter fields.
_NONE_WORDS = ("none", "null")
_TRUE_WORDS = ("true", "1", "yes", "on")
_FALSE_WORDS = ("false", "0", "no", "off")

#: Union spellings: ``Optional[T]``/``Union[...]`` resolve to
#: ``typing.Union``; PEP 604 ``T | None`` (Python >= 3.10) to
#: ``types.UnionType``.
_UNION_ORIGINS = (typing.Union,) + (
    (types.UnionType,) if hasattr(types, "UnionType") else ()
)


def _coerce_value(annotation, raw: str, key: str):
    """Parse ``raw`` into the annotated type of one Params field.

    Handles the shapes experiment ``Params`` dataclasses actually use:
    scalars (str/int/float/bool), ``Optional[T]`` and (optionally
    variadic) tuples, which parse from comma-separated items.

    Raises:
        ConfigurationError: on unparseable values or unsupported types.
    """
    origin = typing.get_origin(annotation)
    if origin in _UNION_ORIGINS:
        inner = [a for a in typing.get_args(annotation) if a is not type(None)]
        if raw.strip().lower() in _NONE_WORDS:
            return None
        return _coerce_value(inner[0], raw, key)
    if origin is tuple or annotation is tuple:
        args = typing.get_args(annotation)
        element = args[0] if args else str
        raw = raw.strip()
        if not raw:
            # An empty axis is never a useful override; downstream code
            # (grids, min() baselines) assumes at least one element.
            raise ConfigurationError(
                f"--params {key}: expected at least one comma-separated item"
            )
        return tuple(
            _coerce_value(element, part.strip(), key) for part in raw.split(",")
        )
    if annotation is bool:
        word = raw.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise ConfigurationError(
            f"--params {key}: cannot parse {raw!r} as bool "
            f"(use true/false)"
        )
    if annotation in (int, float, str):
        try:
            return annotation(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"--params {key}: cannot parse {raw!r} as "
                f"{annotation.__name__}"
            ) from exc
    raise ConfigurationError(
        f"--params {key}: unsupported parameter type {annotation!r}"
    )


def parse_param_overrides(
    experiment: Experiment, assignments: Sequence[str]
) -> Experiment:
    """A copy of ``experiment`` with ``key=value`` overrides applied.

    Each assignment names a field of the experiment's ``Params``
    dataclass; values are coerced to the field's annotated type (tuples
    parse from comma-separated items, ``none`` clears Optional fields).

    Raises:
        ConfigurationError: on malformed assignments, unknown keys (the
            error lists the valid ones), or uncoercible values.
    """
    params = experiment.params
    hints = typing.get_type_hints(type(params))
    known = {f.name for f in dataclass_fields(params)}
    overrides: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"--params expects key=value, got {assignment!r}"
            )
        if key not in known:
            valid = ", ".join(sorted(known)) or "(none: this experiment has no parameters)"
            raise ConfigurationError(
                f"experiment {experiment.id!r} has no parameter {key!r}; "
                f"valid keys: {valid}"
            )
        overrides[key] = _coerce_value(hints.get(key, str), raw, key)
    if not overrides:
        return experiment
    return type(experiment)(params=replace(params, **overrides))


# -- batched cross-experiment execution ---------------------------------------

def collect_grid(experiments: Sequence[Experiment]) -> ScenarioGrid:
    """The deduplicated union of every experiment's grid.

    First occurrence wins the position, so shared points (Fig 10 ⊇ Fig 9,
    Table 5 ⊇ Fig 8) appear once, in a deterministic order.
    """
    seen = set()
    specs: List[ScenarioSpec] = []
    for experiment in experiments:
        for spec in experiment.grid():
            if spec.cache_key not in seen:
                seen.add(spec.cache_key)
                specs.append(spec)
    return ScenarioGrid(specs)


def execute_experiments(
    experiments: Sequence[Experiment], runner: Optional[SweepRunner] = None
) -> Dict[CacheKey, RunResult]:
    """Simulate the union grid in one batched ``run_many`` call.

    Returns the shared result map. Under a non-``raise`` failure policy a
    failed point is simply absent from the map; ``analyze()`` then falls
    back to an on-demand (serial) run for it.
    """
    runner = runner if runner is not None else default_runner()
    grid = collect_grid(experiments)
    specs = list(grid)
    results = runner.run_many(specs)
    return {
        spec.cache_key: result
        for spec, result in zip(specs, results)
        if isinstance(result, RunResult)
    }


def run_experiments(
    experiments: Sequence[Experiment], runner: Optional[SweepRunner] = None
) -> Dict[str, ExperimentResult]:
    """Execute and analyze a batch of experiments, sharing every point.

    The returned dict preserves the order of ``experiments``.
    """
    result_map = execute_experiments(experiments, runner=runner)
    analyzed: Dict[str, ExperimentResult] = {}
    for experiment in experiments:
        experiment._fallback_runner = runner
        try:
            analyzed[experiment.id] = experiment.analyze(result_map)
        finally:
            experiment._fallback_runner = None
    return analyzed


# -- renderers ----------------------------------------------------------------

def output_extension(fmt: str) -> str:
    """File extension for ``--out`` files of the given format."""
    _check_format(fmt)
    return _EXTENSIONS[fmt]


def _check_format(fmt: str) -> None:
    if fmt not in FORMATS:
        raise ConfigurationError(
            f"unknown output format {fmt!r}; choose from {list(FORMATS)}"
        )


def render_json(result: ExperimentResult, indent: int = 2) -> str:
    """One JSON envelope: experiment metadata plus all records."""
    return json.dumps(result.to_json_dict(), indent=indent)


def render_jsonl(result: ExperimentResult) -> str:
    """One JSON object per record, each tagged with the experiment id."""
    lines = [
        json.dumps({"experiment": result.experiment_id, **record})
        for record in result.records
    ]
    return "\n".join(lines)


def _union_keys(records: Sequence[Dict[str, object]]) -> List[str]:
    keys: List[str] = []
    seen = set()
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def _csv_cell(value: object) -> object:
    """CSV-safe cell: nested containers become compact JSON strings."""
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, separators=(",", ":"))
    return value


def render_csv(result: ExperimentResult) -> str:
    """All records as CSV; the header is the union of record keys."""
    headers = _union_keys(result.records)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for record in result.records:
        writer.writerow([_csv_cell(record.get(key, "")) for key in headers])
    return buffer.getvalue().rstrip("\n")


def render(experiment: Experiment, result: ExperimentResult, fmt: str) -> str:
    """Render ``result`` in the requested format.

    ``table`` delegates to the experiment's own text rendering; the
    structured formats are generic over the records.
    """
    _check_format(fmt)
    if fmt == "table":
        return experiment.render_text(result)
    if fmt == "json":
        return render_json(result)
    if fmt == "jsonl":
        return render_jsonl(result)
    return render_csv(result)


# -- common parameter shapes ---------------------------------------------------

@dataclass(frozen=True)
class SweepParams:
    """Rate-sweep knobs shared by the rate-sweeping experiments.

    Subclasses set :attr:`default_rates` to their paper sweep;
    ``rates_kqps=None`` resolves to it, so the default stays in one
    place per experiment.
    """

    rates_kqps: Optional[Tuple[float, ...]] = None
    horizon: float = DEFAULT_HORIZON
    cores: int = DEFAULT_CORES
    seed: int = DEFAULT_SEED

    #: The paper sweep used when ``rates_kqps`` is None.
    default_rates: ClassVar[Tuple[float, ...]] = ()

    def resolved_rates(self) -> Tuple[float, ...]:
        if self.rates_kqps is None:
            return tuple(self.default_rates)
        return tuple(self.rates_kqps)

    @classmethod
    def quick(cls, **overrides) -> "SweepParams":
        """Reduced smoke-run shape: one light-load rate, short horizon."""
        overrides.setdefault("rates_kqps", (20.0,))
        overrides.setdefault("horizon", 0.02)
        return cls(**overrides)
