"""Sensitivity (tornado) experiment: robustness of the AW conclusion.

Perturbs each Table 3 model constant by +/-25% and reports how the AW
savings at a mid-low-load operating point move. Extension artifact (not
a numbered paper table), supporting the paper's conservative-estimates
stance in Sec 5.1.
"""

from __future__ import annotations

from typing import List

from repro.analytical.sensitivity import (
    SensitivityEntry,
    residency_sensitivity,
    tornado,
)
from repro.experiments.common import format_table, pct


def run(relative_delta: float = 0.25) -> List[SensitivityEntry]:
    """Tornado entries plus the workload-residency lever."""
    entries = tornado(relative_delta=relative_delta)
    entries.append(residency_sensitivity(relative_delta))
    return entries


def main() -> None:
    entries = run()
    print("Sensitivity of AW savings to model parameters (+/-25%)")
    print(f"(operating point: 10% C0 / 10% C1 / 80% C1E; nominal savings "
          f"{pct(entries[0].savings_nominal)})\n")
    rows = [
        [
            e.parameter,
            pct(e.savings_low),
            pct(e.savings_nominal),
            pct(e.savings_high),
            f"{e.swing * 100:.1f} pp",
        ]
        for e in entries
    ]
    print(format_table(
        ["Parameter", "-25%", "nominal", "+25%", "swing"], rows
    ))
    print("\nNo single-parameter error flips the conclusion: savings stay")
    print("double-digit under every perturbation.")


if __name__ == "__main__":
    main()
