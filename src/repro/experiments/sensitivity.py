"""Sensitivity (tornado) experiment: robustness of the AW conclusion.

Perturbs each Table 3 model constant by +/-25% and reports how the AW
savings at a mid-low-load operating point move. Extension artifact (not
a numbered paper table), supporting the paper's conservative-estimates
stance in Sec 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analytical.sensitivity import (
    SensitivityEntry,
    residency_sensitivity,
    tornado,
)
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table, pct


@dataclass(frozen=True)
class SensitivityParams:
    relative_delta: float = 0.25


@register_experiment
class SensitivityExperiment(Experiment):
    id = "sensitivity"
    title = "Sensitivity (tornado) experiment: robustness of the AW conclusion."
    artifact = "extension"
    Params = SensitivityParams

    def analyze(self, results=None) -> ExperimentResult:
        delta = self.params.relative_delta
        entries = tornado(relative_delta=delta)
        entries.append(residency_sensitivity(delta))
        records = [
            {
                "parameter": e.parameter,
                "savings_low": e.savings_low,
                "savings_nominal": e.savings_nominal,
                "savings_high": e.savings_high,
                "swing_pp": e.swing * 100,
            }
            for e in entries
        ]
        return self.make_result(records=records, payload=entries)

    def render_text(self, result: ExperimentResult) -> str:
        entries = result.payload
        lines = ["Sensitivity of AW savings to model parameters (+/-25%)"]
        lines.append(f"(operating point: 10% C0 / 10% C1 / 80% C1E; nominal savings "
                     f"{pct(entries[0].savings_nominal)})")
        lines.append("")
        rows = [
            [
                e.parameter,
                pct(e.savings_low),
                pct(e.savings_nominal),
                pct(e.savings_high),
                f"{e.swing * 100:.1f} pp",
            ]
            for e in entries
        ]
        lines.append(format_table(
            ["Parameter", "-25%", "nominal", "+25%", "swing"], rows
        ))
        lines.append("")
        lines.append("No single-parameter error flips the conclusion: savings stay")
        lines.append("double-digit under every perturbation.")
        return "\n".join(lines)


def run(relative_delta: float = 0.25) -> List[SensitivityEntry]:
    """Deprecated shim over :class:`SensitivityExperiment`."""
    return SensitivityExperiment(
        SensitivityParams(relative_delta=relative_delta)
    ).analyze().payload


def main() -> None:
    experiment = SensitivityExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
