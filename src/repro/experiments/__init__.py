"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run(...)`` function returning structured data and
a ``main()`` that prints the same rows/series the paper reports. See
DESIGN.md's experiment index for the mapping.

Usage::

    python -m repro.experiments.fig8       # regenerate Fig 8 series
    python -m repro.experiments.table3     # regenerate Table 3
"""

from repro.experiments import common

__all__ = ["common"]
