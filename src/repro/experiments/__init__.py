"""Experiment harness: one registered :class:`Experiment` per artifact.

Every module defines an :class:`~repro.experiments.api.Experiment`
subclass registered with
:func:`~repro.experiments.api.register_experiment`: it declares its
simulation grid up front, analyzes results into structured records, and
renders text/JSON/JSONL/CSV independently. The modules also keep thin
``run(...)``/``main()`` deprecation shims returning their historical
types, so existing imports keep working.

Importing this package populates the registry; the import order below is
the registry's (and the CLI's) reading order.

Usage::

    python -m repro.experiments.fig8       # regenerate Fig 8 series
    python -m repro.experiments.table3     # regenerate Table 3

or, batched across experiments (shared points simulated once)::

    from repro.experiments.api import all_experiments, run_experiments
    results = run_experiments(all_experiments())
"""

from repro.experiments import api, common

# Reading order: design-point tables, analytical artifacts, then the
# simulation-driven figures and extension studies. This order defines
# `repro.experiments.api.experiment_ids()` and `repro run --all`.
from repro.experiments import (  # noqa: E402  (registration imports)
    table1,
    table2,
    table3,
    table4,
    motivation,
    latency_breakdown,
    validation,
    snoop,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table5,
    ablation,
    governor_study,
    proportionality,
    sensitivity,
    cluster,
)

__all__ = [
    "api",
    "common",
    "table1",
    "table2",
    "table3",
    "table4",
    "motivation",
    "latency_breakdown",
    "validation",
    "snoop",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table5",
    "ablation",
    "governor_study",
    "proportionality",
    "sensitivity",
    "cluster",
]
