"""Shared experiment plumbing: thin shims over :mod:`repro.sweep`.

Experiments share simulated points (Fig 10 reuses Fig 9's baselines;
Table 5 reuses Fig 8's sweep), so every point routes through the
process-wide :class:`~repro.sweep.SweepRunner`, which memoises on the
spec's canonical cache key. Configuring that runner (e.g. via
``python -m repro run --all --jobs 4``) parallelises every experiment
without touching this module's callers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.server import RunResult
from repro.sweep import ScenarioSpec, default_runner
from repro.sweep.runner import clear_shared_cache
from repro.sweep.spec import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    WORKLOAD_FACTORIES,
)
from repro.workloads.base import Workload

__all__ = [
    "DEFAULT_CORES",
    "DEFAULT_HORIZON",
    "DEFAULT_SEED",
    "get_workload",
    "run_point",
    "run_sweep",
    "prefetch_points",
    "clear_cache",
    "format_table",
    "pct",
]


def get_workload(name: str) -> Workload:
    """Fresh workload instance by name (fresh RNG streams)."""
    return WORKLOAD_FACTORIES[name]()


def run_point(
    workload_name: str,
    config_name: str,
    qps: float,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    governor: str = "menu",
) -> RunResult:
    """Simulate one (workload, configuration, rate) point, memoised."""
    spec = ScenarioSpec(
        workload=workload_name, config=config_name, qps=qps,
        horizon=horizon, cores=cores, seed=seed, governor=governor,
    )
    return default_runner().run(spec)


def run_sweep(
    workload_name: str,
    config_name: str,
    rates_qps: Sequence[float],
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    governor: str = "menu",
) -> List[RunResult]:
    """Simulate a rate sweep for one configuration."""
    specs = [
        ScenarioSpec(
            workload=workload_name, config=config_name, qps=qps,
            horizon=horizon, cores=cores, seed=seed, governor=governor,
        )
        for qps in rates_qps
    ]
    return default_runner().run_many(specs)


def prefetch_points(
    points: Iterable[Tuple[str, str, float]],
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> None:
    """Warm the shared cache for (workload, config, qps) triples.

    Experiments that loop over ``run_point`` call this up front with every
    point they will need; when the default runner is parallel the whole
    batch fans out at once, and the subsequent ``run_point`` calls are
    pure cache hits. With the serial runner this is a no-op cost-wise.
    """
    specs = [
        ScenarioSpec(
            workload=w, config=c, qps=q, horizon=horizon, cores=cores, seed=seed,
        )
        for w, c, q in points
    ]
    default_runner().run_many(specs)


def clear_cache() -> None:
    """Drop memoised runs (benchmarks measuring cold runs use this)."""
    clear_shared_cache()


# -- formatting helpers ------------------------------------------------------

def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table for experiment reports."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
