"""Shared experiment plumbing: cached simulation runs and formatting.

Experiments share simulated points (Fig 10 reuses Fig 9's baselines;
Table 5 reuses Fig 8's sweep), so runs are memoised per process keyed by
their full parameterisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.server import RunResult, named_configuration, simulate
from repro.workloads import (
    kafka_workload,
    memcached_workload,
    mysql_workload,
)
from repro.workloads.base import Workload

#: Default simulation horizon (seconds). Long enough for stable p99 at the
#: lowest Memcached rate (10 KQPS x 0.4 s = 4 000 requests).
DEFAULT_HORIZON = 0.4

#: Default core count: one socket of the Xeon Silver 4114.
DEFAULT_CORES = 10

#: Default seed: every experiment is reproducible bit-for-bit.
DEFAULT_SEED = 42

_WORKLOAD_FACTORIES = {
    "memcached": memcached_workload,
    "kafka": kafka_workload,
    "mysql": mysql_workload,
}

_run_cache: Dict[Tuple, RunResult] = {}


def get_workload(name: str) -> Workload:
    """Fresh workload instance by name (fresh RNG streams)."""
    return _WORKLOAD_FACTORIES[name]()


def run_point(
    workload_name: str,
    config_name: str,
    qps: float,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> RunResult:
    """Simulate one (workload, configuration, rate) point, memoised."""
    key = (workload_name, config_name, qps, horizon, cores, seed)
    if key not in _run_cache:
        _run_cache[key] = simulate(
            get_workload(workload_name),
            named_configuration(config_name),
            qps=qps,
            cores=cores,
            horizon=horizon,
            seed=seed,
        )
    return _run_cache[key]


def run_sweep(
    workload_name: str,
    config_name: str,
    rates_qps: Sequence[float],
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> List[RunResult]:
    """Simulate a rate sweep for one configuration."""
    return [
        run_point(workload_name, config_name, qps, horizon, cores, seed)
        for qps in rates_qps
    ]


def clear_cache() -> None:
    """Drop memoised runs (benchmarks measuring cold runs use this)."""
    _run_cache.clear()


# -- formatting helpers ------------------------------------------------------

def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table for experiment reports."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
