"""Energy-proportionality experiment (Sec 7.1's framing, extended).

Builds the power-vs-load curves of the baseline and AW hierarchies from
the Memcached sweep and reports the two proportionality metrics. The
expected outcome: AW widens the dynamic range and shrinks the
proportionality gap — the server gets *closer to energy proportional*
exactly in the low-utilisation band datacenters occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analytical.proportionality import (
    ProportionalityReport,
    analyze_curve,
    curve_from_results,
)
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
)
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.workloads.memcached import MEMCACHED_RATES_KQPS


@dataclass
class ProportionalityComparison:
    baseline: ProportionalityReport
    agilewatts: ProportionalityReport


@dataclass(frozen=True)
class ProportionalityParams(SweepParams):
    """Curve sweep knobs; ``rates_kqps=None`` uses the paper's sweep."""

    default_rates = tuple(MEMCACHED_RATES_KQPS)


@register_experiment
class ProportionalityExperiment(Experiment):
    id = "proportionality"
    title = "Energy-proportionality experiment (Sec 7.1's framing, extended)."
    artifact = "extension"
    Params = ProportionalityParams

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in ("baseline", "AW")
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        rates = self.params.resolved_rates()
        base = [self.point(results, self._spec("baseline", k)) for k in rates]
        aw = [self.point(results, self._spec("AW", k)) for k in rates]
        comparison = ProportionalityComparison(
            baseline=analyze_curve(curve_from_results(base)),
            agilewatts=analyze_curve(curve_from_results(aw)),
        )
        records = []
        for name, report in (
            ("baseline", comparison.baseline),
            ("AW", comparison.agilewatts),
        ):
            records.append(
                {
                    "config": name,
                    "lightest_load_power_w": report.curve[0][1],
                    "peak_power_w": report.curve[-1][1],
                    "dynamic_range": report.dynamic_range,
                    "proportionality_gap": report.proportionality_gap,
                    "curve": [
                        {"utilization": u, "power_w": p} for u, p in report.curve
                    ],
                }
            )
        return self.make_result(records=records, payload=comparison)

    def render_text(self, result: ExperimentResult) -> str:
        comparison: ProportionalityComparison = result.payload
        lines = ["Energy proportionality: baseline vs AW (Memcached sweep)"]
        rows = []
        for name, report in (
            ("baseline", comparison.baseline),
            ("AW", comparison.agilewatts),
        ):
            rows.append(
                [
                    name,
                    f"{report.curve[0][1]:.2f} W",
                    f"{report.curve[-1][1]:.2f} W",
                    f"{report.dynamic_range:.2f}x",
                    f"{report.proportionality_gap * 100:.1f}%",
                ]
            )
        lines.append(
            format_table(
                ["Config", "Lightest-load power", "Peak power", "Dynamic range",
                 "Proportionality gap"],
                rows,
            )
        )
        lines.append("")
        lines.append("curves (utilisation -> power/core):")
        for name, report in (
            ("baseline", comparison.baseline),
            ("AW", comparison.agilewatts),
        ):
            series = ", ".join(
                f"{u * 100:.0f}%:{p:.2f}W" for u, p in report.curve
            )
            lines.append(f"  {name}: {series}")
        return "\n".join(lines)

    def quick_params(self) -> ProportionalityParams:
        # Two rates: the proportionality metrics need a curve, not a point.
        return ProportionalityParams.quick(rates_kqps=(20.0, 100.0))


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> ProportionalityComparison:
    """Deprecated shim over :class:`ProportionalityExperiment`."""
    experiment = ProportionalityExperiment(
        ProportionalityParams(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed,
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = ProportionalityExperiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
