"""Energy-proportionality experiment (Sec 7.1's framing, extended).

Builds the power-vs-load curves of the baseline and AW hierarchies from
the Memcached sweep and reports the two proportionality metrics. The
expected outcome: AW widens the dynamic range and shrinks the
proportionality gap — the server gets *closer to energy proportional*
exactly in the low-utilisation band datacenters occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analytical.proportionality import (
    ProportionalityReport,
    analyze_curve,
    curve_from_results,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    prefetch_points,
    run_sweep,
)
from repro.workloads.memcached import MEMCACHED_RATES_KQPS


@dataclass
class ProportionalityComparison:
    baseline: ProportionalityReport
    agilewatts: ProportionalityReport


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> ProportionalityComparison:
    """Build and analyse both power-vs-load curves."""
    rates_kqps = rates_kqps if rates_kqps is not None else MEMCACHED_RATES_KQPS
    rates_qps = [k * 1000.0 for k in rates_kqps]
    prefetch_points(
        [("memcached", config, qps) for config in ("baseline", "AW") for qps in rates_qps],
        horizon, cores, seed,
    )
    base = run_sweep("memcached", "baseline", rates_qps, horizon, cores, seed)
    aw = run_sweep("memcached", "AW", rates_qps, horizon, cores, seed)
    return ProportionalityComparison(
        baseline=analyze_curve(curve_from_results(base)),
        agilewatts=analyze_curve(curve_from_results(aw)),
    )


def main() -> None:
    comparison = run()
    print("Energy proportionality: baseline vs AW (Memcached sweep)")
    rows = []
    for name, report in (
        ("baseline", comparison.baseline),
        ("AW", comparison.agilewatts),
    ):
        rows.append(
            [
                name,
                f"{report.curve[0][1]:.2f} W",
                f"{report.curve[-1][1]:.2f} W",
                f"{report.dynamic_range:.2f}x",
                f"{report.proportionality_gap * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["Config", "Lightest-load power", "Peak power", "Dynamic range",
             "Proportionality gap"],
            rows,
        )
    )
    print("\ncurves (utilisation -> power/core):")
    for name, report in (("baseline", comparison.baseline), ("AW", comparison.agilewatts)):
        series = ", ".join(f"{u * 100:.0f}%:{p:.2f}W" for u, p in report.curve)
        print(f"  {name}: {series}")


if __name__ == "__main__":
    main()
