"""Fig 11: the effect of idle states on Turbo performance.

Six configurations over the Memcached sweep — with and without Turbo, for
C6-disabled, C6+C1E-disabled, and AW's C6A-only hierarchy:

    NT_No_C6,           NT_No_C6_No_C1E,     NT_C6A_No_C6_No_C1E
    T_No_C6,            T_No_C6_No_C1E,      T_C6A_No_C6_No_C1E

Expected observations (Sec 7.3):

1. with Turbo off, disabling C1E helps latency (no 10 us transitions);
2. enabling Turbo while C1E is disabled does NOT improve performance —
   idle cores burn C1 power, so no thermal headroom accumulates;
3. with Turbo on, T_No_C6 ~= T_No_C6_No_C1E — C1E's transition overhead
   offsets its thermal-capacitance gains;
4. C6A + Turbo (the dashed green line) gets both: C1E-free latency *and*
   headroom, the best average/tail latency of the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
)
from repro.server import RunResult
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.units import seconds_to_us
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

NO_TURBO_CONFIGS = ["NT_No_C6", "NT_No_C6_No_C1E", "NT_C6A_No_C6_No_C1E"]
TURBO_CONFIGS = ["T_No_C6", "T_No_C6_No_C1E", "T_C6A_No_C6_No_C1E"]


@dataclass
class Fig11Sweep:
    """Latency series for all six configurations."""

    results: Dict[str, List[RunResult]]
    rates_kqps: Sequence[float]

    def avg_latency_us(self, config: str) -> List[float]:
        return [seconds_to_us(r.avg_latency_e2e) for r in self.results[config]]

    def tail_latency_us(self, config: str) -> List[float]:
        return [seconds_to_us(r.tail_latency_e2e) for r in self.results[config]]

    def turbo_grant_rates(self, config: str) -> List[float]:
        return [r.turbo_grant_rate for r in self.results[config]]


@dataclass(frozen=True)
class Fig11Params(SweepParams):
    """Fig 11 sweep knobs; ``rates_kqps=None`` uses the paper's sweep."""

    default_rates = tuple(MEMCACHED_RATES_KQPS)


@register_experiment
class Fig11Experiment(Experiment):
    id = "fig11"
    title = "Fig 11: the effect of idle states on Turbo performance."
    artifact = "Figure 11"
    Params = Fig11Params

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in NO_TURBO_CONFIGS + TURBO_CONFIGS
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        rates = self.params.resolved_rates()
        configs = NO_TURBO_CONFIGS + TURBO_CONFIGS
        by_config = {
            name: [self.point(results, self._spec(name, kqps)) for kqps in rates]
            for name in configs
        }
        sweep = Fig11Sweep(results=by_config, rates_kqps=list(rates))
        records = [
            run.to_record()
            for name in configs
            for run in by_config[name]
        ]
        return self.make_result(records=records, payload=sweep)

    def render_text(self, result: ExperimentResult) -> str:
        sweep: Fig11Sweep = result.payload
        lines: List[str] = []
        for title, configs, tail in [
            ("Fig 11(a): No Turbo - avg latency (us)", NO_TURBO_CONFIGS, False),
            ("Fig 11(b): Turbo - avg latency (us)", TURBO_CONFIGS, False),
            ("Fig 11(c): No Turbo - tail latency (us)", NO_TURBO_CONFIGS, True),
            ("Fig 11(d): Turbo - tail latency (us)", TURBO_CONFIGS, True),
        ]:
            lines.append(title)
            rows = []
            for i, kqps in enumerate(sweep.rates_kqps):
                vals = [
                    sweep.tail_latency_us(c)[i] if tail
                    else sweep.avg_latency_us(c)[i]
                    for c in configs
                ]
                rows.append([f"{kqps:.0f}K"] + [f"{v:.1f}" for v in vals])
            lines.append(format_table(["QPS"] + configs, rows))
            lines.append("")

        lines.append("Turbo grant rates (fraction of busy-period starts boosted)")
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            rows.append(
                [f"{kqps:.0f}K"]
                + [f"{sweep.turbo_grant_rates(c)[i] * 100:.0f}%"
                   for c in TURBO_CONFIGS]
            )
        lines.append(format_table(["QPS"] + TURBO_CONFIGS, rows))
        return "\n".join(lines)

    def quick_params(self) -> Fig11Params:
        return Fig11Params.quick()


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> Fig11Sweep:
    """Deprecated shim over :class:`Fig11Experiment`."""
    experiment = Fig11Experiment(
        Fig11Params(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed,
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = Fig11Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
