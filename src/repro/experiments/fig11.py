"""Fig 11: the effect of idle states on Turbo performance.

Six configurations over the Memcached sweep — with and without Turbo, for
C6-disabled, C6+C1E-disabled, and AW's C6A-only hierarchy:

    NT_No_C6,           NT_No_C6_No_C1E,     NT_C6A_No_C6_No_C1E
    T_No_C6,            T_No_C6_No_C1E,      T_C6A_No_C6_No_C1E

Expected observations (Sec 7.3):

1. with Turbo off, disabling C1E helps latency (no 10 us transitions);
2. enabling Turbo while C1E is disabled does NOT improve performance —
   idle cores burn C1 power, so no thermal headroom accumulates;
3. with Turbo on, T_No_C6 ~= T_No_C6_No_C1E — C1E's transition overhead
   offsets its thermal-capacitance gains;
4. C6A + Turbo (the dashed green line) gets both: C1E-free latency *and*
   headroom, the best average/tail latency of the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    prefetch_points,
    run_point,
)
from repro.server import RunResult
from repro.units import seconds_to_us
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

NO_TURBO_CONFIGS = ["NT_No_C6", "NT_No_C6_No_C1E", "NT_C6A_No_C6_No_C1E"]
TURBO_CONFIGS = ["T_No_C6", "T_No_C6_No_C1E", "T_C6A_No_C6_No_C1E"]


@dataclass
class Fig11Sweep:
    """Latency series for all six configurations."""

    results: Dict[str, List[RunResult]]
    rates_kqps: Sequence[float]

    def avg_latency_us(self, config: str) -> List[float]:
        return [seconds_to_us(r.avg_latency_e2e) for r in self.results[config]]

    def tail_latency_us(self, config: str) -> List[float]:
        return [seconds_to_us(r.tail_latency_e2e) for r in self.results[config]]

    def turbo_grant_rates(self, config: str) -> List[float]:
        return [r.turbo_grant_rate for r in self.results[config]]


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> Fig11Sweep:
    """Regenerate the Fig 11 sweep."""
    rates_kqps = rates_kqps if rates_kqps is not None else MEMCACHED_RATES_KQPS
    configs = NO_TURBO_CONFIGS + TURBO_CONFIGS
    prefetch_points(
        [("memcached", name, kqps * 1000.0) for name in configs for kqps in rates_kqps],
        horizon, cores, seed,
    )
    results = {
        name: [
            run_point("memcached", name, kqps * 1000.0, horizon, cores, seed)
            for kqps in rates_kqps
        ]
        for name in configs
    }
    return Fig11Sweep(results=results, rates_kqps=list(rates_kqps))


def main() -> None:
    sweep = run()
    for title, configs, tail in [
        ("Fig 11(a): No Turbo - avg latency (us)", NO_TURBO_CONFIGS, False),
        ("Fig 11(b): Turbo - avg latency (us)", TURBO_CONFIGS, False),
        ("Fig 11(c): No Turbo - tail latency (us)", NO_TURBO_CONFIGS, True),
        ("Fig 11(d): Turbo - tail latency (us)", TURBO_CONFIGS, True),
    ]:
        print(title)
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            vals = [
                sweep.tail_latency_us(c)[i] if tail else sweep.avg_latency_us(c)[i]
                for c in configs
            ]
            rows.append([f"{kqps:.0f}K"] + [f"{v:.1f}" for v in vals])
        print(format_table(["QPS"] + configs, rows))
        print()

    print("Turbo grant rates (fraction of busy-period starts boosted)")
    rows = []
    for i, kqps in enumerate(sweep.rates_kqps):
        rows.append(
            [f"{kqps:.0f}K"]
            + [f"{sweep.turbo_grant_rates(c)[i] * 100:.0f}%" for c in TURBO_CONFIGS]
        )
    print(format_table(["QPS"] + TURBO_CONFIGS, rows))


if __name__ == "__main__":
    main()
