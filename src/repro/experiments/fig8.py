"""Fig 8: AW vs. the baseline configuration on Memcached.

Four panels, regenerated over the 10-500 KQPS sweep with the baseline
configuration (P-states disabled, Turbo and C-states enabled):

(a) C-state residency of the baseline;
(b) AW average-power reduction and average/tail latency degradation when
    C1/C1E are replaced by C6A/C6AE;
(c) average response-time degradation, worst case (one transition per
    query) vs expected case (observed transitions), server-side and
    end-to-end;
(d) performance scalability from 2.0 to 2.2 GHz.

Expected shape: power savings decline from ~40-50% at low load to ~10-15%
at 500 KQPS with latency degradation < ~1.3%, and end-to-end degradation
negligible because the 117 us network latency dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cstates import C6A_EXTRA_TRANSITION
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    get_workload,
    pct,
    prefetch_points,
    run_point,
)
from repro.server import RunResult, named_configuration, simulate
from repro.server.config import ServerConfiguration
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

#: Replaced idle states whose transitions pay the ~100 ns AW overhead.
_REPLACED = ("C1", "C1E", "C6A", "C6AE")


@dataclass
class Fig8Point:
    """All Fig 8 observables at one request rate."""

    qps: float
    baseline: RunResult
    aw: RunResult
    power_reduction: float
    avg_latency_degradation: float
    tail_latency_degradation: float
    worst_case_server_degradation: float
    worst_case_e2e_degradation: float
    expected_server_degradation: float
    expected_e2e_degradation: float
    scalability: Optional[float] = None

    @property
    def residency(self) -> Dict[str, float]:
        """Panel (a): baseline C-state residency."""
        return self.baseline.residency


def _per_query_overhead(workload, derate: float, transitions_per_query: float) -> float:
    """Extra time a query pays under AW: slower scalable work + its share
    of C6A/C6AE transition overheads."""
    scalable_mean = workload.service.scalable.mean
    slowdown = scalable_mean * (1.0 / (1.0 - derate) - 1.0)
    return slowdown + transitions_per_query * C6A_EXTRA_TRANSITION


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    with_scalability: bool = True,
) -> List[Fig8Point]:
    """Regenerate all Fig 8 panels."""
    rates_kqps = rates_kqps if rates_kqps is not None else MEMCACHED_RATES_KQPS
    prefetch_points(
        [
            ("memcached", config, kqps * 1000.0)
            for config in ("baseline", "AW")
            for kqps in rates_kqps
        ],
        horizon, cores, seed,
    )
    workload = get_workload("memcached")
    aw_config = named_configuration("AW")
    derate = aw_config.frequency_derate

    points: List[Fig8Point] = []
    for kqps in rates_kqps:
        qps = kqps * 1000.0
        base = run_point("memcached", "baseline", qps, horizon, cores, seed)
        aw = run_point("memcached", "AW", qps, horizon, cores, seed)

        power_reduction = (
            (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
        )
        avg_deg = (aw.avg_latency - base.avg_latency) / base.avg_latency
        tail_deg = (aw.tail_latency - base.tail_latency) / base.tail_latency

        # Panel (c): worst case charges one transition per query.
        worst_extra = _per_query_overhead(workload, derate, transitions_per_query=1.0)
        base_server = base.avg_latency
        base_e2e = base.avg_latency_e2e
        worst_server = worst_extra / base_server
        worst_e2e = worst_extra / base_e2e
        # Expected case uses the transitions actually observed.
        replaced_rate = sum(
            base.transitions_per_second.get(n, 0.0) for n in _REPLACED
        ) * cores  # aggregate transitions/second over the node
        transitions_per_query = replaced_rate / qps if qps > 0 else 0.0
        expected_extra = _per_query_overhead(workload, derate, transitions_per_query)
        expected_server = expected_extra / base_server
        expected_e2e = expected_extra / base_e2e

        scalability = None
        if with_scalability:
            scalability = _measured_scalability(qps, horizon, cores, seed)

        points.append(
            Fig8Point(
                qps=qps,
                baseline=base,
                aw=aw,
                power_reduction=power_reduction,
                avg_latency_degradation=avg_deg,
                tail_latency_degradation=tail_deg,
                worst_case_server_degradation=worst_server,
                worst_case_e2e_degradation=worst_e2e,
                expected_server_degradation=expected_server,
                expected_e2e_degradation=expected_e2e,
                scalability=scalability,
            )
        )
    return points


def _measured_scalability(
    qps: float, horizon: float, cores: int, seed: int
) -> float:
    """Panel (d): performance scalability from 2.0 to 2.2 GHz, measured as
    the latency-based performance gain per unit frequency gain.

    Emulates 2.0 GHz by derating the 2.2 GHz baseline configuration by
    1 - 2.0/2.2.
    """
    derate_to_2ghz = 1.0 - 2.0 / 2.2
    slow_config = ServerConfiguration(
        name="baseline_2.0GHz",
        catalog=named_configuration("baseline").catalog,
        turbo_enabled=True,
        frequency_derate=derate_to_2ghz,
    )
    fast = run_point("memcached", "baseline", qps, horizon, cores, seed)
    slow = simulate(
        get_workload("memcached"), slow_config, qps=qps, cores=cores,
        horizon=horizon, seed=seed,
    )
    perf_gain = slow.avg_latency / fast.avg_latency - 1.0
    freq_gain = 2.2 / 2.0 - 1.0
    return max(0.0, perf_gain / freq_gain)


def average_power_reduction(points: Sequence[Fig8Point]) -> float:
    """The 'Avg' bar of Fig 8b (paper: ~23.5% vs its baseline)."""
    return sum(p.power_reduction for p in points) / len(points)


def main() -> None:
    points = run()
    states = sorted({s for p in points for s in p.residency})
    print("Fig 8(a): baseline C-state residency")
    rows = [
        [f"{p.qps / 1000:.0f}K"] + [pct(p.residency.get(s, 0.0), 0) for s in states]
        for p in points
    ]
    print(format_table(["QPS"] + states, rows))

    print("\nFig 8(b): AW power reduction and latency degradation")
    rows = [
        [
            f"{p.qps / 1000:.0f}K",
            pct(p.power_reduction),
            pct(p.avg_latency_degradation, 2),
            pct(p.tail_latency_degradation, 2),
        ]
        for p in points
    ]
    rows.append(["Avg", pct(average_power_reduction(points)), "", ""])
    print(format_table(["QPS", "AvgP reduction", "Avg lat deg", "Tail lat deg"], rows))

    print("\nFig 8(c): response-time degradation (worst vs expected case)")
    rows = [
        [
            f"{p.qps / 1000:.0f}K",
            pct(p.worst_case_e2e_degradation, 2),
            pct(p.worst_case_server_degradation, 2),
            pct(p.expected_e2e_degradation, 2),
            pct(p.expected_server_degradation, 2),
        ]
        for p in points
    ]
    print(
        format_table(
            ["QPS", "Worst e2e", "Worst server", "Expected e2e", "Expected server"],
            rows,
        )
    )

    if points[0].scalability is not None:
        print("\nFig 8(d): performance scalability (2.0 -> 2.2 GHz)")
        rows = [[f"{p.qps / 1000:.0f}K", pct(p.scalability, 0)] for p in points]
        print(format_table(["QPS", "Scalability"], rows))


if __name__ == "__main__":
    main()
