"""Fig 8: AW vs. the baseline configuration on Memcached.

Four panels, regenerated over the 10-500 KQPS sweep with the baseline
configuration (P-states disabled, Turbo and C-states enabled):

(a) C-state residency of the baseline;
(b) AW average-power reduction and average/tail latency degradation when
    C1/C1E are replaced by C6A/C6AE;
(c) average response-time degradation, worst case (one transition per
    query) vs expected case (observed transitions), server-side and
    end-to-end;
(d) performance scalability from 2.0 to 2.2 GHz.

Expected shape: power savings decline from ~40-50% at low load to ~10-15%
at 500 KQPS with latency degradation < ~1.3%, and end-to-end degradation
negligible because the 117 us network latency dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cstates import C6A_EXTRA_TRANSITION
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    get_workload,
    pct,
)
from repro.server import RunResult, named_configuration, simulate
from repro.server.config import ServerConfiguration
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

#: Replaced idle states whose transitions pay the ~100 ns AW overhead.
_REPLACED = ("C1", "C1E", "C6A", "C6AE")


@dataclass
class Fig8Point:
    """All Fig 8 observables at one request rate."""

    qps: float
    baseline: RunResult
    aw: RunResult
    power_reduction: float
    avg_latency_degradation: float
    tail_latency_degradation: float
    worst_case_server_degradation: float
    worst_case_e2e_degradation: float
    expected_server_degradation: float
    expected_e2e_degradation: float
    scalability: Optional[float] = None

    @property
    def residency(self) -> Dict[str, float]:
        """Panel (a): baseline C-state residency."""
        return self.baseline.residency


def _per_query_overhead(workload, derate: float, transitions_per_query: float) -> float:
    """Extra time a query pays under AW: slower scalable work + its share
    of C6A/C6AE transition overheads."""
    scalable_mean = workload.service.scalable.mean
    slowdown = scalable_mean * (1.0 / (1.0 - derate) - 1.0)
    return slowdown + transitions_per_query * C6A_EXTRA_TRANSITION


@dataclass(frozen=True)
class Fig8Params(SweepParams):
    """Fig 8 sweep knobs; ``rates_kqps=None`` uses the paper's sweep."""

    with_scalability: bool = True

    default_rates = tuple(MEMCACHED_RATES_KQPS)


@register_experiment
class Fig8Experiment(Experiment):
    id = "fig8"
    title = "Fig 8: AW vs. the baseline configuration on Memcached."
    artifact = "Figure 8"
    Params = Fig8Params

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in ("baseline", "AW")
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        p = self.params
        workload = get_workload("memcached")
        aw_config = named_configuration("AW")
        derate = aw_config.frequency_derate

        points: List[Fig8Point] = []
        for kqps in p.resolved_rates():
            qps = kqps * 1000.0
            base = self.point(results, self._spec("baseline", kqps))
            aw = self.point(results, self._spec("AW", kqps))

            power_reduction = (
                (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
            )
            avg_deg = (aw.avg_latency - base.avg_latency) / base.avg_latency
            tail_deg = (aw.tail_latency - base.tail_latency) / base.tail_latency

            # Panel (c): worst case charges one transition per query.
            worst_extra = _per_query_overhead(
                workload, derate, transitions_per_query=1.0
            )
            base_server = base.avg_latency
            base_e2e = base.avg_latency_e2e
            worst_server = worst_extra / base_server
            worst_e2e = worst_extra / base_e2e
            # Expected case uses the transitions actually observed.
            replaced_rate = sum(
                base.transitions_per_second.get(n, 0.0) for n in _REPLACED
            ) * p.cores  # aggregate transitions/second over the node
            transitions_per_query = replaced_rate / qps if qps > 0 else 0.0
            expected_extra = _per_query_overhead(
                workload, derate, transitions_per_query
            )
            expected_server = expected_extra / base_server
            expected_e2e = expected_extra / base_e2e

            scalability = None
            if p.with_scalability:
                scalability = _measured_scalability(
                    qps, p.horizon, p.cores, p.seed, fast=base
                )

            points.append(
                Fig8Point(
                    qps=qps,
                    baseline=base,
                    aw=aw,
                    power_reduction=power_reduction,
                    avg_latency_degradation=avg_deg,
                    tail_latency_degradation=tail_deg,
                    worst_case_server_degradation=worst_server,
                    worst_case_e2e_degradation=worst_e2e,
                    expected_server_degradation=expected_server,
                    expected_e2e_degradation=expected_e2e,
                    scalability=scalability,
                )
            )
        records = [
            {
                "qps": point.qps,
                "power_reduction": point.power_reduction,
                "avg_latency_degradation": point.avg_latency_degradation,
                "tail_latency_degradation": point.tail_latency_degradation,
                "worst_case_server_degradation": point.worst_case_server_degradation,
                "worst_case_e2e_degradation": point.worst_case_e2e_degradation,
                "expected_server_degradation": point.expected_server_degradation,
                "expected_e2e_degradation": point.expected_e2e_degradation,
                "scalability": point.scalability,
                "baseline": point.baseline.to_record(),
                "aw": point.aw.to_record(),
            }
            for point in points
        ]
        notes = [
            f"average power reduction: {pct(average_power_reduction(points))} "
            "(paper: ~23.5% vs its baseline)"
        ]
        return self.make_result(records=records, payload=points, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        points: List[Fig8Point] = result.payload
        states = sorted({s for p in points for s in p.residency})
        lines = ["Fig 8(a): baseline C-state residency"]
        rows = [
            [f"{p.qps / 1000:.0f}K"]
            + [pct(p.residency.get(s, 0.0), 0) for s in states]
            for p in points
        ]
        lines.append(format_table(["QPS"] + states, rows))

        lines.append("")
        lines.append("Fig 8(b): AW power reduction and latency degradation")
        rows = [
            [
                f"{p.qps / 1000:.0f}K",
                pct(p.power_reduction),
                pct(p.avg_latency_degradation, 2),
                pct(p.tail_latency_degradation, 2),
            ]
            for p in points
        ]
        rows.append(["Avg", pct(average_power_reduction(points)), "", ""])
        lines.append(
            format_table(
                ["QPS", "AvgP reduction", "Avg lat deg", "Tail lat deg"], rows
            )
        )

        lines.append("")
        lines.append("Fig 8(c): response-time degradation (worst vs expected case)")
        rows = [
            [
                f"{p.qps / 1000:.0f}K",
                pct(p.worst_case_e2e_degradation, 2),
                pct(p.worst_case_server_degradation, 2),
                pct(p.expected_e2e_degradation, 2),
                pct(p.expected_server_degradation, 2),
            ]
            for p in points
        ]
        lines.append(
            format_table(
                ["QPS", "Worst e2e", "Worst server", "Expected e2e",
                 "Expected server"],
                rows,
            )
        )

        if points and points[0].scalability is not None:
            lines.append("")
            lines.append("Fig 8(d): performance scalability (2.0 -> 2.2 GHz)")
            rows = [[f"{p.qps / 1000:.0f}K", pct(p.scalability, 0)] for p in points]
            lines.append(format_table(["QPS", "Scalability"], rows))
        return "\n".join(lines)

    def quick_params(self) -> Fig8Params:
        return Fig8Params.quick(with_scalability=False)


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    with_scalability: bool = True,
) -> List[Fig8Point]:
    """Deprecated shim over :class:`Fig8Experiment`."""
    experiment = Fig8Experiment(
        Fig8Params(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed,
            with_scalability=with_scalability,
        )
    )
    return experiment.execute().payload


def _measured_scalability(
    qps: float, horizon: float, cores: int, seed: int,
    fast: Optional[RunResult] = None,
) -> float:
    """Panel (d): performance scalability from 2.0 to 2.2 GHz, measured as
    the latency-based performance gain per unit frequency gain.

    Emulates 2.0 GHz by derating the 2.2 GHz baseline configuration by
    1 - 2.0/2.2. The 2.0 GHz point uses an ad-hoc configuration, so it
    runs outside the declarative grid (direct, uncached simulation).
    """
    derate_to_2ghz = 1.0 - 2.0 / 2.2
    slow_config = ServerConfiguration(
        name="baseline_2.0GHz",
        catalog=named_configuration("baseline").catalog,
        turbo_enabled=True,
        frequency_derate=derate_to_2ghz,
    )
    if fast is None:
        from repro.experiments.common import run_point

        fast = run_point("memcached", "baseline", qps, horizon, cores, seed)
    slow = simulate(
        get_workload("memcached"), slow_config, qps=qps, cores=cores,
        horizon=horizon, seed=seed,
    )
    perf_gain = slow.avg_latency / fast.avg_latency - 1.0
    freq_gain = 2.2 / 2.0 - 1.0
    return max(0.0, perf_gain / freq_gain)


def average_power_reduction(points: Sequence[Fig8Point]) -> float:
    """The 'Avg' bar of Fig 8b (paper: ~23.5% vs its baseline)."""
    return sum(p.power_reduction for p in points) / len(points)


def main() -> None:
    experiment = Fig8Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
