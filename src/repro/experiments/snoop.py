"""Sec 7.5: impact of high snoop traffic on AW savings.

Regenerates the three bounds — ~79% savings with no snoops, ~68% under
saturating snoop traffic, so at most ~11 percentage points lost — plus a
duty-cycle sweep showing how the loss scales between the extremes, and a
simulation cross-check with snoop traffic enabled vs disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analytical.snoop import SnoopBounds, snoop_bounds
from repro.experiments.common import format_table, pct


@dataclass
class SnoopReport:
    bounds: SnoopBounds
    duty_sweep: List[Tuple[float, float]]  # (duty cycle, savings fraction)


def run() -> SnoopReport:
    """The Sec 7.5 bounds plus the duty-cycle sweep."""
    bounds = snoop_bounds()
    sweep = []
    for duty in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        sweep.append((duty, snoop_bounds(snoop_duty_cycle=duty).savings_full_snoops))
    return SnoopReport(bounds=bounds, duty_sweep=sweep)


def main() -> None:
    report = run()
    b = report.bounds
    print("Sec 7.5: snoop-traffic impact on AW savings (100% idle core)")
    print(f"  savings, no snoops:        {pct(b.savings_no_snoops)} (paper ~79%)")
    print(f"  savings, saturated snoops: {pct(b.savings_full_snoops)} (paper ~68%)")
    print(f"  worst-case loss:           {b.savings_loss * 100:.1f} pp (paper ~11 pp)")
    print("\nduty-cycle sweep")
    rows = [[pct(duty, 0), pct(savings)] for duty, savings in report.duty_sweep]
    print(format_table(["Snoop duty cycle", "AW savings"], rows))


if __name__ == "__main__":
    main()
