"""Sec 7.5: impact of high snoop traffic on AW savings.

Regenerates the three bounds — ~79% savings with no snoops, ~68% under
saturating snoop traffic, so at most ~11 percentage points lost — plus a
duty-cycle sweep showing how the loss scales between the extremes, and a
simulation cross-check with snoop traffic enabled vs disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analytical.snoop import SnoopBounds, snoop_bounds
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table, pct


@dataclass
class SnoopReport:
    bounds: SnoopBounds
    duty_sweep: List[Tuple[float, float]]  # (duty cycle, savings fraction)


@register_experiment
class SnoopExperiment(Experiment):
    id = "snoop"
    title = "Sec 7.5: impact of high snoop traffic on AW savings."
    artifact = "Section 7.5"

    def analyze(self, results=None) -> ExperimentResult:
        bounds = snoop_bounds()
        sweep = []
        for duty in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
            sweep.append(
                (duty, snoop_bounds(snoop_duty_cycle=duty).savings_full_snoops)
            )
        report = SnoopReport(bounds=bounds, duty_sweep=sweep)
        records: List[dict] = [
            {
                "section": "bounds",
                "savings_no_snoops": bounds.savings_no_snoops,
                "savings_full_snoops": bounds.savings_full_snoops,
                "savings_loss_pp": bounds.savings_loss * 100,
            }
        ]
        for duty, savings in sweep:
            records.append(
                {"section": "duty_sweep", "snoop_duty_cycle": duty,
                 "savings": savings}
            )
        return self.make_result(records=records, payload=report)

    def render_text(self, result: ExperimentResult) -> str:
        report: SnoopReport = result.payload
        b = report.bounds
        lines = ["Sec 7.5: snoop-traffic impact on AW savings (100% idle core)"]
        lines.append(f"  savings, no snoops:        {pct(b.savings_no_snoops)} (paper ~79%)")
        lines.append(f"  savings, saturated snoops: {pct(b.savings_full_snoops)} (paper ~68%)")
        lines.append(f"  worst-case loss:           {b.savings_loss * 100:.1f} pp (paper ~11 pp)")
        lines.append("")
        lines.append("duty-cycle sweep")
        rows = [[pct(duty, 0), pct(savings)] for duty, savings in report.duty_sweep]
        lines.append(format_table(["Snoop duty cycle", "AW savings"], rows))
        return "\n".join(lines)


def run() -> SnoopReport:
    """Deprecated shim over :class:`SnoopExperiment`."""
    return SnoopExperiment().analyze().payload


def main() -> None:
    experiment = SnoopExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
