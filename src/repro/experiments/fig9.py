"""Fig 9: the three vendor-tuned configurations on Memcached.

Sweeps NT_Baseline (Turbo off), NT_No_C6 (Turbo and C6 off) and
NT_No_C6_No_C1E (Turbo, C6 and C1E off) and reports (a) average latency,
(b) tail latency, (c) package power, (d) C-state residency.

Expected shape (Sec 7.2): NT_No_C6_No_C1E has the lowest latency but the
highest power across the sweep — disabling C1E removes its 10 us
transition penalty but parks idle cores in power-hungry C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    pct,
)
from repro.server import RunResult
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.units import seconds_to_us
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

#: The three Sec 7.2 configurations, in the paper's order.
TUNED_CONFIGS = ["NT_Baseline", "NT_No_C6", "NT_No_C6_No_C1E"]


@dataclass
class Fig9Sweep:
    """Results of the tuned-configuration sweep, keyed by config name."""

    results: Dict[str, List[RunResult]]
    rates_kqps: Sequence[float]

    def series(self, config: str) -> List[RunResult]:
        return self.results[config]


@dataclass(frozen=True)
class Fig9Params(SweepParams):
    """Fig 9 sweep knobs; ``None`` fields use the paper's defaults."""

    configs: Optional[Tuple[str, ...]] = None

    default_rates = tuple(MEMCACHED_RATES_KQPS)

    def resolved_configs(self) -> Tuple[str, ...]:
        if self.configs is None:
            return tuple(TUNED_CONFIGS)
        return tuple(self.configs)


@register_experiment
class Fig9Experiment(Experiment):
    id = "fig9"
    title = "Fig 9: the three vendor-tuned configurations on Memcached."
    artifact = "Figure 9"
    Params = Fig9Params

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in self.params.resolved_configs()
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        rates = self.params.resolved_rates()
        configs = self.params.resolved_configs()
        by_config = {
            name: [self.point(results, self._spec(name, kqps)) for kqps in rates]
            for name in configs
        }
        sweep = Fig9Sweep(results=by_config, rates_kqps=list(rates))
        records = [
            run.to_record()
            for name in configs
            for run in by_config[name]
        ]
        return self.make_result(records=records, payload=sweep)

    def render_text(self, result: ExperimentResult) -> str:
        sweep: Fig9Sweep = result.payload
        configs = list(sweep.results)
        lines = ["Fig 9(a): average end-to-end latency (us)"]
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            rows.append(
                [f"{kqps:.0f}K"]
                + [f"{seconds_to_us(sweep.results[c][i].avg_latency_e2e):.1f}"
                   for c in configs]
            )
        lines.append(format_table(["QPS"] + configs, rows))

        lines.append("")
        lines.append("Fig 9(b): tail (p99) end-to-end latency (us)")
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            rows.append(
                [f"{kqps:.0f}K"]
                + [f"{seconds_to_us(sweep.results[c][i].tail_latency_e2e):.1f}"
                   for c in configs]
            )
        lines.append(format_table(["QPS"] + configs, rows))

        lines.append("")
        lines.append("Fig 9(c): package power (W)")
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            rows.append(
                [f"{kqps:.0f}K"]
                + [f"{sweep.results[c][i].package_power:.1f}" for c in configs]
            )
        lines.append(format_table(["QPS"] + configs, rows))

        lines.append("")
        lines.append("Fig 9(d): C-state residency per configuration")
        states = sorted(
            {s for series in sweep.results.values() for r in series
             for s in r.residency}
        )
        rows = []
        for i, kqps in enumerate(sweep.rates_kqps):
            for c in configs:
                r = sweep.results[c][i]
                rows.append(
                    [f"{kqps:.0f}K", c]
                    + [pct(r.residency.get(s, 0.0), 0) for s in states]
                )
        lines.append(format_table(["QPS", "Config"] + states, rows))
        return "\n".join(lines)

    def quick_params(self) -> Fig9Params:
        return Fig9Params.quick()


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    configs: Sequence[str] = None,
) -> Fig9Sweep:
    """Deprecated shim over :class:`Fig9Experiment`."""
    experiment = Fig9Experiment(
        Fig9Params(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed,
            configs=None if configs is None else tuple(configs),
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = Fig9Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
