"""Fig 9: the three vendor-tuned configurations on Memcached.

Sweeps NT_Baseline (Turbo off), NT_No_C6 (Turbo and C6 off) and
NT_No_C6_No_C1E (Turbo, C6 and C1E off) and reports (a) average latency,
(b) tail latency, (c) package power, (d) C-state residency.

Expected shape (Sec 7.2): NT_No_C6_No_C1E has the lowest latency but the
highest power across the sweep — disabling C1E removes its 10 us
transition penalty but parks idle cores in power-hungry C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    pct,
    prefetch_points,
    run_point,
)
from repro.server import RunResult
from repro.units import seconds_to_us
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

#: The three Sec 7.2 configurations, in the paper's order.
TUNED_CONFIGS = ["NT_Baseline", "NT_No_C6", "NT_No_C6_No_C1E"]


@dataclass
class Fig9Sweep:
    """Results of the tuned-configuration sweep, keyed by config name."""

    results: Dict[str, List[RunResult]]
    rates_kqps: Sequence[float]

    def series(self, config: str) -> List[RunResult]:
        return self.results[config]


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    configs: Sequence[str] = None,
) -> Fig9Sweep:
    """Regenerate the Fig 9 sweep."""
    rates_kqps = rates_kqps if rates_kqps is not None else MEMCACHED_RATES_KQPS
    configs = configs if configs is not None else TUNED_CONFIGS
    prefetch_points(
        [("memcached", name, kqps * 1000.0) for name in configs for kqps in rates_kqps],
        horizon, cores, seed,
    )
    results = {
        name: [
            run_point("memcached", name, kqps * 1000.0, horizon, cores, seed)
            for kqps in rates_kqps
        ]
        for name in configs
    }
    return Fig9Sweep(results=results, rates_kqps=list(rates_kqps))


def main() -> None:
    sweep = run()
    configs = list(sweep.results)

    print("Fig 9(a): average end-to-end latency (us)")
    rows = []
    for i, kqps in enumerate(sweep.rates_kqps):
        rows.append(
            [f"{kqps:.0f}K"]
            + [f"{seconds_to_us(sweep.results[c][i].avg_latency_e2e):.1f}" for c in configs]
        )
    print(format_table(["QPS"] + configs, rows))

    print("\nFig 9(b): tail (p99) end-to-end latency (us)")
    rows = []
    for i, kqps in enumerate(sweep.rates_kqps):
        rows.append(
            [f"{kqps:.0f}K"]
            + [f"{seconds_to_us(sweep.results[c][i].tail_latency_e2e):.1f}" for c in configs]
        )
    print(format_table(["QPS"] + configs, rows))

    print("\nFig 9(c): package power (W)")
    rows = []
    for i, kqps in enumerate(sweep.rates_kqps):
        rows.append(
            [f"{kqps:.0f}K"]
            + [f"{sweep.results[c][i].package_power:.1f}" for c in configs]
        )
    print(format_table(["QPS"] + configs, rows))

    print("\nFig 9(d): C-state residency per configuration")
    states = sorted(
        {s for series in sweep.results.values() for r in series for s in r.residency}
    )
    rows = []
    for i, kqps in enumerate(sweep.rates_kqps):
        for c in configs:
            r = sweep.results[c][i]
            rows.append(
                [f"{kqps:.0f}K", c] + [pct(r.residency.get(s, 0.0), 0) for s in states]
            )
    print(format_table(["QPS", "Config"] + states, rows))


if __name__ == "__main__":
    main()
