"""Fig 10: AW's power and latency reduction over the tuned configurations.

Compares the AW hierarchy (Turbo disabled, matching the tuned configs)
against NT_Baseline, NT_No_C6 and NT_No_C6_No_C1E across the Memcached
sweep.

Expected shape (Sec 7.2): AW reduces power against *all three* —
the paper's averages are 23.5% / 28.6% / 35.3% with a peak around 70% at
low load vs the C1-parked NT_No_C6_No_C1E — while its latency is
comparable to or better than every tuned config (it beats the C6/C1E
configs by up to ~5%/~26% avg/tail and trails NT_No_C6_No_C1E by < 1%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    pct,
)
from repro.experiments.fig9 import TUNED_CONFIGS
from repro.server.metrics import RunResult, compare_power
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.workloads.memcached import MEMCACHED_RATES_KQPS

#: The AW configuration matched against the no-Turbo tuned configs. The
#: paper's Fig 10 AW point is the recommended hierarchy of Sec 7.3: C6A
#: enabled, C6 and C1E (and thus C6AE) disabled — that is what lets AW
#: *beat* NT_Baseline/NT_No_C6 on latency (no 10 us / 133 us transitions)
#: while staying within 1% of NT_No_C6_No_C1E.
AW_CONFIG = "NT_C6A_No_C6_No_C1E"


def _e2e_latency_reduction(base: RunResult, other: RunResult, tail: bool) -> float:
    """Fractional end-to-end latency reduction (positive: other faster).

    Fig 9/10/11 latencies are end-to-end (the 117 us network component
    included), so reductions are computed on the same basis.
    """
    base_lat = base.tail_latency_e2e if tail else base.avg_latency_e2e
    new_lat = other.tail_latency_e2e if tail else other.avg_latency_e2e
    if base_lat <= 0:
        return 0.0
    return (base_lat - new_lat) / base_lat


@dataclass
class Fig10Point:
    """AW-vs-tuned comparisons at one request rate."""

    qps: float
    aw: RunResult
    power_reduction: Dict[str, float]
    avg_latency_reduction: Dict[str, float]
    tail_latency_reduction: Dict[str, float]


@dataclass(frozen=True)
class Fig10Params(SweepParams):
    """Fig 10 sweep knobs; ``rates_kqps=None`` uses the paper's sweep."""

    default_rates = tuple(MEMCACHED_RATES_KQPS)


@register_experiment
class Fig10Experiment(Experiment):
    id = "fig10"
    title = "Fig 10: AW's power and latency reduction over the tuned configurations."
    artifact = "Figure 10"
    Params = Fig10Params

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        # Superset of Fig 9's grid at equal params: the tuned baselines
        # are shared, so a batched cross-experiment run simulates them
        # once for both figures.
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in [AW_CONFIG] + TUNED_CONFIGS
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        points: List[Fig10Point] = []
        for kqps in self.params.resolved_rates():
            qps = kqps * 1000.0
            aw = self.point(results, self._spec(AW_CONFIG, kqps))
            power: Dict[str, float] = {}
            avg_lat: Dict[str, float] = {}
            tail_lat: Dict[str, float] = {}
            for config in TUNED_CONFIGS:
                base = self.point(results, self._spec(config, kqps))
                power[config] = compare_power(base, aw)
                avg_lat[config] = _e2e_latency_reduction(base, aw, tail=False)
                tail_lat[config] = _e2e_latency_reduction(base, aw, tail=True)
            points.append(
                Fig10Point(
                    qps=qps,
                    aw=aw,
                    power_reduction=power,
                    avg_latency_reduction=avg_lat,
                    tail_latency_reduction=tail_lat,
                )
            )
        records = [
            {
                "qps": point.qps,
                "aw_config": AW_CONFIG,
                "power_reduction": point.power_reduction,
                "avg_latency_reduction": point.avg_latency_reduction,
                "tail_latency_reduction": point.tail_latency_reduction,
                "aw": point.aw.to_record(),
            }
            for point in points
        ]
        notes = [
            f"peak power reduction: {pct(peak_power_reduction(points))} "
            "(paper: up to ~71%)"
        ]
        return self.make_result(records=records, payload=points, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        points: List[Fig10Point] = result.payload
        lines = ["Fig 10: AW (no Turbo) vs tuned configurations"]
        rows = []
        for p in points:
            rows.append(
                [f"{p.qps / 1000:.0f}K"]
                + [pct(p.power_reduction[c]) for c in TUNED_CONFIGS]
                + [pct(p.avg_latency_reduction[c]) for c in TUNED_CONFIGS]
                + [pct(p.tail_latency_reduction[c]) for c in TUNED_CONFIGS]
            )
        avgs = average_power_reduction(points)
        rows.append(["Avg"] + [pct(avgs[c]) for c in TUNED_CONFIGS] + [""] * 6)
        headers = (
            ["QPS"]
            + [f"dP {c}" for c in TUNED_CONFIGS]
            + [f"dAvgLat {c}" for c in TUNED_CONFIGS]
            + [f"dTailLat {c}" for c in TUNED_CONFIGS]
        )
        lines.append(format_table(headers, rows))
        lines.append("")
        lines.append(
            f"peak power reduction: {pct(peak_power_reduction(points))} "
            "(paper: up to ~71%)"
        )
        return "\n".join(lines)

    def quick_params(self) -> Fig10Params:
        return Fig10Params.quick()


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> List[Fig10Point]:
    """Deprecated shim over :class:`Fig10Experiment`."""
    experiment = Fig10Experiment(
        Fig10Params(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed,
        )
    )
    return experiment.execute().payload


def average_power_reduction(points: Sequence[Fig10Point]) -> Dict[str, float]:
    """The per-config 'Avg' bars (paper: 23.5% / 28.6% / 35.3%)."""
    out: Dict[str, float] = {}
    for config in TUNED_CONFIGS:
        out[config] = sum(p.power_reduction[config] for p in points) / len(points)
    return out


def peak_power_reduction(points: Sequence[Fig10Point]) -> float:
    """The headline 'up to' number (paper: up to ~71%)."""
    return max(p.power_reduction[c] for p in points for c in TUNED_CONFIGS)


def main() -> None:
    experiment = Fig10Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
