"""Table 5: yearly datacenter cost savings per 100K servers.

Feeds the per-core power deltas of the Fig 8 Memcached sweep (baseline
minus AW) into the Sec 7.6 cost model: $0.125/kWh, 20 cores per server,
100 000 servers. The paper reports $0.33M-$0.59M per year with the peak
at mid-low load where AW's absolute watt savings are largest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analytical.cost import CostModel, yearly_savings_musd
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    SweepParams,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
)
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.workloads.memcached import MEMCACHED_RATES_KQPS


@dataclass(frozen=True)
class Table5Params(SweepParams):
    """Cost-model sweep knobs; ``rates_kqps=None`` uses the paper's sweep."""

    cost_model: CostModel = field(default_factory=CostModel)

    default_rates = tuple(MEMCACHED_RATES_KQPS)


@register_experiment
class Table5Experiment(Experiment):
    id = "table5"
    title = "Table 5: yearly datacenter cost savings per 100K servers."
    artifact = "Table 5"
    Params = Table5Params

    def _spec(self, config: str, kqps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload="memcached", config=config, qps=kqps * 1000.0,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        # Identical to Fig 8's grid at equal params: a batched run
        # simulates the sweep once for both artifacts.
        return ScenarioGrid([
            self._spec(config, kqps)
            for config in ("baseline", "AW")
            for kqps in self.params.resolved_rates()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        deltas: Dict[str, float] = {}
        for kqps in self.params.resolved_rates():
            base = self.point(results, self._spec("baseline", kqps))
            aw = self.point(results, self._spec("AW", kqps))
            deltas[f"{kqps:.0f}K"] = max(
                0.0, base.avg_core_power - aw.avg_core_power
            )
        savings = yearly_savings_musd(deltas, self.params.cost_model)
        records = [
            {
                "qps_label": label,
                "power_delta_w": deltas[label],
                "savings_musd_per_year": musd,
            }
            for label, musd in savings.items()
        ]
        return self.make_result(
            records=records, payload=savings,
            notes=["paper band: $0.33M - $0.59M per year"],
        )

    def render_text(self, result: ExperimentResult) -> str:
        savings: Dict[str, float] = result.payload
        lines = ["Table 5: AW yearly cost savings ($M per 100K servers)"]
        rows = [[label, f"{musd:.2f}"] for label, musd in savings.items()]
        lines.append(format_table(["QPS", "Savings ($M/yr)"], rows))
        lines.append("")
        lines.append("paper band: $0.33M - $0.59M per year")
        return "\n".join(lines)

    def quick_params(self) -> Table5Params:
        return Table5Params.quick()


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = CostModel(),
) -> Dict[str, float]:
    """Deprecated shim over :class:`Table5Experiment`."""
    experiment = Table5Experiment(
        Table5Params(
            rates_kqps=None if rates_kqps is None else tuple(rates_kqps),
            horizon=horizon, cores=cores, seed=seed, cost_model=cost_model,
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = Table5Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
