"""Table 5: yearly datacenter cost savings per 100K servers.

Feeds the per-core power deltas of the Fig 8 Memcached sweep (baseline
minus AW) into the Sec 7.6 cost model: $0.125/kWh, 20 cores per server,
100 000 servers. The paper reports $0.33M-$0.59M per year with the peak
at mid-low load where AW's absolute watt savings are largest.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analytical.cost import CostModel, yearly_savings_musd
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_HORIZON,
    DEFAULT_SEED,
    format_table,
    prefetch_points,
    run_point,
)
from repro.workloads.memcached import MEMCACHED_RATES_KQPS


def run(
    rates_kqps: Sequence[float] = None,
    horizon: float = DEFAULT_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    cost_model: CostModel = CostModel(),
) -> Dict[str, float]:
    """$M saved per year per 100K servers, keyed by QPS label."""
    rates_kqps = rates_kqps if rates_kqps is not None else MEMCACHED_RATES_KQPS
    prefetch_points(
        [
            ("memcached", config, kqps * 1000.0)
            for config in ("baseline", "AW")
            for kqps in rates_kqps
        ],
        horizon, cores, seed,
    )
    deltas: Dict[str, float] = {}
    for kqps in rates_kqps:
        qps = kqps * 1000.0
        base = run_point("memcached", "baseline", qps, horizon, cores, seed)
        aw = run_point("memcached", "AW", qps, horizon, cores, seed)
        deltas[f"{kqps:.0f}K"] = max(0.0, base.avg_core_power - aw.avg_core_power)
    return yearly_savings_musd(deltas, cost_model)


def main() -> None:
    savings = run()
    print("Table 5: AW yearly cost savings ($M per 100K servers)")
    rows = [[label, f"{musd:.2f}"] for label, musd in savings.items()]
    print(format_table(["QPS", "Savings ($M/yr)"], rows))
    print("\npaper band: $0.33M - $0.59M per year")


if __name__ == "__main__":
    main()
