"""Fig 13: Apache Kafka evaluation at low/high rates.

Same panel structure as Fig 12 (Kafka at two operating points):

(a) baseline residency — >60% C6 at the low rate;
(b) residency with C6 disabled;
(c) tail/average latency reduction from disabling C6 (~4-5% at low rate,
    ~none at high rate where C6 was never entered);
(d) AW C6A average power reduction vs C6-disabled (>56% at both rates in
    the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.experiments.api import register_experiment
from repro.experiments.common import DEFAULT_CORES, DEFAULT_SEED
from repro.experiments.fig12 import (
    Fig12Experiment,
    Fig12Params,
    Fig12Point,
    _freeze_rates,
)
from repro.workloads.kafka import KAFKA_RATES

#: Kafka batches are mid-weight; 1 s covers thousands of requests.
KAFKA_HORIZON = 1.0


@dataclass(frozen=True)
class Fig13Params(Fig12Params):
    """Fig 12's knobs with Kafka defaults."""

    horizon: float = KAFKA_HORIZON
    workload_name: str = "kafka"

    def resolved_rates(self) -> "Dict[str, float]":
        if self.rates is None:
            return dict(KAFKA_RATES)
        return dict(self.rates)


@register_experiment
class Fig13Experiment(Fig12Experiment):
    id = "fig13"
    title = "Fig 13: Apache Kafka evaluation at low/high rates."
    artifact = "Figure 13"
    Params = Fig13Params


def run(
    rates: Mapping[str, float] = None,
    horizon: float = KAFKA_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> List[Fig12Point]:
    """Deprecated shim over :class:`Fig13Experiment`."""
    experiment = Fig13Experiment(
        Fig13Params(
            rates=_freeze_rates(rates), horizon=horizon, cores=cores, seed=seed,
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = Fig13Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
