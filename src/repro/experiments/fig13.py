"""Fig 13: Apache Kafka evaluation at low/high rates.

Same panel structure as Fig 12 (Kafka at two operating points):

(a) baseline residency — >60% C6 at the low rate;
(b) residency with C6 disabled;
(c) tail/average latency reduction from disabling C6 (~4-5% at low rate,
    ~none at high rate where C6 was never entered);
(d) AW C6A average power reduction vs C6-disabled (>56% at both rates in
    the paper).
"""

from __future__ import annotations

from typing import List, Mapping

from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_SEED,
    format_table,
    pct,
)
from repro.experiments.fig12 import Fig12Point, run as _run_shared
from repro.workloads.kafka import KAFKA_RATES

#: Kafka batches are mid-weight; 1 s covers thousands of requests.
KAFKA_HORIZON = 1.0


def run(
    rates: Mapping[str, float] = None,
    horizon: float = KAFKA_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
) -> List[Fig12Point]:
    """Regenerate the Fig 13 operating points (shares Fig 12 plumbing)."""
    rates = rates if rates is not None else KAFKA_RATES
    return _run_shared(
        rates=rates, horizon=horizon, cores=cores, seed=seed, workload_name="kafka"
    )


def main() -> None:
    points = run()
    states = sorted({s for p in points for s in p.baseline_residency})
    print("Fig 13(a): baseline C-state residency")
    rows = [
        [p.label] + [pct(p.baseline_residency.get(s, 0.0), 0) for s in states]
        for p in points
    ]
    print(format_table(["Rate"] + states, rows))

    states_b = sorted({s for p in points for s in p.no_c6_residency})
    print("\nFig 13(b): residency with C6 disabled")
    rows = [
        [p.label] + [pct(p.no_c6_residency.get(s, 0.0), 0) for s in states_b]
        for p in points
    ]
    print(format_table(["Rate"] + states_b, rows))

    print("\nFig 13(c): latency reduction from disabling C6")
    rows = [
        [p.label, pct(p.tail_latency_reduction), pct(p.avg_latency_reduction)]
        for p in points
    ]
    print(format_table(["Rate", "Tail lat", "Avg lat"], rows))

    print("\nFig 13(d): AW C6A average power reduction vs C6-disabled")
    rows = [[p.label, pct(p.aw_power_reduction)] for p in points]
    print(format_table(["Rate", "AvgP reduction"], rows))


if __name__ == "__main__":
    main()
