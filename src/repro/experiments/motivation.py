"""Sec 2 motivation: the Eq. 1 upper-bound savings table.

Reproduces the 23% / 41% / 55% power-saving opportunities for the search
workload at 50%/25% load and the key-value store at 20% load.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analytical.motivation import motivation_table
from repro.experiments.common import format_table, pct


def run() -> List[Tuple[str, float, float]]:
    """(description, baseline AvgP watts, savings fraction) rows."""
    return motivation_table()


def main() -> None:
    rows = [
        [description, f"{base:.3f} W", pct(savings)]
        for description, base, savings in run()
    ]
    print("Sec 2 (Eq. 1): ideal agile-deep-state savings opportunity")
    print(format_table(["Workload", "Baseline AvgP", "Savings bound"], rows))
    print("\npaper: 23% / 41% / 55%")


if __name__ == "__main__":
    main()
