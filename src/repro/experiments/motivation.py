"""Sec 2 motivation: the Eq. 1 upper-bound savings table.

Reproduces the 23% / 41% / 55% power-saving opportunities for the search
workload at 50%/25% load and the key-value store at 20% load.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analytical.motivation import motivation_table
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table, pct


@register_experiment
class MotivationExperiment(Experiment):
    id = "motivation"
    title = "Sec 2 motivation: the Eq. 1 upper-bound savings table."
    artifact = "Section 2"

    def analyze(self, results=None) -> ExperimentResult:
        rows = motivation_table()
        records = [
            {
                "workload": description,
                "baseline_avg_power_w": base,
                "savings_bound": savings,
            }
            for description, base, savings in rows
        ]
        return self.make_result(
            records=records, payload=rows, notes=["paper: 23% / 41% / 55%"]
        )

    def render_text(self, result: ExperimentResult) -> str:
        rows = [
            [description, f"{base:.3f} W", pct(savings)]
            for description, base, savings in result.payload
        ]
        lines = ["Sec 2 (Eq. 1): ideal agile-deep-state savings opportunity"]
        lines.append(format_table(["Workload", "Baseline AvgP", "Savings bound"], rows))
        lines.append("")
        lines.append("paper: 23% / 41% / 55%")
        return "\n".join(lines)


def run() -> List[Tuple[str, float, float]]:
    """Deprecated shim over :class:`MotivationExperiment`."""
    return MotivationExperiment().analyze().payload


def main() -> None:
    experiment = MotivationExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
