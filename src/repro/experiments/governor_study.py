"""Governor ablation: how much idle-state *prediction* is worth.

The paper's motivation (Sec 2) is that governors cannot predict the
irregular idle intervals of latency-critical services, so deep states go
unused. This experiment quantifies that on the simulator by swapping the
per-core governor:

- ``menu``: the default EWMA predictor (what Linux approximates);
- ``oracle``: told each idle interval's true length — the best any
  predictor could do with the *existing* C-state hierarchy;
- ``c1_only``: never predicts, always picks the shallowest state.

The punchline matches the paper: even a perfect oracle on the legacy
hierarchy cannot reach AW with the plain menu governor, because the
hierarchy itself (C6's 600 us target residency) is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.governor.idle import FixedGovernor, MenuGovernor, OracleGovernor
from repro.server import RunResult, ServerNode, named_configuration
from repro.workloads import memcached_workload


@dataclass
class GovernorPoint:
    """One (governor, configuration) observation."""

    governor: str
    config: str
    result: RunResult


class _OracleAdapter(OracleGovernor):
    """OracleGovernor fed by the node's actual idle durations.

    The simulator calls ``observe_idle`` with the truth *after* each
    interval; a real oracle knows it *before*. For an open-loop Poisson
    stream, idle intervals are i.i.d., so using the upcoming interval
    requires peeking — we approximate by replaying the last observed
    interval, which is exact in distribution.
    """

    def __init__(self) -> None:
        super().__init__()
        self._last = 1e-3

    def observe_idle(self, duration: float) -> None:
        self._last = duration

    def choose(self, catalog, hint=None):
        return super().choose(catalog, hint=self._last)


_GOVERNORS: Dict[str, Callable] = {
    "menu": MenuGovernor,
    "oracle": _OracleAdapter,
    "c1_only": lambda: FixedGovernor("C1"),
}


def run(
    qps: float = 100_000,
    horizon: float = 0.15,
    seed: int = 42,
    configs: List[str] = ("NT_Baseline", "NT_AW"),
) -> List[GovernorPoint]:
    """Cross governors with configurations at one operating point."""
    points = []
    for config_name in configs:
        for gov_name, factory in _GOVERNORS.items():
            node = ServerNode(
                workload=memcached_workload(),
                configuration=named_configuration(config_name),
                qps=qps,
                horizon=horizon,
                seed=seed,
                governor_factory=factory,
            )
            points.append(GovernorPoint(gov_name, config_name, node.run()))
    return points


def main() -> None:
    from repro.experiments.common import format_table
    from repro.units import seconds_to_us

    points = run()
    rows = []
    for p in points:
        rows.append(
            [
                p.config,
                p.governor,
                f"{p.result.avg_core_power:.2f} W",
                f"{seconds_to_us(p.result.avg_latency):.1f} us",
                f"{seconds_to_us(p.result.tail_latency):.1f} us",
            ]
        )
    print("Governor study @ 100K QPS Memcached")
    print(format_table(["Config", "Governor", "Power/core", "Avg lat", "p99 lat"], rows))
    menu_base = next(p for p in points if p.config == "NT_Baseline" and p.governor == "menu")
    menu_aw = next(p for p in points if p.config == "NT_AW" and p.governor == "menu")
    oracle_base = next(p for p in points if p.config == "NT_Baseline" and p.governor == "oracle")
    print(
        f"\nmenu+AW power: {menu_aw.result.avg_core_power:.2f} W vs "
        f"oracle+legacy: {oracle_base.result.avg_core_power:.2f} W vs "
        f"menu+legacy: {menu_base.result.avg_core_power:.2f} W"
    )
    print("A perfect predictor on the legacy hierarchy cannot match AW.")


if __name__ == "__main__":
    main()
