"""Governor ablation: how much idle-state *prediction* is worth.

The paper's motivation (Sec 2) is that governors cannot predict the
irregular idle intervals of latency-critical services, so deep states go
unused. This experiment quantifies that on the simulator by sweeping the
governor axis of :class:`~repro.sweep.ScenarioSpec`:

- ``menu``: the default EWMA predictor (what Linux approximates);
- ``oracle``: told each idle interval's true length — the best any
  predictor could do with the *existing* C-state hierarchy (the
  :class:`~repro.governor.idle.ReplayOracleGovernor` adapter, registered
  in :data:`repro.sweep.spec.GOVERNOR_FACTORIES`);
- ``c1_only``: never predicts, always picks the shallowest state.

All points route through the process-wide sweep runner, so the study is
memoised, store-backed and parallelisable like every other experiment.

The punchline matches the paper: even a perfect oracle on the legacy
hierarchy cannot reach AW with the plain menu governor, because the
hierarchy itself (C6's 600 us target residency) is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    register_experiment,
)
from repro.governor.idle import ReplayOracleGovernor
from repro.server import RunResult
from repro.sweep import ScenarioGrid, ScenarioSpec

#: Backwards-compatible alias: the adapter used to live in this module.
_OracleAdapter = ReplayOracleGovernor

#: Governor names swept, in presentation order (all are import-time
#: entries of GOVERNOR_FACTORIES, so they work under any executor).
GOVERNORS: Sequence[str] = ("menu", "oracle", "c1_only")


@dataclass
class GovernorPoint:
    """One (governor, configuration) observation."""

    governor: str
    config: str
    result: RunResult


@dataclass(frozen=True)
class GovernorStudyParams:
    qps: float = 100_000
    horizon: float = 0.15
    seed: int = 42
    configs: Tuple[str, ...] = ("NT_Baseline", "NT_AW")
    governors: Tuple[str, ...] = tuple(GOVERNORS)


@register_experiment
class GovernorStudyExperiment(Experiment):
    id = "governor_study"
    title = "Governor ablation: how much idle-state prediction is worth."
    artifact = "extension"
    Params = GovernorStudyParams

    def _specs(self) -> List[ScenarioSpec]:
        p = self.params
        return [
            ScenarioSpec(
                workload="memcached", config=config_name, qps=p.qps,
                horizon=p.horizon, seed=p.seed, governor=governor_name,
            )
            for config_name in p.configs
            for governor_name in p.governors
        ]

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid(self._specs())

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        specs = self._specs()
        points = [
            GovernorPoint(spec.governor, spec.config,
                          self.point(results, spec))
            for spec in specs
        ]
        records = [
            {"governor": point.governor, **point.result.to_record()}
            for point in points
        ]
        return self.make_result(records=records, payload=points)

    def render_text(self, result: ExperimentResult) -> str:
        from repro.experiments.common import format_table
        from repro.units import seconds_to_us

        points: List[GovernorPoint] = result.payload
        rows = []
        for p in points:
            rows.append(
                [
                    p.config,
                    p.governor,
                    f"{p.result.avg_core_power:.2f} W",
                    f"{seconds_to_us(p.result.avg_latency):.1f} us",
                    f"{seconds_to_us(p.result.tail_latency):.1f} us",
                ]
            )
        lines = [f"Governor study @ {self.params.qps / 1000:.0f}K QPS Memcached"]
        lines.append(
            format_table(
                ["Config", "Governor", "Power/core", "Avg lat", "p99 lat"], rows
            )
        )
        def find(config: str, governor: str):
            return next(
                (p for p in points
                 if p.config == config and p.governor == governor),
                None,
            )

        menu_base = find("NT_Baseline", "menu")
        menu_aw = find("NT_AW", "menu")
        oracle_base = find("NT_Baseline", "oracle")
        # The headline comparison only exists when the default points were
        # swept; custom configs/governors still get the table above.
        if menu_base and menu_aw and oracle_base:
            lines.append("")
            lines.append(
                f"menu+AW power: {menu_aw.result.avg_core_power:.2f} W vs "
                f"oracle+legacy: {oracle_base.result.avg_core_power:.2f} W vs "
                f"menu+legacy: {menu_base.result.avg_core_power:.2f} W"
            )
            lines.append(
                "A perfect predictor on the legacy hierarchy cannot match AW."
            )
        return "\n".join(lines)

    def quick_params(self) -> GovernorStudyParams:
        return GovernorStudyParams(qps=20_000, horizon=0.02)


def run(
    qps: float = 100_000,
    horizon: float = 0.15,
    seed: int = 42,
    configs: Sequence[str] = ("NT_Baseline", "NT_AW"),
    governors: Sequence[str] = GOVERNORS,
) -> List[GovernorPoint]:
    """Deprecated shim over :class:`GovernorStudyExperiment`."""
    experiment = GovernorStudyExperiment(
        GovernorStudyParams(
            qps=qps, horizon=horizon, seed=seed,
            configs=tuple(configs), governors=tuple(governors),
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = GovernorStudyExperiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
