"""Governor ablation: how much idle-state *prediction* is worth.

The paper's motivation (Sec 2) is that governors cannot predict the
irregular idle intervals of latency-critical services, so deep states go
unused. This experiment quantifies that on the simulator by sweeping the
governor axis of :class:`~repro.sweep.ScenarioSpec`:

- ``menu``: the default EWMA predictor (what Linux approximates);
- ``oracle``: told each idle interval's true length — the best any
  predictor could do with the *existing* C-state hierarchy (the
  :class:`~repro.governor.idle.ReplayOracleGovernor` adapter, registered
  in :data:`repro.sweep.spec.GOVERNOR_FACTORIES`);
- ``c1_only``: never predicts, always picks the shallowest state.

All points route through the process-wide sweep runner, so the study is
memoised, store-backed and parallelisable like every other experiment.

The punchline matches the paper: even a perfect oracle on the legacy
hierarchy cannot reach AW with the plain menu governor, because the
hierarchy itself (C6's 600 us target residency) is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.governor.idle import ReplayOracleGovernor
from repro.server import RunResult
from repro.sweep import ScenarioSpec, default_runner

#: Backwards-compatible alias: the adapter used to live in this module.
_OracleAdapter = ReplayOracleGovernor

#: Governor names swept, in presentation order (all are import-time
#: entries of GOVERNOR_FACTORIES, so they work under any executor).
GOVERNORS: Sequence[str] = ("menu", "oracle", "c1_only")


@dataclass
class GovernorPoint:
    """One (governor, configuration) observation."""

    governor: str
    config: str
    result: RunResult


def run(
    qps: float = 100_000,
    horizon: float = 0.15,
    seed: int = 42,
    configs: Sequence[str] = ("NT_Baseline", "NT_AW"),
    governors: Sequence[str] = GOVERNORS,
) -> List[GovernorPoint]:
    """Cross governors with configurations at one operating point."""
    specs = [
        ScenarioSpec(
            workload="memcached", config=config_name, qps=qps,
            horizon=horizon, seed=seed, governor=governor_name,
        )
        for config_name in configs
        for governor_name in governors
    ]
    results = default_runner().run_many(specs)
    return [
        GovernorPoint(spec.governor, spec.config, result)
        for spec, result in zip(specs, results)
    ]


def main() -> None:
    from repro.experiments.common import format_table
    from repro.units import seconds_to_us

    points = run()
    rows = []
    for p in points:
        rows.append(
            [
                p.config,
                p.governor,
                f"{p.result.avg_core_power:.2f} W",
                f"{seconds_to_us(p.result.avg_latency):.1f} us",
                f"{seconds_to_us(p.result.tail_latency):.1f} us",
            ]
        )
    print("Governor study @ 100K QPS Memcached")
    print(format_table(["Config", "Governor", "Power/core", "Avg lat", "p99 lat"], rows))
    menu_base = next(p for p in points if p.config == "NT_Baseline" and p.governor == "menu")
    menu_aw = next(p for p in points if p.config == "NT_AW" and p.governor == "menu")
    oracle_base = next(p for p in points if p.config == "NT_Baseline" and p.governor == "oracle")
    print(
        f"\nmenu+AW power: {menu_aw.result.avg_core_power:.2f} W vs "
        f"oracle+legacy: {oracle_base.result.avg_core_power:.2f} W vs "
        f"menu+legacy: {menu_base.result.avg_core_power:.2f} W"
    )
    print("A perfect predictor on the legacy hierarchy cannot match AW.")


if __name__ == "__main__":
    main()
