"""Table 4: comparison of core power-gating schemes.

The literature rows are fixed citations; the AW row's wake-up overhead is
*computed* from the five-zone staggered wake model (Sec 5.3) rather than
quoted, demonstrating that gating ~70% of an OoO core on core-idle events
wakes in ~70 ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.ufpg import UFPG
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table
from repro.units import seconds_to_ns

#: (citation, core type, trigger, gated blocks, wake-up overhead) rows for
#: the prior schemes in the paper's Table 4.
_PRIOR_SCHEMES: List[Tuple[str, str, str, str, str]] = [
    ("[109]", "In-order CPU", "Cache miss", "Register file", "5 cycles"),
    ("[102]", "In-order CPU", "Cache miss", "Core", "10 ns"),
    ("[47]", "OoO CPU", "Execution unit idle", "Execution units", "9 cycles"),
    ("[110]", "OoO CPU", "Register file bank idle", "Register file bank", "17 cycles"),
    ("[111]", "GPU", "Register subarray unused", "Register subarray", "10 cycles"),
    ("[35]", "OoO CPU", "AVX execution unit idle", "Intel AVX execution unit", "~10-15 ns"),
]


@dataclass(frozen=True)
class Table4Params:
    """Wake model used for the AW row; ``None`` uses the defaults."""

    ufpg: Optional[UFPG] = None


@register_experiment
class Table4Experiment(Experiment):
    id = "table4"
    title = "Table 4: comparison of core power-gating schemes."
    artifact = "Table 4"
    Params = Table4Params

    def analyze(self, results=None) -> ExperimentResult:
        ufpg = self.params.ufpg
        ufpg = ufpg if ufpg is not None else UFPG()
        rows = list(_PRIOR_SCHEMES)
        rows.append(
            (
                "AW (this work)",
                "OoO CPU",
                "Core idle",
                "Most of core units",
                f"~{seconds_to_ns(ufpg.wake_latency):.0f} ns",
            )
        )
        records = [
            {
                "technique": technique,
                "core_type": core_type,
                "trigger": trigger,
                "power_gated_blocks": blocks,
                "wake_up_overhead": overhead,
            }
            for technique, core_type, trigger, blocks, overhead in rows
        ]
        return self.make_result(records=records, payload=rows)

    def render_text(self, result: ExperimentResult) -> str:
        lines = ["Table 4: comparison of core power-gating schemes"]
        lines.append(
            format_table(
                ["Technique", "Core type", "Trigger", "Power-gated blocks",
                 "Wake-up overhead"],
                result.payload,
            )
        )
        return "\n".join(lines)


def run(ufpg: UFPG = None) -> List[Tuple[str, str, str, str, str]]:
    """Deprecated shim over :class:`Table4Experiment`."""
    return Table4Experiment(Table4Params(ufpg=ufpg)).analyze().payload


def main() -> None:
    experiment = Table4Experiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
