"""Fig 12: MySQL (sysbench OLTP) evaluation at low/mid/high rates.

Panels:

(a) C-state residency of the baseline (C1 + C6 enabled, Turbo on);
(b) residency with C6 disabled — all that C6 time becomes C1;
(c) tail and average latency reduction from disabling C6;
(d) AW average power reduction (C6A replacing that C1 time) vs the
    C6-disabled configuration.

Expected shape (Sec 7.4): the baseline holds >= 40% C6 residency at every
rate, disabling C6 improves latency by ~4-10%, and C6A then recovers
~22-56% average power that the C6-disable threw away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ResultMap,
    register_experiment,
)
from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_SEED,
    format_table,
    pct,
)
from repro.server import RunResult
from repro.server.metrics import compare_power
from repro.sweep import ScenarioGrid, ScenarioSpec
from repro.workloads.mysql import MYSQL_RATES

#: MySQL transactions are long; a longer horizon keeps request counts up.
MYSQL_HORIZON = 4.0

BASELINE = "T_Baseline_No_C1E"
NO_C6 = "T_No_C6_No_C1E"
AW = "T_C6A_No_C6_No_C1E"


@dataclass
class Fig12Point:
    """All Fig 12 observables at one operating point."""

    label: str
    qps: float
    baseline: RunResult
    no_c6: RunResult
    aw: RunResult

    @property
    def baseline_residency(self) -> Dict[str, float]:
        return self.baseline.residency

    @property
    def no_c6_residency(self) -> Dict[str, float]:
        return self.no_c6.residency

    @property
    def avg_latency_reduction(self) -> float:
        """Panel (c): average end-to-end latency gain from disabling C6."""
        base = self.baseline.avg_latency_e2e
        return (base - self.no_c6.avg_latency_e2e) / base if base > 0 else 0.0

    @property
    def tail_latency_reduction(self) -> float:
        base = self.baseline.tail_latency_e2e
        return (base - self.no_c6.tail_latency_e2e) / base if base > 0 else 0.0

    @property
    def aw_power_reduction(self) -> float:
        """Panel (d): AW's C6A vs the C6-disabled configuration."""
        return compare_power(self.no_c6, self.aw)


@dataclass(frozen=True)
class Fig12Params:
    """Operating-point knobs; ``rates=None`` uses the paper's rates."""

    rates: Optional[Tuple[Tuple[str, float], ...]] = None
    horizon: float = MYSQL_HORIZON
    cores: int = DEFAULT_CORES
    seed: int = DEFAULT_SEED
    workload_name: str = "mysql"

    def resolved_rates(self) -> "Dict[str, float]":
        if self.rates is None:
            return dict(MYSQL_RATES)
        return dict(self.rates)


def _freeze_rates(rates: Optional[Mapping[str, float]]):
    return None if rates is None else tuple(rates.items())


@register_experiment
class Fig12Experiment(Experiment):
    id = "fig12"
    title = "Fig 12: MySQL (sysbench OLTP) evaluation at low/mid/high rates."
    artifact = "Figure 12"
    Params = Fig12Params

    def _spec(self, config: str, qps: float) -> ScenarioSpec:
        p = self.params
        return ScenarioSpec(
            workload=p.workload_name, config=config, qps=qps,
            horizon=p.horizon, cores=p.cores, seed=p.seed,
        )

    def grid(self) -> ScenarioGrid:
        return ScenarioGrid([
            self._spec(config, qps)
            for config in (BASELINE, NO_C6, AW)
            for qps in self.params.resolved_rates().values()
        ])

    def analyze(self, results: Optional[ResultMap] = None) -> ExperimentResult:
        points = []
        for label, qps in self.params.resolved_rates().items():
            points.append(
                Fig12Point(
                    label=label,
                    qps=qps,
                    baseline=self.point(results, self._spec(BASELINE, qps)),
                    no_c6=self.point(results, self._spec(NO_C6, qps)),
                    aw=self.point(results, self._spec(AW, qps)),
                )
            )
        records = [
            {
                "label": point.label,
                "qps": point.qps,
                "avg_latency_reduction": point.avg_latency_reduction,
                "tail_latency_reduction": point.tail_latency_reduction,
                "aw_power_reduction": point.aw_power_reduction,
                "baseline": point.baseline.to_record(),
                "no_c6": point.no_c6.to_record(),
                "aw": point.aw.to_record(),
            }
            for point in points
        ]
        return self.make_result(records=records, payload=points)

    def render_text(self, result: ExperimentResult) -> str:
        points: List[Fig12Point] = result.payload
        number = self.artifact.split()[-1]
        states = sorted({s for p in points for s in p.baseline_residency})
        lines = [f"Fig {number}(a): baseline C-state residency"]
        rows = [
            [p.label] + [pct(p.baseline_residency.get(s, 0.0), 0) for s in states]
            for p in points
        ]
        lines.append(format_table(["Rate"] + states, rows))

        states_b = sorted({s for p in points for s in p.no_c6_residency})
        lines.append("")
        lines.append(f"Fig {number}(b): residency with C6 disabled")
        rows = [
            [p.label] + [pct(p.no_c6_residency.get(s, 0.0), 0) for s in states_b]
            for p in points
        ]
        lines.append(format_table(["Rate"] + states_b, rows))

        lines.append("")
        lines.append(f"Fig {number}(c): latency reduction from disabling C6")
        rows = [
            [p.label, pct(p.tail_latency_reduction), pct(p.avg_latency_reduction)]
            for p in points
        ]
        lines.append(format_table(["Rate", "Tail lat", "Avg lat"], rows))

        lines.append("")
        lines.append(f"Fig {number}(d): AW C6A average power reduction vs C6-disabled")
        rows = [[p.label, pct(p.aw_power_reduction)] for p in points]
        lines.append(format_table(["Rate", "AvgP reduction"], rows))
        return "\n".join(lines)

    def quick_params(self) -> Fig12Params:
        rates = self.params.resolved_rates()
        label, qps = next(iter(rates.items()))
        return type(self.params)(
            rates=((label, qps),), horizon=0.5,
            workload_name=self.params.workload_name,
        )


def run(
    rates: Mapping[str, float] = None,
    horizon: float = MYSQL_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    workload_name: str = "mysql",
) -> List[Fig12Point]:
    """Deprecated shim over :class:`Fig12Experiment`."""
    experiment = Fig12Experiment(
        Fig12Params(
            rates=_freeze_rates(rates), horizon=horizon, cores=cores,
            seed=seed, workload_name=workload_name,
        )
    )
    return experiment.execute().payload


def main() -> None:
    experiment = Fig12Experiment()
    print(experiment.render_text(experiment.execute()))


if __name__ == "__main__":
    main()
