"""Fig 12: MySQL (sysbench OLTP) evaluation at low/mid/high rates.

Panels:

(a) C-state residency of the baseline (C1 + C6 enabled, Turbo on);
(b) residency with C6 disabled — all that C6 time becomes C1;
(c) tail and average latency reduction from disabling C6;
(d) AW average power reduction (C6A replacing that C1 time) vs the
    C6-disabled configuration.

Expected shape (Sec 7.4): the baseline holds >= 40% C6 residency at every
rate, disabling C6 improves latency by ~4-10%, and C6A then recovers
~22-56% average power that the C6-disable threw away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.experiments.common import (
    DEFAULT_CORES,
    DEFAULT_SEED,
    format_table,
    pct,
    prefetch_points,
    run_point,
)
from repro.server import RunResult
from repro.server.metrics import compare_power
from repro.workloads.mysql import MYSQL_RATES

#: MySQL transactions are long; a longer horizon keeps request counts up.
MYSQL_HORIZON = 4.0

BASELINE = "T_Baseline_No_C1E"
NO_C6 = "T_No_C6_No_C1E"
AW = "T_C6A_No_C6_No_C1E"


@dataclass
class Fig12Point:
    """All Fig 12 observables at one operating point."""

    label: str
    qps: float
    baseline: RunResult
    no_c6: RunResult
    aw: RunResult

    @property
    def baseline_residency(self) -> Dict[str, float]:
        return self.baseline.residency

    @property
    def no_c6_residency(self) -> Dict[str, float]:
        return self.no_c6.residency

    @property
    def avg_latency_reduction(self) -> float:
        """Panel (c): average end-to-end latency gain from disabling C6."""
        base = self.baseline.avg_latency_e2e
        return (base - self.no_c6.avg_latency_e2e) / base if base > 0 else 0.0

    @property
    def tail_latency_reduction(self) -> float:
        base = self.baseline.tail_latency_e2e
        return (base - self.no_c6.tail_latency_e2e) / base if base > 0 else 0.0

    @property
    def aw_power_reduction(self) -> float:
        """Panel (d): AW's C6A vs the C6-disabled configuration."""
        return compare_power(self.no_c6, self.aw)


def run(
    rates: Mapping[str, float] = None,
    horizon: float = MYSQL_HORIZON,
    cores: int = DEFAULT_CORES,
    seed: int = DEFAULT_SEED,
    workload_name: str = "mysql",
) -> List[Fig12Point]:
    """Regenerate the Fig 12 operating points."""
    rates = rates if rates is not None else MYSQL_RATES
    prefetch_points(
        [
            (workload_name, config, qps)
            for config in (BASELINE, NO_C6, AW)
            for qps in rates.values()
        ],
        horizon, cores, seed,
    )
    points = []
    for label, qps in rates.items():
        points.append(
            Fig12Point(
                label=label,
                qps=qps,
                baseline=run_point(workload_name, BASELINE, qps, horizon, cores, seed),
                no_c6=run_point(workload_name, NO_C6, qps, horizon, cores, seed),
                aw=run_point(workload_name, AW, qps, horizon, cores, seed),
            )
        )
    return points


def main() -> None:
    points = run()
    states = sorted({s for p in points for s in p.baseline_residency})
    print("Fig 12(a): baseline C-state residency")
    rows = [
        [p.label] + [pct(p.baseline_residency.get(s, 0.0), 0) for s in states]
        for p in points
    ]
    print(format_table(["Rate"] + states, rows))

    states_b = sorted({s for p in points for s in p.no_c6_residency})
    print("\nFig 12(b): residency with C6 disabled")
    rows = [
        [p.label] + [pct(p.no_c6_residency.get(s, 0.0), 0) for s in states_b]
        for p in points
    ]
    print(format_table(["Rate"] + states_b, rows))

    print("\nFig 12(c): latency reduction from disabling C6")
    rows = [
        [p.label, pct(p.tail_latency_reduction), pct(p.avg_latency_reduction)]
        for p in points
    ]
    print(format_table(["Rate", "Tail lat", "Avg lat"], rows))

    print("\nFig 12(d): AW C6A average power reduction vs C6-disabled")
    rows = [[p.label, pct(p.aw_power_reduction)] for p in points]
    print(format_table(["Rate", "AvgP reduction"], rows))


if __name__ == "__main__":
    main()
