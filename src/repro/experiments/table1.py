"""Table 1: the C-state hierarchy with AW's new states.

Regenerates the merged hierarchy the paper's Table 1 shows — the Skylake
baseline states (C0/C1/C1E/C6) interleaved with AW's C6A/C6AE, each with
its transition time, target residency and per-core power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import skylake_baseline_catalog
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table
from repro.units import pretty_power, pretty_time


@dataclass(frozen=True)
class Table1Params:
    """Design point regenerated; ``None`` uses the paper's defaults."""

    design: Optional[AgileWattsDesign] = None


def _rows(design: AgileWattsDesign) -> List[Tuple[str, str, str, str]]:
    """Rows of (state, transition time, target residency, power/core) in
    the paper's Table 1 order."""
    baseline = skylake_baseline_catalog()
    aw = design.catalog()

    def row(catalog, name: str) -> Tuple[str, str, str, str]:
        state = catalog.get(name)
        freq = f" ({state.frequency.value})" if state.frequency else ""
        if state.is_active:
            return (f"{name}{freq}", "N/A", "N/A", pretty_power(state.power_watts))
        return (
            f"{name}{freq}",
            pretty_time(state.transition_time),
            pretty_time(state.target_residency),
            pretty_power(state.power_watts),
        )

    from repro.core.cstates import C0_PN_POWER

    return [
        row(baseline, "C0"),
        ("C0 (Pn)", "N/A", "N/A", pretty_power(C0_PN_POWER)),
        row(baseline, "C1"),
        row(aw, "C6A"),
        row(baseline, "C1E"),
        row(aw, "C6AE"),
        row(baseline, "C6"),
    ]


@register_experiment
class Table1Experiment(Experiment):
    id = "table1"
    title = "Table 1: the C-state hierarchy with AW's new states."
    artifact = "Table 1"
    Params = Table1Params

    def analyze(self, results=None) -> ExperimentResult:
        design = self.params.design
        rows = _rows(design if design is not None else AgileWattsDesign())
        records = [
            {
                "state": state,
                "transition_time": transition,
                "target_residency": residency,
                "power_per_core": power,
            }
            for state, transition, residency, power in rows
        ]
        return self.make_result(records=records, payload=rows)

    def render_text(self, result: ExperimentResult) -> str:
        lines = ["Table 1: core C-states (Skylake baseline + AW's C6A/C6AE)"]
        lines.append(
            format_table(
                ["Core C-state", "Transition time", "Target residency",
                 "Power per core"],
                result.payload,
            )
        )
        return "\n".join(lines)


def run(design: AgileWattsDesign = None) -> List[Tuple[str, str, str, str]]:
    """Deprecated shim over :class:`Table1Experiment`."""
    return Table1Experiment(Table1Params(design=design)).analyze().payload


def main() -> None:
    experiment = Table1Experiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
