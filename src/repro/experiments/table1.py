"""Table 1: the C-state hierarchy with AW's new states.

Regenerates the merged hierarchy the paper's Table 1 shows — the Skylake
baseline states (C0/C1/C1E/C6) interleaved with AW's C6A/C6AE, each with
its transition time, target residency and per-core power.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import skylake_baseline_catalog
from repro.experiments.common import format_table
from repro.units import pretty_power, pretty_time


def run(design: AgileWattsDesign = None) -> List[Tuple[str, str, str, str]]:
    """Rows of (state, transition time, target residency, power/core) in
    the paper's Table 1 order."""
    design = design if design is not None else AgileWattsDesign()
    baseline = skylake_baseline_catalog()
    aw = design.catalog()

    def row(catalog, name: str) -> Tuple[str, str, str, str]:
        state = catalog.get(name)
        freq = f" ({state.frequency.value})" if state.frequency else ""
        if state.is_active:
            return (f"{name}{freq}", "N/A", "N/A", pretty_power(state.power_watts))
        return (
            f"{name}{freq}",
            pretty_time(state.transition_time),
            pretty_time(state.target_residency),
            pretty_power(state.power_watts),
        )

    from repro.core.cstates import C0_PN_POWER, FrequencyPoint

    rows = [
        row(baseline, "C0"),
        ("C0 (Pn)", "N/A", "N/A", pretty_power(C0_PN_POWER)),
        row(baseline, "C1"),
        row(aw, "C6A"),
        row(baseline, "C1E"),
        row(aw, "C6AE"),
        row(baseline, "C6"),
    ]
    return rows


def main() -> None:
    print("Table 1: core C-states (Skylake baseline + AW's C6A/C6AE)")
    print(
        format_table(
            ["Core C-state", "Transition time", "Target residency", "Power per core"],
            run(),
        )
    )


if __name__ == "__main__":
    main()
