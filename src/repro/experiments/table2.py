"""Table 2: per-component core state in each C-state.

Shows what each C-state does to the clocks, ADPLL, private caches, voltage
and context — the matrix that makes AW's design visible at a glance: C6A
keeps the PLL on and caches coherent like C1, but power-gates with
in-place save/restore like no existing state.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.cstates import ComponentStates, _COMPONENT_STATES
from repro.experiments.common import format_table

#: Paper row order.
_ORDER = ["C0", "C1", "C6A", "C1E", "C6AE", "C6"]


def run() -> List[Tuple[str, str, str, str, str, str]]:
    """Rows of (state, clocks, adpll, l1/l2, voltage, context)."""
    rows = []
    for name in _ORDER:
        c: ComponentStates = _COMPONENT_STATES[name]
        rows.append((name, c.clocks, c.adpll, c.l1l2, c.voltage, c.context))
    return rows


def main() -> None:
    print("Table 2: Skylake server core component states per C-state")
    print(
        format_table(
            ["C-State", "Clocks", "ADPLL", "L1/L2 Cache", "Voltage", "Context"],
            run(),
        )
    )


if __name__ == "__main__":
    main()
