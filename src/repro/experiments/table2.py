"""Table 2: per-component core state in each C-state.

Shows what each C-state does to the clocks, ADPLL, private caches, voltage
and context — the matrix that makes AW's design visible at a glance: C6A
keeps the PLL on and caches coherent like C1, but power-gates with
in-place save/restore like no existing state.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.cstates import ComponentStates, _COMPONENT_STATES
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table

#: Paper row order.
_ORDER = ["C0", "C1", "C6A", "C1E", "C6AE", "C6"]


@register_experiment
class Table2Experiment(Experiment):
    id = "table2"
    title = "Table 2: per-component core state in each C-state."
    artifact = "Table 2"

    def analyze(self, results=None) -> ExperimentResult:
        rows = []
        for name in _ORDER:
            c: ComponentStates = _COMPONENT_STATES[name]
            rows.append((name, c.clocks, c.adpll, c.l1l2, c.voltage, c.context))
        records = [
            {
                "state": state,
                "clocks": clocks,
                "adpll": adpll,
                "l1l2_cache": l1l2,
                "voltage": voltage,
                "context": context,
            }
            for state, clocks, adpll, l1l2, voltage, context in rows
        ]
        return self.make_result(records=records, payload=rows)

    def render_text(self, result: ExperimentResult) -> str:
        lines = ["Table 2: Skylake server core component states per C-state"]
        lines.append(
            format_table(
                ["C-State", "Clocks", "ADPLL", "L1/L2 Cache", "Voltage", "Context"],
                result.payload,
            )
        )
        return "\n".join(lines)


def run() -> List[Tuple[str, str, str, str, str, str]]:
    """Deprecated shim over :class:`Table2Experiment`."""
    return Table2Experiment().analyze().payload


def main() -> None:
    experiment = Table2Experiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
