"""Ablation experiment: what each of AW's three ideas buys.

Not a numbered paper artifact — it quantifies the Sec 1/4 claims that
(1) in-place retention saves ~10-20 us of serialisation, (2) unflushed
caches save tens of microseconds, and (3) the kept PLL saves a relock —
i.e. that *every* idea is necessary for nanosecond transitions.
"""

from __future__ import annotations

from typing import List

from repro.core.ablation import AblatedVariant, AblationStudy
from repro.experiments.common import format_table
from repro.units import pretty_power, pretty_time


def run() -> List[AblatedVariant]:
    """All ablation variants for the default design point."""
    return AblationStudy().variants()


def main() -> None:
    study = AblationStudy()
    variants = study.variants()
    full = variants[0]

    print("Ablation: removing each AW idea from the C6A design")
    rows = []
    for v in variants:
        rows.append(
            [
                v.name,
                pretty_time(v.entry_latency),
                pretty_time(v.exit_latency),
                pretty_time(v.round_trip),
                f"{v.slowdown_vs(full):,.0f}x" if v is not full else "1x",
                pretty_power(v.idle_power),
            ]
        )
    print(format_table(
        ["Variant", "Entry", "Exit", "Round trip", "vs full", "Idle power"], rows
    ))

    print("\nRound-trip latency saved by each idea:")
    for idea, saved in study.latency_contributions().items():
        print(f"  {idea}: {pretty_time(saved)}")


if __name__ == "__main__":
    main()
