"""Ablation experiment: what each of AW's three ideas buys.

Not a numbered paper artifact — it quantifies the Sec 1/4 claims that
(1) in-place retention saves ~10-20 us of serialisation, (2) unflushed
caches save tens of microseconds, and (3) the kept PLL saves a relock —
i.e. that *every* idea is necessary for nanosecond transitions.
"""

from __future__ import annotations

from typing import List

from repro.core.ablation import AblatedVariant, AblationStudy
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table
from repro.units import pretty_power, pretty_time


@register_experiment
class AblationExperiment(Experiment):
    id = "ablation"
    title = "Ablation experiment: what each of AW's three ideas buys."
    artifact = "extension"

    def analyze(self, results=None) -> ExperimentResult:
        study = AblationStudy()
        variants = study.variants()
        full = variants[0]
        records = []
        for v in variants:
            records.append(
                {
                    "section": "variants",
                    "variant": v.name,
                    "entry_seconds": v.entry_latency,
                    "exit_seconds": v.exit_latency,
                    "round_trip_seconds": v.round_trip,
                    "slowdown_vs_full": 1.0 if v is full else v.slowdown_vs(full),
                    "idle_power_w": v.idle_power,
                }
            )
        for idea, saved in study.latency_contributions().items():
            records.append(
                {"section": "contributions", "idea": idea,
                 "round_trip_saved_seconds": saved}
            )
        return self.make_result(records=records, payload=variants)

    def render_text(self, result: ExperimentResult) -> str:
        # Re-derive the study for the contribution lines; variants are the
        # payload so the shim's return type is unchanged.
        study = AblationStudy()
        variants = result.payload
        full = variants[0]
        lines = ["Ablation: removing each AW idea from the C6A design"]
        rows = []
        for v in variants:
            rows.append(
                [
                    v.name,
                    pretty_time(v.entry_latency),
                    pretty_time(v.exit_latency),
                    pretty_time(v.round_trip),
                    f"{v.slowdown_vs(full):,.0f}x" if v is not full else "1x",
                    pretty_power(v.idle_power),
                ]
            )
        lines.append(format_table(
            ["Variant", "Entry", "Exit", "Round trip", "vs full", "Idle power"], rows
        ))
        lines.append("")
        lines.append("Round-trip latency saved by each idea:")
        for idea, saved in study.latency_contributions().items():
            lines.append(f"  {idea}: {pretty_time(saved)}")
        return "\n".join(lines)


def run() -> List[AblatedVariant]:
    """Deprecated shim over :class:`AblationExperiment`."""
    return AblationExperiment().analyze().payload


def main() -> None:
    experiment = AblationExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
