"""Sec 6.3: analytical power-model validation.

Regenerates the model-vs-measured comparison for SPECpower, Nginx, Spark
and Hive across utilisation levels; the paper reports per-workload
accuracies of 96.1% / 95.2% / 94.4% / 94.9%.
"""

from __future__ import annotations

from typing import List

from repro.analytical.validation import ValidationResult, validate_power_model
from repro.experiments.common import format_table


def run() -> List[ValidationResult]:
    """Validation results for the four Sec 6.3 workloads."""
    return validate_power_model()


def main() -> None:
    results = run()
    print("Sec 6.3: power-model validation (estimated vs measured)")
    for result in results:
        rows = [
            [label, f"{est:.3f} W", f"{meas:.3f} W", f"{abs(est - meas) / meas * 100:.1f}%"]
            for label, est, meas in result.points
        ]
        print(f"\n{result.workload} (accuracy {result.accuracy_percent:.1f}%)")
        print(format_table(["Load", "Estimated", "Measured", "Error"], rows))
    print("\npaper accuracies: SPECpower 96.1% / Nginx 95.2% / Spark 94.4% / Hive 94.9%")


if __name__ == "__main__":
    main()
