"""Sec 6.3: analytical power-model validation.

Regenerates the model-vs-measured comparison for SPECpower, Nginx, Spark
and Hive across utilisation levels; the paper reports per-workload
accuracies of 96.1% / 95.2% / 94.4% / 94.9%.
"""

from __future__ import annotations

from typing import List

from repro.analytical.validation import ValidationResult, validate_power_model
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table


@register_experiment
class ValidationExperiment(Experiment):
    id = "validation"
    title = "Sec 6.3: analytical power-model validation."
    artifact = "Section 6.3"

    def analyze(self, results=None) -> ExperimentResult:
        validation = validate_power_model()
        records = []
        for result in validation:
            for label, est, meas in result.points:
                records.append(
                    {
                        "workload": result.workload,
                        "load": label,
                        "estimated_w": est,
                        "measured_w": meas,
                        "error": abs(est - meas) / meas,
                        "accuracy_percent": result.accuracy_percent,
                    }
                )
        notes = [
            "paper accuracies: SPECpower 96.1% / Nginx 95.2% / "
            "Spark 94.4% / Hive 94.9%"
        ]
        return self.make_result(records=records, payload=validation, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        lines = ["Sec 6.3: power-model validation (estimated vs measured)"]
        for validation in result.payload:
            rows = [
                [label, f"{est:.3f} W", f"{meas:.3f} W",
                 f"{abs(est - meas) / meas * 100:.1f}%"]
                for label, est, meas in validation.points
            ]
            lines.append("")
            lines.append(
                f"{validation.workload} (accuracy {validation.accuracy_percent:.1f}%)"
            )
            lines.append(format_table(["Load", "Estimated", "Measured", "Error"], rows))
        lines.append("")
        lines.append("paper accuracies: SPECpower 96.1% / Nginx 95.2% / "
                     "Spark 94.4% / Hive 94.9%")
        return "\n".join(lines)


def run() -> List[ValidationResult]:
    """Deprecated shim over :class:`ValidationExperiment`."""
    return ValidationExperiment().analyze().payload


def main() -> None:
    experiment = ValidationExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
