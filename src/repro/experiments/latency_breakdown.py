"""Sec 3 / Sec 5.2: transition-latency breakdowns and the headline ratio.

Regenerates:

- the C6 entry/exit phase breakdown (flush ~75 us at 50% dirty / 800 MHz,
  context save ~9 us, hardware wake ~10 us, restore ~20 us; ~87 us entry,
  ~30 us hw exit, ~133 us worst-case round trip);
- the C6A/C6AE step-by-step breakdown (< 20 ns entry, < 80 ns exit);
- the transition-time ratio (paper: up to ~900x, three orders of
  magnitude);
- a flush-time sensitivity grid over dirty fraction and frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.latency import (
    C6ALatencyModel,
    C6LatencyModel,
    CacheFlushModel,
    transition_speedup,
)
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table
from repro.units import GHZ, MHZ, pretty_time


@dataclass
class LatencyReport:
    """All latency observables of the experiment."""

    c6_breakdown: Dict[str, float]
    c6_entry: float
    c6_exit: float
    c6_round_trip: float
    c6a_breakdown: Dict[str, float]
    c6a_entry: float
    c6a_exit: float
    c6a_round_trip: float
    speedup: float
    flush_grid: List[Tuple[float, float, float]]  # (dirty, freq_hz, seconds)


@register_experiment
class LatencyBreakdownExperiment(Experiment):
    id = "latency_breakdown"
    title = "Sec 3 / Sec 5.2: transition-latency breakdowns and the headline ratio."
    artifact = "Section 5.2"

    def analyze(self, results=None) -> ExperimentResult:
        c6 = C6LatencyModel()
        c6a = C6ALatencyModel()
        flush = CacheFlushModel()
        grid = []
        for dirty in (0.0, 0.25, 0.50, 0.75, 1.0):
            for freq in (800 * MHZ, 2.2 * GHZ):
                grid.append((dirty, freq, flush.flush_time(dirty, freq)))
        report = LatencyReport(
            c6_breakdown=c6.breakdown(),
            c6_entry=c6.entry_latency,
            c6_exit=c6.exit_latency,
            c6_round_trip=c6.transition_time,
            c6a_breakdown=c6a.breakdown(),
            c6a_entry=c6a.entry_latency,
            c6a_exit=c6a.exit_latency,
            c6a_round_trip=c6a.transition_time,
            speedup=transition_speedup(c6, c6a),
            flush_grid=grid,
        )
        records: List[Dict[str, object]] = []
        for state, breakdown, entry, exit_, round_trip in (
            ("C6", report.c6_breakdown, report.c6_entry, report.c6_exit,
             report.c6_round_trip),
            ("C6A", report.c6a_breakdown, report.c6a_entry, report.c6a_exit,
             report.c6a_round_trip),
        ):
            for phase, seconds in breakdown.items():
                records.append(
                    {"section": "breakdown", "state": state, "phase": phase,
                     "seconds": seconds}
                )
            records.append(
                {
                    "section": "totals",
                    "state": state,
                    "entry_seconds": entry,
                    "exit_seconds": exit_,
                    "round_trip_seconds": round_trip,
                }
            )
        records.append({"section": "speedup", "c6_to_c6a_speedup": report.speedup})
        for dirty, freq, seconds in report.flush_grid:
            records.append(
                {
                    "section": "flush_sensitivity",
                    "dirty_fraction": dirty,
                    "frequency_hz": freq,
                    "flush_seconds": seconds,
                }
            )
        return self.make_result(records=records, payload=report)

    def render_text(self, result: ExperimentResult) -> str:
        report: LatencyReport = result.payload
        lines = ["C6 latency breakdown (50% dirty cache, 800 MHz flow clock)"]
        rows = [[phase, pretty_time(t)] for phase, t in report.c6_breakdown.items()]
        rows.append(["entry total", pretty_time(report.c6_entry)])
        rows.append(["exit total (hw)", pretty_time(report.c6_exit)])
        rows.append(["worst-case round trip", pretty_time(report.c6_round_trip)])
        lines.append(format_table(["Phase", "Latency"], rows))

        lines.append("")
        lines.append("C6A latency breakdown (500 MHz PMA clock)")
        rows = [[step, pretty_time(t)] for step, t in report.c6a_breakdown.items()]
        rows.append(["entry total", pretty_time(report.c6a_entry)])
        rows.append(["exit total", pretty_time(report.c6a_exit)])
        rows.append(["round trip", pretty_time(report.c6a_round_trip)])
        lines.append(format_table(["Step", "Latency"], rows))

        lines.append("")
        lines.append(f"transition speedup C6 -> C6A: {report.speedup:.0f}x "
                     "(paper: up to ~900x, i.e. three orders of magnitude)")

        lines.append("")
        lines.append("flush-time sensitivity (dirty fraction x frequency)")
        rows = [
            [f"{dirty * 100:.0f}%", f"{freq / 1e6:.0f} MHz", pretty_time(t)]
            for dirty, freq, t in report.flush_grid
        ]
        lines.append(format_table(["Dirty", "Frequency", "Flush time"], rows))
        return "\n".join(lines)


def run() -> LatencyReport:
    """Deprecated shim over :class:`LatencyBreakdownExperiment`."""
    return LatencyBreakdownExperiment().analyze().payload


def main() -> None:
    experiment = LatencyBreakdownExperiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
