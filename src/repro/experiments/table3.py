"""Table 3: area and power requirements of AW.

Regenerates the full PPA breakdown from the subsystem models: per-row
(low, high) power in C6A and C6AE, area notes, and the overall band —
the paper reports 290-315 mW (C6A), 227-243 mW (C6AE) and 3-7% core area.
"""

from __future__ import annotations

from repro.core.architecture import AgileWattsDesign
from repro.core.ppa import PPABreakdown
from repro.experiments.common import format_table


def run(design: AgileWattsDesign = None) -> PPABreakdown:
    """The derived PPA breakdown."""
    design = design if design is not None else AgileWattsDesign()
    return design.breakdown


def main() -> None:
    breakdown = run()
    print("Table 3: area and power requirements of AW (derived)")
    print(
        format_table(
            ["Component", "Sub-component", "Area requirement", "C6A power", "C6AE power"],
            breakdown.rows(),
        )
    )
    low, high = breakdown.total_power_range("C6A")
    low_e, high_e = breakdown.total_power_range("C6AE")
    print(f"\npaper bands: C6A 290-315 mW (ours {low * 1e3:.0f}-{high * 1e3:.0f});"
          f" C6AE 227-243 mW (ours {low_e * 1e3:.0f}-{high_e * 1e3:.0f})")


if __name__ == "__main__":
    main()
