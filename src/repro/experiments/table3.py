"""Table 3: area and power requirements of AW.

Regenerates the full PPA breakdown from the subsystem models: per-row
(low, high) power in C6A and C6AE, area notes, and the overall band —
the paper reports 290-315 mW (C6A), 227-243 mW (C6AE) and 3-7% core area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.architecture import AgileWattsDesign
from repro.core.ppa import PPABreakdown
from repro.experiments.api import Experiment, ExperimentResult, register_experiment
from repro.experiments.common import format_table


@dataclass(frozen=True)
class Table3Params:
    """Design point regenerated; ``None`` uses the paper's defaults."""

    design: Optional[AgileWattsDesign] = None


@register_experiment
class Table3Experiment(Experiment):
    id = "table3"
    title = "Table 3: area and power requirements of AW."
    artifact = "Table 3"
    Params = Table3Params

    def analyze(self, results=None) -> ExperimentResult:
        design = self.params.design
        design = design if design is not None else AgileWattsDesign()
        breakdown = design.breakdown
        records = [
            {
                "component": component,
                "sub_component": sub,
                "area_requirement": area,
                "c6a_power": c6a,
                "c6ae_power": c6ae,
            }
            for component, sub, area, c6a, c6ae in breakdown.rows()
        ]
        low, high = breakdown.total_power_range("C6A")
        low_e, high_e = breakdown.total_power_range("C6AE")
        records.append(
            {
                "component": "total",
                "c6a_power_low_mw": low * 1e3,
                "c6a_power_high_mw": high * 1e3,
                "c6ae_power_low_mw": low_e * 1e3,
                "c6ae_power_high_mw": high_e * 1e3,
            }
        )
        notes = [
            f"paper bands: C6A 290-315 mW (ours {low * 1e3:.0f}-{high * 1e3:.0f});"
            f" C6AE 227-243 mW (ours {low_e * 1e3:.0f}-{high_e * 1e3:.0f})"
        ]
        return self.make_result(records=records, payload=breakdown, notes=notes)

    def render_text(self, result: ExperimentResult) -> str:
        breakdown: PPABreakdown = result.payload
        lines = ["Table 3: area and power requirements of AW (derived)"]
        lines.append(
            format_table(
                ["Component", "Sub-component", "Area requirement", "C6A power",
                 "C6AE power"],
                breakdown.rows(),
            )
        )
        for note in result.notes:
            lines.append("")
            lines.append(note)
        return "\n".join(lines)


def run(design: AgileWattsDesign = None) -> PPABreakdown:
    """Deprecated shim over :class:`Table3Experiment`."""
    return Table3Experiment(Table3Params(design=design)).analyze().payload


def main() -> None:
    experiment = Table3Experiment()
    print(experiment.render_text(experiment.analyze()))


if __name__ == "__main__":
    main()
