"""Multi-node cluster simulation: K servers behind a balancer + fan-out.

A :class:`Cluster` composes ``K`` independently-seeded
:class:`~repro.server.node.ServerNode` instances on **one shared
discrete-event simulator** (the SimBricks idea of composing independent
node simulators into a single virtual testbed), puts a pluggable
:class:`~repro.cluster.balancer.LoadBalancer` in front of them, and runs
logical requests through a :class:`~repro.cluster.fanout.FanoutDispatcher`
— so a request touching ``R`` leaves inherits the *max* of ``R`` wakeup
penalties, the fleet-level amplification that makes deep idle states a
datacenter problem rather than a per-server curiosity.

Determinism: every RNG stream is derived from the cluster seed (logical
arrivals from ``seed + 1`` exactly like a standalone node; node ``i``'s
dispatch/snoop streams from ``seed + NODE_SEED_STRIDE * i``; the balancer
from its own offset), so equal seeds give bit-identical cluster results
regardless of executor. A one-node, fanout-1 cluster replays the exact
event sequence of a standalone :class:`ServerNode` and reproduces its
results bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.cluster.balancer import make_balancer
from repro.cluster.fanout import FanoutDispatcher
from repro.errors import ConfigurationError
from repro.server.config import ServerConfiguration
from repro.server.metrics import RunResult
from repro.server.node import ServerNode
from repro.simkit.engine import Simulator
from repro.simkit.trace import PrefixedTrace, TraceRecorder
from repro.workloads.base import Workload
from repro.workloads.loadgen import (
    ArrivalStream,
    LoadGenerator,
    OpenLoopPoisson,
)

#: Seed stride between nodes: node ``i`` runs at ``seed + i * stride``, so
#: node 0 matches a standalone ServerNode and nodes never share the
#: dispatch/snoop streams a standalone node derives at ``seed + 1`` and
#: ``seed + 100 + core``.
NODE_SEED_STRIDE = 9973

#: Offset of the balancer's private RNG stream.
BALANCER_SEED_OFFSET = 777_001


class Cluster:
    """K server nodes behind a load balancer with request fan-out.

    Args:
        workload_factory: ``factory(node_index) -> Workload`` — a *fresh*
            workload per node so service-time RNG streams are independent
            (``ScenarioSpec.build_workload`` has exactly this shape).
        configuration: named server configuration, shared by all nodes.
        qps: offered **logical** request rate for the whole cluster; each
            logical request spawns ``fanout`` leaf sub-requests, so the
            per-node leaf rate is ``qps * fanout / nodes``.
        nodes: server count.
        cores: cores per node.
        balancer: registered balancer name (see
            :data:`~repro.cluster.balancer.BALANCER_FACTORIES`).
        fanout: leaves per logical request (``1 <= fanout <= nodes``).
        hedge_s: optional hedged-request delay in seconds.
        governor_factory: idle-governor factory shared by all cores.
        trace: optional shared :class:`~repro.simkit.trace.TraceRecorder`.
            Node ``i``'s events are recorded with an ``n{i}.`` source
            prefix (so ``n0.core3``); the dispatcher records request
            spans under source ``lb``. Stripping the ``n0.`` prefix from a
            one-node cluster's node events reproduces the standalone
            node's trace exactly.
        telemetry_hz: optional probe rate; when set, :meth:`run` samples
            every node on shared-clock ticks and the collected result
            carries the aggregate + per-node timeline.
    """

    def __init__(
        self,
        workload_factory: Callable[[int], Workload],
        configuration: ServerConfiguration,
        qps: float,
        nodes: int = 2,
        cores: int = 10,
        horizon: float = 0.5,
        seed: int = 42,
        balancer: str = "random",
        fanout: int = 1,
        hedge_s: Optional[float] = None,
        snoops_enabled: bool = True,
        governor_factory=None,
        uncore_watts: float = 38.0,
        loadgen: Optional[LoadGenerator] = None,
        sketch_error: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        telemetry_hz: Optional[float] = None,
    ):
        if nodes <= 0:
            raise ConfigurationError(f"need at least one node, got {nodes}")
        if qps <= 0:
            raise ConfigurationError(f"qps must be positive, got {qps}")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.configuration = configuration
        self.qps = qps
        self.n_nodes = nodes
        self.cores_per_node = cores
        self.horizon = horizon
        self.seed = seed
        self.sim = Simulator()
        self._workloads = [workload_factory(i) for i in range(nodes)]
        # Per-node leaf rate, only used for the node's (unused) internal
        # loadgen and its per-node result record; arrivals are injected.
        leaf_qps = qps * fanout / nodes
        self.server_nodes: List[ServerNode] = [
            ServerNode(
                workload=self._workloads[i],
                configuration=configuration,
                qps=leaf_qps,
                cores=cores,
                horizon=horizon,
                seed=seed + NODE_SEED_STRIDE * i,
                uncore_watts=uncore_watts,
                snoops_enabled=snoops_enabled,
                governor_factory=governor_factory,
                sim=self.sim,
                external_arrivals=True,
                sketch_error=sketch_error,
                trace=None if trace is None else PrefixedTrace(trace, f"n{i}."),
            )
            for i in range(nodes)
        ]
        self.trace = trace
        self.telemetry_hz = telemetry_hz
        balancer_obj = make_balancer(balancer)
        balancer_obj.setup(nodes, random.Random(seed + BALANCER_SEED_OFFSET))
        self.balancer = balancer_obj
        self.dispatcher = FanoutDispatcher(
            self.sim, self.server_nodes, balancer_obj,
            fanout=fanout, hedge_s=hedge_s, sketch_error=sketch_error,
            trace=trace,
        )
        # The logical arrival stream uses the same derivation as a
        # standalone node's internal loadgen (seed + 1) and the same
        # shared chaining machinery (ArrivalStream), which is what makes
        # the one-node cluster replay a ServerNode run exactly.
        self._loadgen: LoadGenerator = loadgen or OpenLoopPoisson(qps, seed=seed + 1)

    # -- run ---------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate the full horizon and aggregate cluster observables."""
        ArrivalStream(
            self.sim, self._loadgen, self.horizon,
            lambda arrival: self.dispatcher.dispatch(),
        ).start()
        for node in self.server_nodes:
            node.start()
        sampler = None
        if self.telemetry_hz is not None:
            from repro.obs.timeline import TimelineSampler

            # One sampler over all nodes on the shared clock: each tick
            # reads every node in node order, so the aggregate series
            # fold exactly like the sharded merge path.
            sampler = TimelineSampler(self.telemetry_hz, self.server_nodes)
            sampler.attach(self.sim)
        self.sim.run(until=self.horizon)
        result = self.collect()
        if sampler is not None:
            self.sim.clear_tick_hook()
            result.timeline = sampler.finish()
        return result

    def collect(self) -> RunResult:
        """Cluster-level ``RunResult`` plus per-node residency breakdowns.

        Aggregation: residencies, transition rates, per-core power and
        turbo grant rate average over nodes (every node has the same core
        count); package power and snoops sum (the cluster's total);
        latency/completed are the *logical* request view from the
        dispatcher. A one-node cluster therefore reproduces the standalone
        node's numbers exactly.
        """
        per_node = [node.collect() for node in self.server_nodes]
        k = len(per_node)
        residency: Dict[str, float] = {}
        transitions: Dict[str, float] = {}
        for result in per_node:
            # sorted(): per-key accumulation order must be a function of
            # the state names, not of per-node dict insertion history
            # (DET005 — bit-identity across executors).
            for name, value in sorted(result.residency.items()):
                residency[name] = residency.get(name, 0.0) + value
            for name, value in sorted(result.transitions_per_second.items()):
                transitions[name] = transitions.get(name, 0.0) + value
        residency = {name: value / k for name, value in residency.items()}
        transitions = {name: value / k for name, value in transitions.items()}

        node_detail = [
            {
                "node": i,
                "seed": node.seed,
                "completed": result.completed,
                "avg_leaf_latency": result.avg_latency,
                "p99_leaf_latency": (
                    result.tail_latency if result.completed else None
                ),
                "avg_core_power": result.avg_core_power,
                "package_power": result.package_power,
                "turbo_grant_rate": result.turbo_grant_rate,
                "snoops_served": result.snoops_served,
                "residency": {s: v for s, v in sorted(result.residency.items())},
                "transitions_per_second": {
                    s: v for s, v in sorted(result.transitions_per_second.items())
                },
            }
            for i, (node, result) in enumerate(zip(self.server_nodes, per_node))
        ]

        return RunResult(
            config_name=self.configuration.name,
            workload_name=self._workloads[0].name,
            qps=self.qps,
            horizon=self.horizon,
            cores=self.n_nodes * self.cores_per_node,
            residency=residency,
            transitions_per_second=transitions,
            avg_core_power=sum(r.avg_core_power for r in per_node) / k,
            package_power=sum(r.package_power for r in per_node),
            server_latency=self.dispatcher.latency,
            completed=self.dispatcher.completed,
            turbo_grant_rate=sum(r.turbo_grant_rate for r in per_node) / k,
            network_latency=self._workloads[0].network_latency,
            snoops_served=sum(r.snoops_served for r in per_node),
            node_detail=node_detail,
            hedges_issued=self.dispatcher.hedges_issued,
            # All K nodes advance one shared simulator, so these are the
            # fleet-wide engine counters, not a per-node average.
            events_processed=self.sim.events_processed,
            peak_pending_events=self.sim.peak_pending_events,
        )
