"""Request fan-out: the tail-at-scale mechanism.

A logical request that touches ``R`` leaf servers completes only when the
*slowest* leaf answers, so its latency is the max of ``R`` draws from the
per-node latency distribution — which is exactly why a p99 wakeup penalty
on one server becomes a p63 event for a 100-leaf request (Dean &
Barroso's "The Tail at Scale"). The :class:`FanoutDispatcher` implements
that composition over any set of node-like objects, plus the standard
mitigation: *hedged requests*, where leaves still outstanding after a
fixed delay are duplicated onto another node and the first answer wins.

Nodes are duck-typed: anything with ``inject(on_complete)`` (accept one
request now, call ``on_complete(completion_time)`` when served) and an
``in_flight`` count works — :class:`repro.server.node.ServerNode` in
production, trivial stubs in tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.balancer import LoadBalancer
from repro.errors import ConfigurationError
from repro.simkit.engine import Simulator
from repro.simkit.stats import PercentileTracker
from repro.simkit.trace import NULL_TRACE, TraceRecorder


class _Logical:
    """One in-flight logical request: completes when every leaf has."""

    __slots__ = ("arrival", "remaining", "lid")

    def __init__(self, arrival: float, remaining: int):
        self.arrival = arrival
        self.remaining = remaining
        #: Span id for trace export; only written inside ``trace.enabled``
        #: branches.
        self.lid = 0


class _Leaf:
    """One leaf sub-request (possibly duplicated by a hedge).

    The leaf *is* its own completion callback (``inject(leaf)``), so
    dispatching a request allocates no per-leaf closure.
    """

    __slots__ = ("dispatcher", "logical", "home", "done", "ordinal")

    def __init__(self, dispatcher: "FanoutDispatcher", logical: _Logical, home: int):
        self.dispatcher = dispatcher
        self.logical = logical
        self.home = home
        self.done = False
        #: Position within the logical request's leaf set; a hedged
        #: duplicate shares its original's ``(lid, ordinal)`` span id.
        self.ordinal = 0

    def __call__(self, now: float) -> None:
        self.dispatcher._leaf_done(self, now)


class FanoutDispatcher:
    """Splits logical requests into leaves and joins on the slowest.

    Args:
        sim: the shared simulator (supplies the clock for hedge timers).
        nodes: node-like targets (``inject``/``in_flight``).
        balancer: a :class:`LoadBalancer` already ``setup()`` for
            ``len(nodes)``.
        fanout: leaves per logical request (distinct nodes).
        hedge_s: if set, leaves still outstanding after this many seconds
            are duplicated onto another node (first answer wins).
        trace: optional recorder for request-lifecycle spans, recorded
            under source ``lb``: ``dispatch``/``complete`` carry the
            logical id, ``leaf``/``leaf_done``/``hedge`` carry
            ``(lid, ordinal, ...)`` — a hedged duplicate shares the
            ``(lid, ordinal)`` span id of the leaf it duplicates.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence,
        balancer: LoadBalancer,
        fanout: int = 1,
        hedge_s: Optional[float] = None,
        sketch_error: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        if not nodes:
            raise ConfigurationError("need at least one node")
        if not 1 <= fanout <= len(nodes):
            raise ConfigurationError(
                f"fanout must be in [1, {len(nodes)}] (nodes), got {fanout}"
            )
        if hedge_s is not None and hedge_s <= 0:
            raise ConfigurationError(f"hedge delay must be positive, got {hedge_s}")
        self.sim = sim
        self.nodes = list(nodes)
        self.balancer = balancer
        self.fanout = fanout
        self.hedge_s = hedge_s
        #: Logical (join-on-slowest-leaf) request latency; exact by
        #: default, sketch-backed when ``sketch_error`` is set.
        self.latency = PercentileTracker(sketch_error=sketch_error)
        #: Logical requests fully completed.
        self.completed = 0
        #: Duplicate leaves issued by the hedge timer.
        self.hedges_issued = 0
        self.trace = trace if trace is not None else NULL_TRACE
        #: Monotone logical-request id; advanced only while tracing.
        self._trace_seq = 0

    # -- dispatch ----------------------------------------------------------
    def _loads(self) -> List[int]:
        return [node.in_flight for node in self.nodes]

    def dispatch(self) -> None:
        """Fan one logical request (arriving now) out over the cluster."""
        arrival = self.sim.now
        targets = self.balancer.pick(self.fanout, self._loads())
        logical = _Logical(arrival, len(targets))
        leaves = [_Leaf(self, logical, idx) for idx in targets]
        trace = self.trace
        if trace.enabled:
            lid = self._trace_seq
            self._trace_seq = lid + 1
            logical.lid = lid
            trace.record(arrival, "lb", "dispatch", (lid, tuple(targets)))
            for ordinal, leaf in enumerate(leaves):
                leaf.ordinal = ordinal
                trace.record(arrival, "lb", "leaf", (lid, ordinal, leaf.home))
        for leaf in leaves:
            self._send(leaf, leaf.home)
        if self.hedge_s is not None:
            self.sim.schedule(
                self.hedge_s, lambda: self._hedge(leaves), label="hedge"
            )

    def _send(self, leaf: _Leaf, node_index: int) -> None:
        # The leaf is callable: it is its own completion callback.
        self.nodes[node_index].inject(leaf)

    def _leaf_done(self, leaf: _Leaf, now: float) -> None:
        if leaf.done:
            return  # the hedged duplicate lost the race
        leaf.done = True
        logical = leaf.logical
        logical.remaining -= 1
        trace = self.trace
        if trace.enabled:
            trace.record(now, "lb", "leaf_done", (logical.lid, leaf.ordinal))
        if logical.remaining == 0:
            self.latency.add(now - logical.arrival)
            self.completed += 1
            if trace.enabled:
                trace.record(now, "lb", "complete", logical.lid)

    def _hedge(self, leaves: Sequence[_Leaf]) -> None:
        """Duplicate still-outstanding leaves onto *other* nodes.

        A one-node cluster has no other node to duplicate onto, so no
        hedge is issued there — a same-node duplicate would only inflate
        the slow node's queue.
        """
        if len(self.nodes) == 1:
            return
        for leaf in leaves:
            if leaf.done:
                continue
            # Re-read loads per leaf: each duplicate raises its target's
            # in-flight count, and a stale snapshot would let a
            # queue-aware balancer dog-pile every duplicate onto the
            # same least-loaded node.
            alt = self.balancer.pick(1, self._loads())[0]
            if alt == leaf.home:
                # Duplicating onto the same (slow) node buys nothing.
                alt = (alt + 1) % len(self.nodes)
            self.hedges_issued += 1
            trace = self.trace
            if trace.enabled:
                trace.record(
                    self.sim.now, "lb", "hedge",
                    (leaf.logical.lid, leaf.ordinal, alt),
                )
            self._send(leaf, alt)
