"""Load balancers: how a cluster spreads leaf requests over its nodes.

A :class:`LoadBalancer` picks, for every logical request, the ``fanout``
distinct node indices its leaf sub-requests are sent to. The policies here
are the classic datacenter quartet:

- ``random`` — uniform random distinct nodes; the stateless baseline.
- ``round_robin`` — cyclic assignment; perfectly even in counts but blind
  to in-flight load.
- ``jsq`` — join-shortest-queue: always the least-loaded nodes. The
  centralised ideal (needs global queue visibility).
- ``power_of_two`` — power-of-d-choices (d=2): sample d random candidates
  per leaf and keep the least loaded. Nearly JSQ quality from O(d)
  samples (Mitzenmacher's classic result).

Balancers follow the workload/governor registry pattern of
:mod:`repro.sweep.spec`: factories are looked up by name when a
:class:`~repro.sweep.spec.ScenarioSpec` materialises, and the import-time
snapshot lets the process executor reject parent-only registrations
before submitting to spawn-based worker pools.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigurationError


class LoadBalancer(abc.ABC):
    """Picks the target nodes of each logical request's leaves.

    Call :meth:`setup` once per run (node count, seeded RNG), then
    :meth:`pick` once per logical request (and once per hedge decision).
    Implementations must be deterministic functions of the RNG stream and
    the observed loads, so cluster runs stay bit-reproducible.
    """

    #: Registry name (set by subclasses).
    name = "base"

    def __init__(self) -> None:
        self.n_nodes = 0
        self.rng = random.Random(0)

    def setup(self, n_nodes: int, rng: random.Random) -> None:
        """Bind to a cluster: node count and the run's balancer RNG."""
        if n_nodes <= 0:
            raise ConfigurationError(f"need at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.rng = rng

    @abc.abstractmethod
    def pick(self, k: int, loads: Sequence[int]) -> List[int]:
        """``k`` distinct node indices for one logical request's leaves.

        Args:
            k: leaf count (the spec's ``fanout``), ``1 <= k <= n_nodes``.
            loads: per-node in-flight request counts (queued + in
                service), indexed by node.
        """

    def _check_pick(self, k: int, loads: Sequence[int]) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("balancer used before setup()")
        if not 1 <= k <= self.n_nodes:
            raise ConfigurationError(
                f"fanout {k} must be in [1, {self.n_nodes}] (nodes)"
            )
        if len(loads) != self.n_nodes:
            raise ConfigurationError(
                f"got {len(loads)} loads for {self.n_nodes} nodes"
            )


class RandomBalancer(LoadBalancer):
    """Uniform random distinct nodes; ignores load entirely."""

    name = "random"

    def pick(self, k: int, loads: Sequence[int]) -> List[int]:
        self._check_pick(k, loads)
        return self.rng.sample(range(self.n_nodes), k)


class RoundRobinBalancer(LoadBalancer):
    """Cyclic assignment: each leaf advances the cursor by one."""

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def pick(self, k: int, loads: Sequence[int]) -> List[int]:
        self._check_pick(k, loads)
        targets = [(self._cursor + j) % self.n_nodes for j in range(k)]
        self._cursor = (self._cursor + k) % self.n_nodes
        return targets


class JoinShortestQueueBalancer(LoadBalancer):
    """The k least-loaded nodes (ties broken by lowest index)."""

    name = "jsq"

    def pick(self, k: int, loads: Sequence[int]) -> List[int]:
        self._check_pick(k, loads)
        order = sorted(range(self.n_nodes), key=lambda i: (loads[i], i))
        return order[:k]


class PowerOfDChoicesBalancer(LoadBalancer):
    """Per leaf: sample ``d`` random candidates, keep the least loaded.

    With ``d=2`` this is the classic power-of-two-choices policy; a
    fanned-out request still spreads over distinct nodes because each
    chosen node is removed from the candidate pool for the remaining
    leaves (the loads snapshot itself is fixed for the whole pick).
    """

    name = "power_of_two"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        if d < 1:
            raise ConfigurationError(f"need d >= 1 choices, got {d}")
        self.d = d

    def pick(self, k: int, loads: Sequence[int]) -> List[int]:
        self._check_pick(k, loads)
        available = list(range(self.n_nodes))
        targets: List[int] = []
        for _ in range(k):
            candidates = self.rng.sample(available, min(self.d, len(available)))
            best = min(candidates, key=lambda i: (loads[i], i))
            targets.append(best)
            available.remove(best)
        return targets


#: Balancers that never read the cross-node load vector: their pick
#: sequence is a function of the RNG stream / cursor alone. Only these
#: admit partitioned (per-node independent arrival stream) execution and
#: therefore sharding — jsq and power_of_two read live queue depths
#: across all nodes, which requires one shared simulator. Name-based on
#: purpose: a custom registered balancer is conservatively treated as
#: stateful.
STATELESS_BALANCERS = frozenset({"random", "round_robin"})

#: Balancer factories by name. Extend via :func:`register_balancer`.
BALANCER_FACTORIES: Dict[str, Callable[[], LoadBalancer]] = {
    "random": RandomBalancer,
    "round_robin": RoundRobinBalancer,
    "jsq": JoinShortestQueueBalancer,
    "power_of_two": PowerOfDChoicesBalancer,
}

#: Import-time snapshot, mirroring the workload/governor registries:
#: spawn-based worker pools only see factories registered at import time.
IMPORT_TIME_BALANCER_FACTORIES = dict(BALANCER_FACTORIES)


def register_balancer(name: str, factory: Callable[[], LoadBalancer]) -> None:
    """Register a balancer factory under ``name`` for use in specs."""
    BALANCER_FACTORIES[name] = factory


def make_balancer(name: str) -> LoadBalancer:
    """A fresh balancer instance by registry name.

    Raises:
        ConfigurationError: on an unknown name.
    """
    try:
        factory = BALANCER_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown balancer {name!r}; choose from {sorted(BALANCER_FACTORIES)}"
        ) from None
    return factory()
