"""Sharded cluster execution: partition nodes, simulate, merge exactly.

The classic :class:`~repro.cluster.cluster.Cluster` advances all K nodes
on one shared simulator and consults the balancer per logical arrival —
necessary when the balancer reads live cross-node queue depths (jsq,
power_of_two) or when a request couples nodes (fanout, hedging), but
pure overhead for *stateless* balancing of single-leaf requests: there
the per-arrival ``pick`` over a K-element load vector costs O(K) for a
decision the node never feeds back into, and the shared heap serialises
K nodes' events through one clock for no observable benefit.

For those points this module replaces per-arrival routing with the exact
arrival process each node observes:

- ``random`` — uniform routing of a Poisson(λ) stream is Poisson
  thinning: node ``i`` of K sees an independent Poisson(λ/K) stream,
  *exactly*. Each node just runs its own
  :class:`~repro.workloads.loadgen.OpenLoopPoisson` at the leaf rate,
  seeded by the standard ``node_seed + 1`` derivation.
- ``round_robin`` — node ``i`` serves every K-th arrival of the global
  Poisson stream, so its interarrivals are Erlang(K, λ) — sampled
  directly by :class:`~repro.workloads.loadgen.RoundRobinThinned`. The
  per-node marginal process is exact; only the (unobservable, since
  nothing reads cross-node state) arrival-time coupling between nodes is
  approximated by giving each node an independent Erlang stream.

Nodes are then fully independent simulations, so a cluster point splits
into S contiguous *shards* of nodes that run on a process pool and merge
with :func:`merge_node_results`, which replicates the aggregation
formulas of ``Cluster.collect`` term by term **in node order**: scalar
aggregates (energy, counters, residencies, per-node detail) are
bit-identical whatever the shard count or completion order, and latency
trackers merge losslessly (exact mode concatenates samples in node
order; sketch mode adds integer bucket counts).

:func:`execute_partitioned` is the S=1 in-process entry point used by
``ScenarioSpec.execute`` — single-process and sharded runs share
:func:`run_shard` and the merge, so ``run_sharded(spec, shards=S)``
equals ``execute_partitioned(spec)`` bit-for-bit for every S.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cluster.balancer import STATELESS_BALANCERS
from repro.cluster.cluster import NODE_SEED_STRIDE
from repro.errors import ConfigurationError, ShardingError
from repro.obs.timeline import merge_timelines
from repro.server.metrics import RunResult
from repro.server.node import ServerNode
from repro.simkit import sanitizer as _sanitizer
from repro.simkit.stats import PercentileTracker
from repro.workloads.loadgen import LoadGenerator, RoundRobinThinned

if TYPE_CHECKING:
    from repro.sweep.spec import ScenarioSpec


def is_shardable(spec: "ScenarioSpec") -> bool:
    """Whether ``spec`` admits partitioned (and therefore sharded) runs.

    True exactly when the node subsets are independent given a
    partitioned arrival stream: a multi-node point with single-leaf
    requests, no hedging, and a stateless balancer.
    """
    return (
        spec.nodes > 1
        and spec.fanout == 1
        and spec.hedge_ms is None
        and spec.balancer in STATELESS_BALANCERS
    )


def check_shardable(spec: "ScenarioSpec") -> None:
    """Raise :class:`ShardingError` with the reason if not shardable."""
    if is_shardable(spec):
        return
    if spec.nodes <= 1:
        reason = "a single-node point has nothing to partition"
    elif spec.balancer not in STATELESS_BALANCERS:
        reason = (
            f"balancer {spec.balancer!r} reads live cross-node queue "
            "depths, which needs every node on one simulator"
        )
    elif spec.fanout > 1:
        reason = (
            f"fanout {spec.fanout} joins leaves across nodes, which "
            "needs every node on one simulator"
        )
    else:
        reason = (
            "hedged requests duplicate leaves across nodes, which "
            "needs every node on one simulator"
        )
    raise ShardingError(
        f"cannot shard spec {spec.cache_key}: {reason}. Run it "
        "single-process (drop --shards / use the serial or process "
        "executor), or switch to a stateless balancer "
        f"({sorted(STATELESS_BALANCERS)})."
    )


def shard_ranges(nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` node ranges, sizes differing by at most 1.

    ``shards`` is clamped to ``nodes`` (a shard needs at least one node).
    """
    if nodes <= 0:
        raise ConfigurationError(f"nodes must be positive, got {nodes}")
    if shards <= 0:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    shards = min(shards, nodes)
    base, extra = divmod(nodes, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _node_loadgen(
    spec: "ScenarioSpec", node: int, node_seed: int
) -> Optional[LoadGenerator]:
    """The arrival process node ``node`` observes under partitioning.

    ``None`` keeps the node's default ``OpenLoopPoisson(leaf_qps,
    seed=node_seed + 1)`` — the exact Poisson thinning of uniform-random
    routing. Round-robin gets the Erlang-thinned stream at the same seed
    derivation.
    """
    if spec.balancer == "round_robin":
        return RoundRobinThinned(
            spec.qps, spec.nodes, node, seed=node_seed + 1
        )
    return None


def run_shard(spec: "ScenarioSpec", lo: int, hi: int) -> List[RunResult]:
    """Simulate nodes ``[lo, hi)`` of a partitioned cluster point.

    Each node is a standalone :class:`ServerNode` on its own simulator,
    seeded exactly as the same node inside a shared-simulator
    :class:`Cluster` (``spec.seed + NODE_SEED_STRIDE * i``), with its
    partitioned arrival stream. Returns per-node results in node order.
    """
    if not 0 <= lo < hi <= spec.nodes:
        raise ConfigurationError(
            f"shard range [{lo}, {hi}) invalid for {spec.nodes} nodes"
        )
    configuration = spec.build_configuration()
    governor_factory = spec.governor_factory()
    leaf_qps = spec.qps / spec.nodes
    results: List[RunResult] = []
    for i in range(lo, hi):
        node_seed = spec.seed + NODE_SEED_STRIDE * i
        node = ServerNode(
            workload=spec.build_workload(i),
            configuration=configuration,
            qps=leaf_qps,
            cores=spec.cores,
            horizon=spec.horizon,
            seed=node_seed,
            snoops_enabled=spec.snoops,
            governor_factory=governor_factory,
            sketch_error=spec.sketch_error,
            loadgen=_node_loadgen(spec, i, node_seed),
            telemetry_hz=spec.telemetry_hz,
        )
        results.append(node.run())
    return results


def merge_node_results(
    spec: "ScenarioSpec", per_node: Sequence[RunResult]
) -> RunResult:
    """Fold per-node results into one cluster :class:`RunResult`.

    Replicates the aggregation of ``Cluster.collect`` term by term, in
    node order: residencies / transition rates / per-core power / turbo
    grant rate average over nodes, package power and snoop counts sum,
    latency trackers merge losslessly, engine counters sum (every node
    ran its own simulator) and the heap high-water mark is the per-node
    max. Summation order is fixed by node order, so the merged result is
    invariant to shard count and completion order.
    """
    if len(per_node) != spec.nodes:
        raise ConfigurationError(
            f"expected {spec.nodes} node results, got {len(per_node)}"
        )
    k = len(per_node)
    residency: Dict[str, float] = {}
    transitions: Dict[str, float] = {}
    for result in per_node:
        # sorted(): decoded store rows and freshly-simulated results may
        # carry key orders from different code paths; accumulation order
        # must depend on the state names alone (DET005).
        for name, value in sorted(result.residency.items()):
            residency[name] = residency.get(name, 0.0) + value
        for name, value in sorted(result.transitions_per_second.items()):
            transitions[name] = transitions.get(name, 0.0) + value
    residency = {name: value / k for name, value in residency.items()}
    transitions = {name: value / k for name, value in transitions.items()}

    node_detail = [
        {
            "node": i,
            "seed": spec.seed + NODE_SEED_STRIDE * i,
            "completed": result.completed,
            "avg_leaf_latency": result.avg_latency,
            "p99_leaf_latency": (
                result.tail_latency if result.completed else None
            ),
            "avg_core_power": result.avg_core_power,
            "package_power": result.package_power,
            "turbo_grant_rate": result.turbo_grant_rate,
            "snoops_served": result.snoops_served,
            "residency": {s: v for s, v in sorted(result.residency.items())},
            "transitions_per_second": {
                s: v for s, v in sorted(result.transitions_per_second.items())
            },
        }
        for i, result in enumerate(per_node)
    ]

    merged = RunResult(
        config_name=per_node[0].config_name,
        workload_name=per_node[0].workload_name,
        qps=spec.qps,
        horizon=spec.horizon,
        cores=spec.nodes * spec.cores,
        residency=residency,
        transitions_per_second=transitions,
        avg_core_power=sum(r.avg_core_power for r in per_node) / k,
        package_power=sum(r.package_power for r in per_node),
        server_latency=PercentileTracker.merge_all(
            [r.server_latency for r in per_node]
        ),
        completed=sum(r.completed for r in per_node),
        turbo_grant_rate=sum(r.turbo_grant_rate for r in per_node) / k,
        network_latency=per_node[0].network_latency,
        snoops_served=sum(r.snoops_served for r in per_node),
        node_detail=node_detail,
        hedges_issued=0,
        # Every node ran its own simulator: total engine work sums; the
        # heap high-water mark is per-simulator, so the fleet peak is the
        # max (the shared-sim Cluster reports one global heap instead).
        events_processed=sum(r.events_processed for r in per_node),
        peak_pending_events=max(r.peak_pending_events for r in per_node),
        # Timelines merge in node order too (additive series accumulate
        # node 0 first), so telemetry aggregates are bit-identical to the
        # shared-simulator cluster sampling the same nodes.
        timeline=merge_timelines([r.timeline for r in per_node]),
    )
    if _sanitizer.is_enabled():
        _audit_merge(per_node, merged)
    return merged


def _audit_merge(per_node: Sequence[RunResult], merged: RunResult) -> None:
    """SAN005 spot-checks: the merge must be order-invariant.

    Integer observables are conserved exactly (completions and latency
    sample counts sum — losing either means a node's requests silently
    vanished from the merged percentiles), and the float package-power
    sum re-accumulated in *reversed* node order must agree with the
    forward merge within the float re-association bound. The reversed
    re-sum is the cheap canary for order-dependent accumulation creeping
    into the merge path (the DET005 bug class, observed at runtime).
    """
    completed = sum(r.completed for r in per_node)
    if merged.completed != completed:
        raise _sanitizer.violation(
            "SAN005", "cluster.sharding",
            f"merged completion count {merged.completed} != exact "
            f"per-node sum {completed}: the merge dropped or duplicated "
            "a node's requests",
        )
    samples = sum(r.server_latency.count for r in per_node)
    if merged.server_latency.count != samples:
        raise _sanitizer.violation(
            "SAN005", "cluster.sharding",
            f"merged latency tracker holds {merged.server_latency.count} "
            f"samples but the nodes recorded {samples}: the latency "
            "merge is lossy",
        )
    backward = 0.0
    for result in reversed(per_node):
        backward += result.package_power
    bound = 1e-9 * max(1.0, abs(merged.package_power))
    if abs(merged.package_power - backward) > bound:
        raise _sanitizer.violation(
            "SAN005", "cluster.sharding",
            f"package power merged forward ({merged.package_power!r} W) "
            f"and re-summed in reversed node order ({backward!r} W) "
            f"disagree beyond the re-association bound ({bound:.3e} W): "
            "the merge is node-order-sensitive",
        )


def execute_partitioned(spec: "ScenarioSpec") -> RunResult:
    """Run a shardable cluster point in-process, node by node.

    The single-process counterpart of :func:`run_sharded`: both share
    :func:`run_shard` and :func:`merge_node_results`, so their results
    are bit-identical (including exact-mode latency sample order).
    """
    check_shardable(spec)
    return merge_node_results(spec, run_shard(spec, 0, spec.nodes))


def _run_shard_payload(
    payload: Tuple[Dict[str, object], int, int]
) -> Tuple[int, List[RunResult]]:
    """Worker-side entry point: rebuild the spec and run one shard.

    Takes ``(spec_dict, lo, hi)`` so the pickled payload stays decoupled
    from the dataclass layout, and returns ``(lo, results)`` so the
    parent can reassemble node order regardless of completion order.
    """
    from repro.sweep.spec import ScenarioSpec

    spec_dict, lo, hi = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    return lo, run_shard(spec, lo, hi)


def run_sharded(
    spec: "ScenarioSpec", shards: int, jobs: Optional[int] = None
) -> RunResult:
    """Run a shardable cluster point as ``shards`` parallel node ranges.

    Args:
        spec: a shardable :class:`~repro.sweep.spec.ScenarioSpec`
            (see :func:`is_shardable`; raises :class:`ShardingError`
            otherwise).
        shards: how many contiguous node ranges to split into (clamped
            to the node count).
        jobs: process-pool width; defaults to the shard count.

    Returns the merged cluster result, bit-identical to
    :func:`execute_partitioned` for any shard count.
    """
    check_shardable(spec)
    ranges = shard_ranges(spec.nodes, shards)
    if len(ranges) == 1:
        return execute_partitioned(spec)

    # Same parent-only-registration guard as the sweep process executor:
    # fail fast with an actionable message rather than point-by-point in
    # the workers. Imported lazily — runner imports spec which imports
    # this package.
    from repro.sweep.runner import _check_worker_registries

    _check_worker_registries([spec])
    spec_dict = spec.to_dict()
    workers = min(jobs or len(ranges), len(ranges))
    if workers <= 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    by_lo: Dict[int, List[RunResult]] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_shard_payload, (spec_dict, lo, hi))
            for lo, hi in ranges
        ]
        for future in futures:
            lo, results = future.result()
            by_lo[lo] = results
    per_node: List[RunResult] = []
    for lo, _ in ranges:
        per_node.extend(by_lo[lo])
    return merge_node_results(spec, per_node)
