"""Cluster simulation: K server nodes, load balancing, fan-out, hedging.

The paper frames deep-idle wakeup cost as a *datacenter* problem: a
latency-critical request fans out to many leaf servers and completes at
the slowest one, so per-server tail events compound at scale. This
package composes the per-node simulator into that setting:

- :mod:`repro.cluster.balancer` — pluggable :class:`LoadBalancer`
  policies (random, round-robin, join-shortest-queue,
  power-of-d-choices) behind a registry.
- :mod:`repro.cluster.fanout` — :class:`FanoutDispatcher`: R leaf
  sub-requests per logical request, join on the slowest, optional hedged
  duplicates.
- :mod:`repro.cluster.cluster` — :class:`Cluster`: K independently-seeded
  :class:`~repro.server.node.ServerNode` instances on one shared
  simulator, producing a cluster-level
  :class:`~repro.server.metrics.RunResult` with per-node breakdowns.
- :mod:`repro.cluster.sharding` — partitioned/sharded execution for
  stateless-balancer points: per-node exact arrival thinning, process
  sharding, and an order-invariant exact merge.

Cluster points are ordinary :class:`~repro.sweep.spec.ScenarioSpec`
instances (``nodes``/``balancer``/``fanout``/``hedge_ms`` axes), so they
flow through the memo cache, the sqlite store, failure policies and
progress rendering unchanged.
"""

from repro.cluster.balancer import (
    BALANCER_FACTORIES,
    STATELESS_BALANCERS,
    JoinShortestQueueBalancer,
    LoadBalancer,
    PowerOfDChoicesBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    make_balancer,
    register_balancer,
)
from repro.cluster.cluster import Cluster
from repro.cluster.fanout import FanoutDispatcher
from repro.cluster.sharding import (
    check_shardable,
    execute_partitioned,
    is_shardable,
    merge_node_results,
    run_shard,
    run_sharded,
    shard_ranges,
)

__all__ = [
    "BALANCER_FACTORIES",
    "STATELESS_BALANCERS",
    "Cluster",
    "FanoutDispatcher",
    "JoinShortestQueueBalancer",
    "LoadBalancer",
    "PowerOfDChoicesBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "check_shardable",
    "execute_partitioned",
    "is_shardable",
    "make_balancer",
    "merge_node_results",
    "register_balancer",
    "run_shard",
    "run_sharded",
    "shard_ranges",
]
