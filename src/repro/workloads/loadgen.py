"""Open-loop load generation (Mutilate-style).

The paper drives Memcached with the Mutilate load generator configured to
recreate Facebook's ETC workload: open-loop (arrivals do not wait for
completions — the right model for measuring tail latency) with Poisson
arrivals at a target queries-per-second rate.

:class:`OpenLoopPoisson` produces the arrival schedule; the server node
consumes it event by event.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.simkit.distributions import Exponential


class LoadGenerator:
    """Interface: an arrival-time iterator."""

    def arrivals(self, horizon: float) -> Iterator[float]:
        """Yield absolute arrival times in [0, horizon), non-decreasing.

        Consumers schedule arrivals one at a time (streaming), so times
        must not go backwards; an out-of-order yield fails the run with a
        :class:`~repro.errors.SimulationError`. Times at or past
        ``horizon`` are ignored.
        """
        raise NotImplementedError

    @property
    def rate_qps(self) -> float:
        raise NotImplementedError


class ArrivalStream:
    """Streams a load generator's arrivals through a simulator lazily.

    One in-flight arrival event at a time: each event schedules its
    successor when it fires, so the heap holds O(1) arrival events
    instead of the O(qps * horizon) that eager pre-scheduling would pin
    (40 000 events for a 100 KQPS x 0.4 s run). The successor is chained
    *before* ``on_arrival`` runs so, on an exact time tie with events the
    dispatch spawns, the next arrival still fires first.

    Both the standalone :class:`~repro.server.node.ServerNode` and the
    cluster's logical request stream consume arrivals through this one
    class — the one-node-cluster bit-identity guarantee depends on both
    replaying the exact same event sequence, so the chaining logic must
    not be duplicated.

    The stream holds one in-flight arrival, so it schedules through one
    prebound callback and remembers the pending arrival time on itself —
    no per-arrival closure. ``fast_path=False`` routes scheduling through
    the cancellable Event path instead (the bit-identity reference mode);
    either way the scheduling order, and therefore the event sequence, is
    identical.
    """

    def __init__(
        self,
        sim,
        loadgen: LoadGenerator,
        horizon: float,
        on_arrival: Callable[[float], None],
        fast_path: bool = True,
    ):
        self._sim = sim
        self._loadgen = loadgen
        self._horizon = horizon
        self._on_arrival = on_arrival
        self._iter: Iterator[float] = iter(())
        self._next_arrival = 0.0
        self._fired_cb = self._fired
        if fast_path:
            self._schedule_at = sim.schedule_at_fast
        else:
            self._schedule_at = lambda t, cb: sim.schedule_at(t, cb, label="arrival")

    def start(self) -> None:
        """Arm the stream: schedule the first in-window arrival."""
        self._iter = self._loadgen.arrivals(self._horizon)
        self._schedule_next()

    def _schedule_next(self) -> None:
        for t in self._iter:
            if t >= self._horizon:
                # Generators bound arrivals to [0, horizon), but guard
                # anyway so a custom LoadGenerator cannot fire past the
                # accounting window; keep consuming in case later yields
                # are in-window.
                continue
            self._next_arrival = t
            self._schedule_at(t, self._fired_cb)
            return

    def _fired(self) -> None:
        # Read the pending arrival *before* chaining (chaining overwrites
        # it). Chain the successor before dispatching so, on an exact time
        # tie with the events this dispatch spawns, the next arrival still
        # fires first. (Ties against events scheduled by *earlier*
        # dispatches are resolved by scheduling order, as with any event
        # source; the stochastic float-time workloads here never tie.)
        arrival = self._next_arrival
        self._schedule_next()
        self._on_arrival(arrival)


class OpenLoopPoisson(LoadGenerator):
    """Open-loop Poisson arrivals at a fixed aggregate rate.

    Args:
        qps: aggregate arrival rate (queries per second).
        seed: RNG seed for the inter-arrival stream.
    """

    def __init__(self, qps: float, seed: int = 1):
        if qps <= 0:
            raise WorkloadError(f"qps must be positive, got {qps}")
        self._qps = qps
        self._interarrival = Exponential(1.0 / qps, seed=seed)

    @property
    def rate_qps(self) -> float:
        return self._qps

    def arrivals(self, horizon: float) -> Iterator[float]:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        sample = self._interarrival.sampler()
        t = sample()
        while t < horizon:
            yield t
            t += sample()

    def expected_count(self, horizon: float) -> float:
        return self._qps * horizon


class RoundRobinThinned(LoadGenerator):
    """Node ``index``'s share of a round-robin-split Poisson stream.

    A round-robin front end hands arrival ``j`` of a rate-``total_qps``
    Poisson process to node ``j mod nodes``, so one node sees every
    ``nodes``-th arrival: its interarrival times are Erlang(``nodes``) —
    the sum of ``nodes`` exponentials — sampled directly via
    ``gammavariate(nodes, 1/total_qps)``. Node ``index``'s first arrival
    is global arrival ``index + 1``, i.e. Gamma(``index + 1``), which
    preserves the phase stagger of the cursor.

    Each node's *marginal* arrival process is exact. What the
    split-stream model gives up is the cross-node coupling of the shared
    cursor (round-robin interleaves nodes deterministically; independent
    Erlang streams only do so in distribution) — the documented
    approximation behind sharded round-robin execution
    (:mod:`repro.cluster.sharding`). Random balancing needs no such
    class: uniform thinning of a Poisson process yields independent
    Poisson streams exactly.
    """

    def __init__(self, total_qps: float, nodes: int, index: int, seed: int = 1):
        if total_qps <= 0:
            raise WorkloadError(f"total_qps must be positive, got {total_qps}")
        if nodes <= 0:
            raise WorkloadError(f"nodes must be positive, got {nodes}")
        if not 0 <= index < nodes:
            raise WorkloadError(
                f"node index must be in [0, {nodes}), got {index}"
            )
        self._total_qps = total_qps
        self._nodes = nodes
        self._index = index
        self._scale = 1.0 / total_qps
        import random as _random

        self._gamma = _random.Random(seed).gammavariate

    @property
    def rate_qps(self) -> float:
        return self._total_qps / self._nodes

    def arrivals(self, horizon: float) -> Iterator[float]:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        gamma = self._gamma
        scale = self._scale
        nodes = self._nodes
        t = gamma(self._index + 1, scale)
        while t < horizon:
            yield t
            t += gamma(nodes, scale)


class BurstyLoadGenerator(LoadGenerator):
    """ON/OFF modulated Poisson process (microservice-style burstiness).

    During ON periods traffic flows at ``peak_qps``; OFF periods are
    silent. Average rate = peak_qps * duty_cycle. Used by ablation
    studies of governor behaviour under irregular request streams.
    """

    def __init__(
        self,
        peak_qps: float,
        on_mean: float,
        off_mean: float,
        seed: int = 1,
    ):
        if peak_qps <= 0:
            raise WorkloadError("peak_qps must be positive")
        if on_mean <= 0 or off_mean <= 0:
            raise WorkloadError("ON/OFF period means must be positive")
        self._peak = peak_qps
        self._interarrival = Exponential(1.0 / peak_qps, seed=seed)
        self._on = Exponential(on_mean, seed=seed + 1)
        self._off = Exponential(off_mean, seed=seed + 2)
        self._duty = on_mean / (on_mean + off_mean)

    @property
    def rate_qps(self) -> float:
        return self._peak * self._duty

    def arrivals(self, horizon: float) -> Iterator[float]:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        t = 0.0
        while t < horizon:
            on_end = t + self._on.sample()
            arrival = t + self._interarrival.sample()
            while arrival < min(on_end, horizon):
                yield arrival
                arrival += self._interarrival.sample()
            t = on_end + self._off.sample()
