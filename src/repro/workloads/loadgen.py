"""Open-loop load generation (Mutilate-style).

The paper drives Memcached with the Mutilate load generator configured to
recreate Facebook's ETC workload: open-loop (arrivals do not wait for
completions — the right model for measuring tail latency) with Poisson
arrivals at a target queries-per-second rate.

:class:`OpenLoopPoisson` produces the arrival schedule; the server node
consumes it event by event.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.simkit.distributions import Exponential


class LoadGenerator:
    """Interface: an arrival-time iterator."""

    def arrivals(self, horizon: float) -> Iterator[float]:
        """Yield absolute arrival times in [0, horizon), non-decreasing.

        Consumers schedule arrivals one at a time (streaming), so times
        must not go backwards; an out-of-order yield fails the run with a
        :class:`~repro.errors.SimulationError`. Times at or past
        ``horizon`` are ignored.
        """
        raise NotImplementedError

    @property
    def rate_qps(self) -> float:
        raise NotImplementedError


class OpenLoopPoisson(LoadGenerator):
    """Open-loop Poisson arrivals at a fixed aggregate rate.

    Args:
        qps: aggregate arrival rate (queries per second).
        seed: RNG seed for the inter-arrival stream.
    """

    def __init__(self, qps: float, seed: int = 1):
        if qps <= 0:
            raise WorkloadError(f"qps must be positive, got {qps}")
        self._qps = qps
        self._interarrival = Exponential(1.0 / qps, seed=seed)

    @property
    def rate_qps(self) -> float:
        return self._qps

    def arrivals(self, horizon: float) -> Iterator[float]:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        t = self._interarrival.sample()
        while t < horizon:
            yield t
            t += self._interarrival.sample()

    def expected_count(self, horizon: float) -> float:
        return self._qps * horizon


class BurstyLoadGenerator(LoadGenerator):
    """ON/OFF modulated Poisson process (microservice-style burstiness).

    During ON periods traffic flows at ``peak_qps``; OFF periods are
    silent. Average rate = peak_qps * duty_cycle. Used by ablation
    studies of governor behaviour under irregular request streams.
    """

    def __init__(
        self,
        peak_qps: float,
        on_mean: float,
        off_mean: float,
        seed: int = 1,
    ):
        if peak_qps <= 0:
            raise WorkloadError("peak_qps must be positive")
        if on_mean <= 0 or off_mean <= 0:
            raise WorkloadError("ON/OFF period means must be positive")
        self._peak = peak_qps
        self._interarrival = Exponential(1.0 / peak_qps, seed=seed)
        self._on = Exponential(on_mean, seed=seed + 1)
        self._off = Exponential(off_mean, seed=seed + 2)
        self._duty = on_mean / (on_mean + off_mean)

    @property
    def rate_qps(self) -> float:
        return self._peak * self._duty

    def arrivals(self, horizon: float) -> Iterator[float]:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon}")
        t = 0.0
        while t < horizon:
            on_end = t + self._on.sample()
            arrival = t + self._interarrival.sample()
            while arrival < min(on_end, horizon):
                yield arrival
                arrival += self._interarrival.sample()
            t = on_end + self._off.sample()
