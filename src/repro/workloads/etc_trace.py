"""Facebook ETC-style key-value trace generation (Atikoglu et al. [135]).

The paper drives Memcached with Mutilate configured to recreate the ETC
pool: GET-dominated traffic over a skewed key popularity with small keys
and mostly-small values. This module builds that trace *per request*
instead of sampling an aggregate service-time distribution:

- key popularity: Zipf(s~0.99) over a large key space;
- operation mix: ~97% GET / ~3% SET (defaults follow [135]);
- value sizes: mixture of tiny (<64 B), small (hundreds of B) and the
  occasional multi-KB value;
- per-request service time derived from the request: fixed protocol
  cost + hash/lookup cost + a size-proportional copy term, with GETs on
  popular keys cheaper (hot in cache).

`etc_service_time_model()` adapts the trace to the simulator's
:class:`~repro.workloads.base.ServiceTimeModel` interface so the whole
evaluation can run on trace-derived service times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.cstates import FrequencyPoint
from repro.errors import WorkloadError
from repro.simkit.distributions import Distribution
from repro.units import US
from repro.workloads.base import ServiceTimeModel, Workload


@dataclass(frozen=True)
class ETCRequest:
    """One trace record.

    Attributes:
        op: "GET" or "SET".
        key_rank: popularity rank of the key (1 = hottest).
        value_bytes: value payload size.
    """

    op: str
    key_rank: int
    value_bytes: int

    @property
    def is_write(self) -> bool:
        return self.op == "SET"


class ZipfSampler:
    """Zipf-distributed ranks via rejection-free inverse-CDF on a
    truncated harmonic table (exact for the truncated support)."""

    def __init__(self, n: int, s: float = 0.99, seed: int = 0):
        if n <= 0:
            raise WorkloadError("key space must be positive")
        if s <= 0:
            raise WorkloadError("zipf exponent must be positive")
        self._rng = random.Random(seed)
        # Build the CDF over ranks 1..n (n is modest: popularity classes).
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def sample(self) -> int:
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1


class ETCTraceGenerator:
    """Generates ETC-like request records."""

    def __init__(
        self,
        key_space: int = 10_000,
        zipf_s: float = 0.99,
        get_fraction: float = 0.97,
        seed: int = 0,
    ):
        if not 0.0 <= get_fraction <= 1.0:
            raise WorkloadError("get fraction must be in [0, 1]")
        self.get_fraction = get_fraction
        self._zipf = ZipfSampler(key_space, zipf_s, seed=seed)
        self._rng = random.Random(seed + 1)

    def _value_size(self) -> int:
        """ETC value-size mixture: tiny / small / occasional KB-scale."""
        u = self._rng.random()
        if u < 0.4:
            return self._rng.randint(8, 64)
        if u < 0.95:
            return self._rng.randint(65, 1024)
        return self._rng.randint(1025, 8192)

    def request(self) -> ETCRequest:
        op = "GET" if self._rng.random() < self.get_fraction else "SET"
        return ETCRequest(
            op=op, key_rank=self._zipf.sample(), value_bytes=self._value_size()
        )

    def requests(self, count: int) -> Iterator[ETCRequest]:
        if count < 0:
            raise WorkloadError("count must be >= 0")
        for _ in range(count):
            yield self.request()


@dataclass(frozen=True)
class ETCCostModel:
    """Service-time derivation from a request's properties.

    All costs at base frequency; the scalable/fixed split is preserved so
    frequency scaling behaves like the aggregate model.

    Attributes:
        protocol_cost: parse + respond (scalable: core work).
        lookup_cost: hash + chain walk (scalable).
        hot_key_discount: lookup discount for ranks <= hot_rank (resident
            lines, no memory stall).
        hot_rank: rank boundary of the hot set.
        byte_copy_cost: per-byte copy/transmit cost (fixed: memory/NIC).
        write_surcharge: extra fixed cost of SETs (allocation, LRU ops).
    """

    protocol_cost: float = 2.0 * US
    lookup_cost: float = 2.2 * US
    hot_key_discount: float = 0.5
    hot_rank: int = 100
    byte_copy_cost: float = 0.004 * US  # ~4 ns/byte end to end
    write_surcharge: float = 3.0 * US

    def scalable_time(self, request: ETCRequest) -> float:
        lookup = self.lookup_cost
        if request.key_rank <= self.hot_rank:
            lookup *= self.hot_key_discount
        return self.protocol_cost + lookup

    def fixed_time(self, request: ETCRequest) -> float:
        fixed = request.value_bytes * self.byte_copy_cost
        if request.is_write:
            fixed += self.write_surcharge
        return fixed

    def service_time(self, request: ETCRequest) -> float:
        return self.scalable_time(request) + self.fixed_time(request)


class _TraceComponent(Distribution):
    """Adapter: one side (scalable/fixed) of trace-derived service times.

    Both sides share one generator stream so each simulated request's
    scalable and fixed parts describe the *same* trace record.
    """

    def __init__(self, shared: "_SharedTrace", side: str):
        self._shared = shared
        self._side = side

    def sample(self) -> float:
        return self._shared.draw(self._side)

    @property
    def mean(self) -> float:
        return self._shared.mean(self._side)


class _SharedTrace:
    """Keeps scalable/fixed samples of the same record in lockstep."""

    def __init__(self, generator: ETCTraceGenerator, costs: ETCCostModel):
        self._generator = generator
        self._costs = costs
        self._pending = {}
        # Analytic-ish means via a warm sample (deterministic seed).
        warm = [generator.request() for _ in range(4000)]
        self._means = {
            "scalable": sum(costs.scalable_time(r) for r in warm) / len(warm),
            "fixed": sum(costs.fixed_time(r) for r in warm) / len(warm),
        }

    def draw(self, side: str) -> float:
        if side not in self._pending:
            request = self._generator.request()
            self._pending = {
                "scalable": self._costs.scalable_time(request),
                "fixed": self._costs.fixed_time(request),
            }
        return self._pending.pop(side)

    def mean(self, side: str) -> float:
        return self._means[side]


def etc_service_time_model(
    seed: int = 500,
    costs: ETCCostModel = ETCCostModel(),
) -> ServiceTimeModel:
    """Trace-driven ServiceTimeModel for the simulator."""
    shared = _SharedTrace(ETCTraceGenerator(seed=seed), costs)
    return ServiceTimeModel(
        scalable=_TraceComponent(shared, "scalable"),
        fixed=_TraceComponent(shared, "fixed"),
        base_frequency=FrequencyPoint.P1,
    )


def memcached_etc_workload(seed: int = 500) -> Workload:
    """Memcached with trace-derived (instead of aggregate) service times.

    A drop-in alternative to :func:`repro.workloads.memcached_workload`
    whose per-request costs come from ETC record properties.
    """
    return Workload(
        name="memcached-etc-trace",
        service=etc_service_time_model(seed=seed),
        write_fraction=0.03,
        network_latency=117 * US,
        snoop_rate_hz=200.0,
    )
