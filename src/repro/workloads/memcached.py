"""Memcached (ETC) workload parameterisation.

Memcached is the paper's primary workload: a lightweight key-value store
driven by Mutilate recreating Facebook's ETC trace (Sec 6.1). ETC is
GET-dominated (~97% GETs / ~3% SETs per [135]), with short right-skewed
service times of a few microseconds.

The parameterisation below targets the testbed's operating envelope:
10-500 KQPS over 10 cores, i.e. per-core inter-arrival times from 1 ms
down to 20 us against a ~9 us mean service time — which reproduces the
Fig 8a residency progression (C6/C1E at low load, C1-bound at high load).
"""

from __future__ import annotations

from repro.core.cstates import FrequencyPoint
from repro.simkit.distributions import LogNormal
from repro.units import US
from repro.workloads.base import ServiceTimeModel, Workload

#: The request rates the paper sweeps (KQPS), Figs 8-11.
MEMCACHED_RATES_KQPS = [10, 50, 100, 200, 300, 400, 500]

#: Mean service time split: ~40% core-bound (hashing, protocol parsing),
#: ~60% fixed (memory and NIC), for ~40% frequency scalability (Fig 8d).
_SCALABLE_MEAN = 3.6 * US
_FIXED_MEAN = 5.4 * US

#: Log-normal shape of ETC service times (right-skewed, modest tail).
_SIGMA = 0.55

#: ETC write share [135]: ~3% SETs.
WRITE_FRACTION = 0.03


def memcached_workload(seed: int = 100) -> Workload:
    """Build the Memcached/ETC workload model.

    Args:
        seed: base RNG seed; the scalable and fixed components draw from
            independent streams derived from it.
    """
    service = ServiceTimeModel(
        scalable=LogNormal(mean=_SCALABLE_MEAN, sigma=_SIGMA, seed=seed),
        fixed=LogNormal(mean=_FIXED_MEAN, sigma=_SIGMA, seed=seed + 1),
        base_frequency=FrequencyPoint.P1,
    )
    return Workload(
        name="memcached",
        service=service,
        write_fraction=WRITE_FRACTION,
        network_latency=117 * US,  # measured network RTT in the paper's testbed
        snoop_rate_hz=200.0,  # LLC-miss-driven snoops from peer cores
    )
