"""MySQL (sysbench OLTP) workload parameterisation.

MySQL (Sec 6.1) runs the sysbench OLTP profile: transactions of hundreds
of microseconds with a heavy tail (occasional range scans and commits
hitting storage). The paper evaluates low/mid/high request rates
(Fig 12); the baseline shows >= 40% C6 residency at *all* three rates —
OLTP inter-arrival gaps are long relative to the C6 target residency —
which is exactly why disabling C6 helps latency (4-10%) and why C6A's
power-at-C1-latency wins 22-56% average power there.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cstates import FrequencyPoint
from repro.simkit.distributions import LogNormal, MixtureDistribution, Pareto
from repro.units import US
from repro.workloads.base import ServiceTimeModel, Workload

#: Aggregate transaction rates for the low/mid/high operating points.
MYSQL_RATES: Dict[str, float] = {"low": 500.0, "mid": 1_500.0, "high": 4_000.0}

#: OLTP transactions: ~45% core-bound (btree walks, row ops), the rest
#: buffer-pool and log waits.
_SCALABLE_MEAN = 180 * US
_FIXED_MEAN = 220 * US

#: OLTP read/write mix dirties lines heavily.
WRITE_FRACTION = 0.3


def mysql_workload(seed: int = 300) -> Workload:
    """Build the MySQL OLTP workload model.

    The fixed component is a mixture: mostly moderate buffer-pool work,
    with a Pareto tail for the occasional scan/commit stall.
    """
    fixed = MixtureDistribution(
        components=[
            (0.9, LogNormal(mean=0.8 * _FIXED_MEAN, sigma=0.5, seed=seed + 1)),
            (0.1, Pareto(mean=2.8 * _FIXED_MEAN, alpha=2.2, seed=seed + 2)),
        ],
        seed=seed + 3,
    )
    service = ServiceTimeModel(
        scalable=LogNormal(mean=_SCALABLE_MEAN, sigma=0.5, seed=seed),
        fixed=fixed,
        base_frequency=FrequencyPoint.P1,
    )
    return Workload(
        name="mysql",
        service=service,
        write_fraction=WRITE_FRACTION,
        network_latency=117 * US,
        snoop_rate_hz=100.0,
    )
