"""Apache Kafka workload parameterisation.

Kafka (Sec 6.1) is a real-time event-streaming broker driven by the
ProducerPerformance / ConsumerPerformance tools. Requests (produce/fetch
batches) are heavier than Memcached queries — tens of microseconds of
broker work per batch — and the paper evaluates only a low and a high
rate (Fig 13). At the low rate the baseline spends >60% of time in C6;
at the high rate C6 is never entered.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cstates import FrequencyPoint
from repro.simkit.distributions import LogNormal
from repro.units import US
from repro.workloads.base import ServiceTimeModel, Workload

#: Request rates (aggregate QPS) for the low/high operating points. Even
#: the high point keeps per-core utilisation modest (~16%) — the paper's
#: high-rate Kafka never enters C6 but still idles mostly in C1, which is
#: what makes C6A save >56% there.
KAFKA_RATES: Dict[str, float] = {"low": 4_000.0, "high": 40_000.0}

#: Batch handling: ~35% core-bound (compression, CRC), rest is page-cache
#: and socket work.
_SCALABLE_MEAN = 14 * US
_FIXED_MEAN = 26 * US
_SIGMA = 0.6

#: Produce-heavy mix dirties the page cache aggressively.
WRITE_FRACTION = 0.4


def kafka_workload(seed: int = 200) -> Workload:
    """Build the Kafka broker workload model."""
    service = ServiceTimeModel(
        scalable=LogNormal(mean=_SCALABLE_MEAN, sigma=_SIGMA, seed=seed),
        fixed=LogNormal(mean=_FIXED_MEAN, sigma=_SIGMA, seed=seed + 1),
        base_frequency=FrequencyPoint.P1,
    )
    return Workload(
        name="kafka",
        service=service,
        write_fraction=WRITE_FRACTION,
        network_latency=117 * US,
        snoop_rate_hz=150.0,
    )
