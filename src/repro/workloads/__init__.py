"""Workload substrate: latency-critical services and load generation.

- :mod:`~repro.workloads.base` — service-time models that split work into
  frequency-scalable and fixed components.
- :mod:`~repro.workloads.loadgen` — open-loop Poisson load generator
  (Mutilate-style).
- :mod:`~repro.workloads.memcached` / :mod:`~repro.workloads.kafka` /
  :mod:`~repro.workloads.mysql` — the paper's three evaluated services.
- :mod:`~repro.workloads.profiles` — measured-residency profiles of the
  four validation workloads (Sec 6.3) and the Sec 2 motivation profiles.
"""

from repro.workloads.base import ServiceTimeModel, Workload
from repro.workloads.loadgen import LoadGenerator, OpenLoopPoisson, RoundRobinThinned
from repro.workloads.memcached import memcached_workload, MEMCACHED_RATES_KQPS
from repro.workloads.kafka import kafka_workload, KAFKA_RATES
from repro.workloads.mysql import mysql_workload, MYSQL_RATES
from repro.workloads.etc_trace import memcached_etc_workload
from repro.workloads.profiles import (
    ResidencyProfile,
    motivation_profiles,
    validation_profiles,
)

__all__ = [
    "ServiceTimeModel",
    "Workload",
    "LoadGenerator",
    "OpenLoopPoisson",
    "RoundRobinThinned",
    "memcached_workload",
    "MEMCACHED_RATES_KQPS",
    "kafka_workload",
    "KAFKA_RATES",
    "mysql_workload",
    "MYSQL_RATES",
    "memcached_etc_workload",
    "ResidencyProfile",
    "motivation_profiles",
    "validation_profiles",
]
