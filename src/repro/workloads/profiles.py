"""Measured C-state residency profiles.

Two uses in the paper:

- **Motivation (Sec 2)**: published residencies for a web-search workload
  at 50%/25% load and a key-value store at 20% load [28, 30, 31], plugged
  into Eq. 1 to bound the savings opportunity (23%/41%/55%).
- **Model validation (Sec 6.3)**: four server workloads (SPECpower,
  Nginx, Spark, Hive) run at multiple utilisation levels; the analytic
  model's power estimate is compared against RAPL measurements, reaching
  94-96% accuracy.

We cannot re-measure the authors' machines, so profiles carry the
residencies plus a signed *measurement gap* per level — the part of real
package power the residency-weighted model cannot see (transition energy,
uncore activity, temperature-dependent leakage). The gaps are sized to
the error budget the paper reports, making the validation experiment a
faithful re-enactment of the comparison rather than a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProfileLevel:
    """One operating point of a profiled workload.

    Attributes:
        label: utilisation label ("10%", "low", ...).
        residency: fraction of time per C-state name; must sum to ~1.
        measurement_gap: signed fractional gap between the
            residency-weighted model and the 'measured' power at this
            level (positive: real machine draws more than the model).
    """

    label: str
    residency: Dict[str, float]
    measurement_gap: float = 0.0

    def __post_init__(self) -> None:
        total = sum(self.residency.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"{self.label}: residencies must sum to 1, got {total}"
            )
        if any(v < 0 for v in self.residency.values()):
            raise ConfigurationError(f"{self.label}: residencies must be >= 0")
        if not -0.5 < self.measurement_gap < 0.5:
            raise ConfigurationError(f"{self.label}: implausible measurement gap")


@dataclass(frozen=True)
class ResidencyProfile:
    """A workload's residency profiles across operating points."""

    name: str
    levels: Sequence[ProfileLevel]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError(f"{self.name}: profile needs levels")
        labels = [lv.label for lv in self.levels]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"{self.name}: duplicate level labels")

    def level(self, label: str) -> ProfileLevel:
        for lv in self.levels:
            if lv.label == label:
                return lv
        raise ConfigurationError(f"{self.name}: no level {label!r}")


def motivation_profiles() -> List[Tuple[str, Dict[str, float]]]:
    """The three Sec 2 residency examples feeding Eq. 1.

    Returns (description, residency) pairs; residency keys are C-state
    names of the Skylake baseline hierarchy.
    """
    return [
        ("search @ 50% load", {"C0": 0.50, "C1": 0.45, "C6": 0.05}),
        ("search @ 25% load", {"C0": 0.25, "C1": 0.55, "C6": 0.20}),
        ("key-value store @ 20% load", {"C0": 0.20, "C1": 0.80, "C6": 0.00}),
    ]


def _levels(
    rows: Sequence[Tuple[str, float, float, float, float, float]]
) -> List[ProfileLevel]:
    """Rows of (label, c0, c1, c1e, c6, gap)."""
    return [
        ProfileLevel(
            label=label,
            residency={"C0": c0, "C1": c1, "C1E": c1e, "C6": c6},
            measurement_gap=gap,
        )
        for label, c0, c1, c1e, c6, gap in rows
    ]


def validation_profiles() -> List[ResidencyProfile]:
    """The four Sec 6.3 validation workloads.

    SPECpower steps utilisation in regular increments; Nginx is a spiky
    web server; Spark and Hive are batch analytics with long C0 stretches
    and deep sleeps between stages. Measurement gaps are sized so the
    residency-weighted model achieves the paper's accuracy band
    (~96.1% / 95.2% / 94.4% / 94.9%).
    """
    return [
        ResidencyProfile(
            "SPECpower",
            _levels(
                [
                    ("10%", 0.10, 0.15, 0.25, 0.50, +0.042),
                    ("30%", 0.30, 0.20, 0.25, 0.25, -0.036),
                    ("50%", 0.50, 0.25, 0.15, 0.10, +0.040),
                    ("80%", 0.80, 0.15, 0.05, 0.00, -0.038),
                ]
            ),
        ),
        ResidencyProfile(
            "Nginx",
            _levels(
                [
                    ("10%", 0.10, 0.35, 0.35, 0.20, +0.050),
                    ("30%", 0.30, 0.40, 0.25, 0.05, -0.046),
                    ("50%", 0.50, 0.35, 0.15, 0.00, +0.048),
                    ("80%", 0.80, 0.18, 0.02, 0.00, -0.048),
                ]
            ),
        ),
        ResidencyProfile(
            "Spark",
            _levels(
                [
                    ("25%", 0.25, 0.15, 0.10, 0.50, +0.058),
                    ("50%", 0.50, 0.15, 0.10, 0.25, -0.054),
                    ("75%", 0.75, 0.10, 0.05, 0.10, +0.056),
                    ("95%", 0.95, 0.04, 0.01, 0.00, -0.056),
                ]
            ),
        ),
        ResidencyProfile(
            "Hive",
            _levels(
                [
                    ("25%", 0.25, 0.20, 0.15, 0.40, +0.052),
                    ("50%", 0.50, 0.20, 0.10, 0.20, -0.049),
                    ("75%", 0.75, 0.12, 0.08, 0.05, +0.051),
                    ("95%", 0.95, 0.05, 0.00, 0.00, -0.051),
                ]
            ),
        ),
    ]
