"""Service-time models.

Each request's service time splits into:

- a *frequency-scalable* part (instructions retiring on the core), which
  shrinks proportionally when the core runs above base frequency, and
- a *fixed* part (memory, NIC, lock stalls) that frequency does not help.

The split determines the workload's *frequency scalability* (Sec 6.2,
Fig 8d): the performance change per unit frequency change. It is also how
the AW model charges the ~1% fmax penalty of the extra power gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cstates import FrequencyPoint
from repro.errors import WorkloadError
from repro.simkit.distributions import Distribution
from repro.units import US


@dataclass
class ServiceTimeModel:
    """Two-component service-time model.

    Attributes:
        scalable: distribution of the core-bound component *at base
            frequency* (P1).
        fixed: distribution of the frequency-insensitive component.
        base_frequency: the frequency the scalable component is quoted at.
    """

    scalable: Distribution
    fixed: Distribution
    base_frequency: FrequencyPoint = FrequencyPoint.P1

    def __post_init__(self) -> None:
        # sample() runs once per simulated request; memoise the frequency
        # ratio per (frequency, derate) operating point — there are only a
        # handful — so the hot path is two RNG draws and an FMA. The
        # component samplers dispatch at C level (Distribution.sampler).
        self._ratio_cache: dict = {}
        self._sample_scalable = self.scalable.sampler()
        self._sample_fixed = self.fixed.sampler()

    def _frequency_ratio(
        self, frequency: FrequencyPoint, frequency_derate: float
    ) -> float:
        key = (frequency, frequency_derate)
        ratio = self._ratio_cache.get(key)
        if ratio is None:
            if not 0.0 <= frequency_derate < 1.0:
                raise WorkloadError(
                    f"derate must be in [0, 1), got {frequency_derate}"
                )
            frequency = frequency or self.base_frequency
            effective_hz = frequency.frequency_hz * (1.0 - frequency_derate)
            ratio = self.base_frequency.frequency_hz / effective_hz
            self._ratio_cache[key] = ratio
        return ratio

    def sample(
        self,
        frequency: FrequencyPoint = None,
        frequency_derate: float = 0.0,
    ) -> float:
        """One service time at the given operating point.

        Args:
            frequency: actual core frequency (defaults to base).
            frequency_derate: fractional fmax loss (AW's ~1% power-gate
                penalty); slows the scalable component only.
        """
        ratio = self._ratio_cache.get((frequency, frequency_derate))
        if ratio is None:
            ratio = self._frequency_ratio(frequency, frequency_derate)
        return self._sample_scalable() * ratio + self._sample_fixed()

    def mean_at(
        self,
        frequency: FrequencyPoint = None,
        frequency_derate: float = 0.0,
    ) -> float:
        """Analytic mean service time at an operating point."""
        if not 0.0 <= frequency_derate < 1.0:
            raise WorkloadError(f"derate must be in [0, 1), got {frequency_derate}")
        frequency = frequency or self.base_frequency
        effective_hz = frequency.frequency_hz * (1.0 - frequency_derate)
        ratio = self.base_frequency.frequency_hz / effective_hz
        return self.scalable.mean * ratio + self.fixed.mean

    @property
    def mean(self) -> float:
        """Mean service time at base frequency."""
        return self.scalable.mean + self.fixed.mean

    @property
    def scalable_fraction(self) -> float:
        """Share of mean service time that scales with frequency."""
        return self.scalable.mean / self.mean

    def frequency_scalability(
        self,
        f_low_hz: float = 2.0e9,
        f_high_hz: float = 2.2e9,
    ) -> float:
        """Performance change per unit frequency change (Sec 6.2, [144]).

        Defined as (perf gain) / (frequency gain) between two frequencies,
        where perf is 1 / mean service time. A fully core-bound workload
        scores 1.0; a fully memory-bound one scores 0.0.
        """
        if f_low_hz <= 0 or f_high_hz <= f_low_hz:
            raise WorkloadError("need 0 < f_low < f_high")
        base_hz = self.base_frequency.frequency_hz
        t_low = self.scalable.mean * (base_hz / f_low_hz) + self.fixed.mean
        t_high = self.scalable.mean * (base_hz / f_high_hz) + self.fixed.mean
        perf_gain = t_low / t_high - 1.0
        freq_gain = f_high_hz / f_low_hz - 1.0
        return perf_gain / freq_gain


@dataclass
class Workload:
    """A named service: request service-time model plus traffic traits.

    Attributes:
        name: service name ("memcached", ...).
        service: the per-request service-time model.
        write_fraction: share of requests that dirty cache lines (drives
            the C6 flush cost).
        network_latency: fixed client<->server network time added to
            server-side latency for end-to-end numbers (the paper measures
            117 us for its Memcached testbed).
        snoop_rate_hz: background snoop-burst rate per idle core induced
            by the other cores' traffic at nominal load.
    """

    name: str
    service: ServiceTimeModel
    write_fraction: float = 0.1
    network_latency: float = 117 * US
    snoop_rate_hz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be in [0, 1]")
        if self.network_latency < 0:
            raise WorkloadError("network latency must be >= 0")
        if self.snoop_rate_hz < 0:
            raise WorkloadError("snoop rate must be >= 0")

    def utilization(self, qps: float, cores: int) -> float:
        """Offered per-core utilisation at ``qps`` spread over ``cores``."""
        if qps < 0 or cores <= 0:
            raise WorkloadError("need qps >= 0 and cores > 0")
        return qps * self.service.mean / cores
