"""The ``repro worker`` loop: claim, heartbeat, simulate, commit.

A worker is one OS process pointed at a queue directory and a shared
:class:`~repro.store.ResultStore`. It loops::

    claim a pending row (atomic lease)  ->  parse the spec
    ->  short-circuit if the store already has the result
    ->  simulate (a heartbeat thread extends the lease meanwhile)
    ->  put the result in the shared store  ->  mark the row done

and appends lifecycle events (``worker_start``, ``claimed``,
``heartbeat``, ``finished``, ``store_hit``, ``failed``, ``retry``,
``released``, ``worker_exit``) to its own
:class:`~repro.obs.manifest.RunManifest` under the queue directory, so
``repro report --manifest`` can render the fleet afterwards.

Crash semantics:

- **SIGKILL / power loss** — nothing to do here: the worker simply
  stops heartbeating and the coordinator's lease-expiry recovery
  requeues its point.
- **SIGTERM** — cooperative drain: the current point is finished (or,
  if the signal lands before simulation starts, its lease is released
  with the attempt refunded) and the loop exits cleanly.
- **Lost lease** — a worker stalled past its lease keeps simulating,
  but completions are harmless: results are deterministic, the store
  write is an idempotent overwrite of identical bytes, and the queue's
  ``complete`` settles the row for whichever executor gets there first.

This module is a **worker entry point**: it is imported inside bare
spawned processes, so it must never import parent-only modules
(``argparse``, ``repro.cli``, ...) at import time — ``repro lint``'s
CONC004 enforces that. CLI flag parsing lives in :mod:`repro.cli`,
which calls :func:`worker_main` with plain arguments.
"""

from __future__ import annotations

import os
import platform
import signal
import threading
import time
from typing import Callable, Optional

from repro.distrib.chaos import ChaosPlan
from repro.distrib.queue import DEFAULT_LEASE_S, JobQueue
from repro.errors import ConfigurationError
from repro.obs.manifest import RunManifest, spec_key
from repro.store import ResultStore
from repro.sweep.spec import ScenarioSpec

#: How often the heartbeat thread extends the lease, as a fraction of
#: the lease duration. 1/3 gives two chances to beat before expiry.
HEARTBEAT_FRACTION = 3.0


def default_worker_id() -> str:
    """Host/pid identity, unique across a filesystem-sharing fleet."""
    host = platform.node() or "host"
    return f"{host}-{os.getpid()}"


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


class _Heartbeat:
    """Background thread that extends the lease of the point in flight.

    The worker points it at a job key while simulating and clears it
    between points. A chaos-frozen heartbeat stops extending (the
    worker keeps simulating, oblivious) — exactly what a stalled NFS
    mount or a live-locked process looks like from the outside.
    """

    def __init__(
        self,
        queue: JobQueue,
        worker: str,
        lease_s: float,
        manifest: Optional[RunManifest],
        frozen: bool = False,
    ):
        self._queue = queue
        self._worker = worker
        self._lease_s = lease_s
        self._manifest = manifest
        self._frozen = frozen
        self._key: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def watch(self, key: str) -> None:
        with self._lock:
            self._key = key

    def clear(self) -> None:
        with self._lock:
            self._key = None

    def _run(self) -> None:
        interval = max(0.05, self._lease_s / HEARTBEAT_FRACTION)
        while not self._stop.wait(interval):
            with self._lock:
                key = self._key
            if key is None or self._frozen:
                continue
            held = self._queue.heartbeat(key, self._worker, self._lease_s)
            if self._manifest is not None:
                self._manifest.emit("heartbeat", job=key[:12], held=held)


def worker_main(
    queue_dir: str,
    store_dir: Optional[str] = None,
    worker_id: Optional[str] = None,
    lease_s: float = DEFAULT_LEASE_S,
    retries: int = 0,
    poll_s: float = 0.2,
    drain: bool = True,
    max_points: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one worker until the queue drains (or SIGTERM). Returns 0.

    Args:
        queue_dir: the coordinator's queue directory.
        store_dir: the ONE shared result store all workers and the
            coordinator write to; defaults to the user-level store.
        worker_id: identity for leases and the manifest; defaults to
            :func:`default_worker_id`.
        lease_s: lease duration per claim; the heartbeat thread extends
            it every ``lease_s / 3`` seconds.
        retries: ``FailurePolicy.retries`` — how many times a failing
            point is requeued (with backoff) before going terminal.
        poll_s: idle sleep between claim attempts when the queue has
            rows that are not yet claimable (backoff gates, peers'
            leases).
        drain: exit once no pending rows remain and no unexpired lease
            is held by anyone; ``False`` keeps the worker parked for
            more work until SIGTERM (a long-lived fleet member).
        max_points: optional cap on points settled (tests).
        log: optional message sink.
    """
    worker_id = worker_id or default_worker_id()
    queue = JobQueue(queue_dir)
    store = ResultStore(store_dir)
    plan = ChaosPlan.from_env()
    manifest = RunManifest(
        str(queue.manifest_dir() / f"{worker_id}.jsonl"), worker=worker_id
    )

    stopping = threading.Event()

    def _on_sigterm(signum, frame):  # pragma: no cover - signal plumbing
        stopping.set()

    # Restore the previous handler on exit: when worker_main runs
    # inline (tests, embedding), leaving it installed would leak into
    # the host process — and into every child it later forks, where a
    # stale handler turns SIGTERM into a silent no-op.
    previous_handler: Optional[object] = None
    try:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread (embedded use)
        pass

    beat = _Heartbeat(
        queue, worker_id, lease_s, manifest, frozen=plan.freeze_heartbeat
    )
    beat.start()
    claims = 0
    settled = 0
    manifest.emit(
        "worker_start",
        pid=os.getpid(),
        lease_s=lease_s,
        retries=retries,
        chaos=plan.armed,
    )
    if log is not None:
        log(f"worker {worker_id}: started on queue {queue_dir}")
    try:
        while not stopping.is_set():
            job = queue.claim(worker_id, lease_s)
            if job is None:
                if drain and queue.is_drained():
                    break
                if stopping.wait(poll_s):
                    break
                continue
            claims += 1
            plan.maybe_kill("claim", claims, worker_id)
            beat.watch(job.key)
            try:
                spec = ScenarioSpec.from_dict(job.spec)
            except (ConfigurationError, TypeError, ValueError) as exc:
                # JSON parsed but the payload is not a valid spec:
                # structurally corrupt, never retryable as-is. Fail it
                # with retries=-1 so it goes terminal immediately; the
                # coordinator's heal pass can restore and requeue.
                beat.clear()
                queue.fail(job.key, worker_id, _describe(exc), retries=-1)
                manifest.emit(
                    "failed", job=job.key[:12], attempt=job.attempt,
                    error=_describe(exc),
                )
                continue
            manifest.emit(
                "claimed",
                key=spec_key(spec),
                job=job.key[:12],
                attempt=job.attempt,
            )
            if stopping.is_set():
                # SIGTERM landed between claim and compute: hand the
                # lease back (attempt refunded) and exit cleanly.
                beat.clear()
                queue.release(job.key, worker_id)
                manifest.emit("released", key=spec_key(spec), job=job.key[:12])
                break
            cached = store.get(spec.cache_key)
            if cached is not None:
                beat.clear()
                queue.complete(job.key, worker_id)
                manifest.emit(
                    "store_hit", key=spec_key(spec), attempt=job.attempt
                )
                settled += 1
            else:
                plan.maybe_kill("compute", claims, worker_id)
                t0 = time.monotonic()
                try:
                    result = spec.execute()
                except Exception as exc:  # the point, not the worker, failed
                    beat.clear()
                    outcome = queue.fail(
                        job.key, worker_id, _describe(exc), retries=retries
                    )
                    manifest.emit(
                        "retry" if outcome == "requeued" else "failed",
                        key=spec_key(spec),
                        attempt=job.attempt,
                        error=_describe(exc),
                    )
                    continue
                store.put(spec.cache_key, result, spec=spec)
                plan.maybe_kill("commit", claims, worker_id)
                beat.clear()
                queue.complete(job.key, worker_id)
                manifest.emit(
                    "finished",
                    key=spec_key(spec),
                    attempt=job.attempt,
                    wall_s=round(time.monotonic() - t0, 6),
                )
                settled += 1
            if max_points is not None and settled >= max_points:
                break
    finally:
        if previous_handler is not None:
            try:
                signal.signal(signal.SIGTERM, previous_handler)
            except (ValueError, TypeError):  # pragma: no cover
                pass
        beat.stop()
        manifest.emit("worker_exit", claims=claims, settled=settled)
        manifest.close()
        if log is not None:
            log(
                f"worker {worker_id}: exiting "
                f"({settled} settled / {claims} claims)"
            )
    return 0
