"""The coordinator side: :class:`DistributedExecutor`.

Slots in beside ``Serial``/``Sharded``/``Process`` behind the same
``map_specs`` contract, but instead of running points it runs a
**supervision loop** over a :class:`~repro.distrib.queue.JobQueue` and
the ONE shared :class:`~repro.store.ResultStore`:

1. enqueue the grid (idempotent — re-invoking over the same queue
   directory re-adopts done rows, in-flight leases and all);
2. optionally spawn N local worker processes (external ``repro worker``
   processes on other hosts join the same queue directory uninvited);
3. poll the store for arriving results, settling queue rows whose
   worker died between the store write and the commit;
4. recover expired leases — requeue with backoff, honour
   ``FailurePolicy.retries``, quarantine poison points that have killed
   ``poison_k`` distinct workers;
5. periodically re-enqueue/heal rows that on-disk faults dropped or
   corrupted;
6. replace dead local workers while work remains (replacements never
   inherit a chaos plan — an injected fault fires once, recovery is
   what's under test).

The coordinator executes nothing itself, so losing it is cheap: kill it
at any point and the queue directory stays consistent; re-running the
same sweep resumes where the fleet left off, skipping store-hit points
without recomputation.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.distrib import chaos as chaos_mod
from repro.distrib.queue import DEFAULT_LEASE_S, JobQueue, job_key
from repro.distrib.worker import worker_main
from repro.errors import ConfigurationError, SimulationError
from repro.store import ResultStore
from repro.sweep.runner import (
    RAISE,
    RECORD,
    FailurePolicy,
    PointFailure,
    _check_worker_registries,
    _manifest_emit,
)
from repro.sweep.spec import ScenarioSpec
from repro.server.metrics import RunResult

#: How many supervision ticks between heal/re-enqueue repair passes.
#: Repairs scan every non-done row, so they run coarser than the poll.
REPAIR_EVERY_TICKS = 20

#: Replacement-worker budget, as a multiple of ``jobs``. A fleet whose
#: workers die instantly at startup (broken environment, not a per-point
#: fault) must not fork-bomb the host; once the budget is spent the
#: coordinator stops respawning and the ``max_wall_s`` backstop (or an
#: externally joined worker) decides the run.
MAX_RESPAWN_FACTOR = 10


class DistributedExecutor:
    """Fan a sweep out to lease-claiming worker processes (module docs).

    Args:
        queue_dir: the queue directory — the database, the per-worker
            manifests, and therefore the whole resumable state of the
            run live here. Reuse the same directory to resume.
        store_dir: root of the ONE shared result store (defaults to the
            user-level store); every worker must point at the same one,
            it is the channel results come back on.
        jobs: local worker processes to spawn (0 means none — workers
            are expected to join from elsewhere via ``repro worker``).
        policy: :class:`FailurePolicy`; ``retries`` bounds requeues of
            failing/lapsing points, ``mode`` decides whether a terminal
            failure raises or is recorded/skipped. ``timeout`` is not
            enforced per-point here — runaway points are bounded by
            lease expiry instead (the lease lapses, the point is
            requeued or quarantined, and the stuck worker's eventual
            result is ignored or harmlessly identical).
        lease_s: lease duration workers claim under; also the failure
            detection latency for a silently dead worker.
        poll_s: supervision loop tick.
        poison_k: distinct workers a point may kill before it is
            quarantined as a poison point.
        chaos_plans: optional ``{worker_slot: ChaosPlan}`` armed on the
            *initial* local workers (tests only); replacements spawn
            clean.
        max_wall_s: optional hard wall-clock bound on one ``map_specs``
            call — a backstop so an empty fleet with ``jobs=0`` cannot
            wait forever; raises :class:`SimulationError` when exceeded.
        respawn: replace dead local workers while work remains.
    """

    name = "distributed"

    def __init__(
        self,
        queue_dir: str,
        store_dir: Optional[str] = None,
        jobs: int = 3,
        policy: Optional[FailurePolicy] = None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.1,
        poison_k: int = 3,
        chaos_plans: Optional[Dict[int, "chaos_mod.ChaosPlan"]] = None,
        max_wall_s: Optional[float] = None,
        respawn: bool = True,
    ):
        if jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
        if poison_k <= 0:
            raise ConfigurationError(
                f"poison_k must be positive, got {poison_k}"
            )
        self.queue = JobQueue(queue_dir)
        self.store = ResultStore(store_dir)
        self.jobs = jobs
        self.policy = policy or FailurePolicy()
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.poison_k = poison_k
        self.chaos_plans = dict(chaos_plans or {})
        self.max_wall_s = max_wall_s
        self.respawn = respawn
        self._spawned = 0
        self._workers: List[multiprocessing.process.BaseProcess] = []

    # -- local worker fleet ------------------------------------------------
    def _spawn_worker(
        self, plan: Optional["chaos_mod.ChaosPlan"] = None
    ) -> multiprocessing.process.BaseProcess:
        """Start one local worker process (spawn start method).

        ``spawn`` mirrors what a remote host does — a bare interpreter
        re-importing everything — so local and remote workers cannot
        diverge in what registrations they see. A chaos plan is armed
        through the environment the child inherits at exec.
        """
        self._spawned += 1
        worker_id = f"{os.getpid()}-w{self._spawned}"
        ctx = multiprocessing.get_context("spawn")
        process = ctx.Process(
            target=worker_main,
            kwargs={
                "queue_dir": str(self.queue.root),
                "store_dir": str(self.store.root),
                "worker_id": worker_id,
                "lease_s": self.lease_s,
                "retries": self.policy.retries,
                "poll_s": min(self.poll_s, 0.2),
            },
            name=f"repro-worker-{worker_id}",
            daemon=False,  # workers must outlive a dying coordinator
        )
        env = plan.to_env() if plan is not None else {}
        saved = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        try:
            process.start()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        self._workers.append(process)
        return process

    def _reap_and_respawn(
        self, work_remains: bool, log: Optional[Callable[[str], None]] = None
    ) -> None:
        """Drop exited workers; spawn clean replacements if work remains.

        Respawns are bounded by ``jobs * MAX_RESPAWN_FACTOR`` total
        spawns so a fleet that dies at startup cannot crash-loop.
        """
        before = len(self._workers)
        self._workers = [p for p in self._workers if p.is_alive()]
        died = before - len(self._workers)
        if died and log is not None:
            log(f"distributed: {died} local worker(s) exited")
        if not (self.respawn and work_remains):
            return
        budget = self.jobs * MAX_RESPAWN_FACTOR
        while len(self._workers) < self.jobs and self._spawned < budget:
            self._spawn_worker(plan=None)
        if died and self._spawned >= budget and log is not None:
            log(
                "distributed: respawn budget exhausted "
                f"({self._spawned} spawns); not replacing dead workers"
            )

    def _shutdown_workers(self) -> None:
        """SIGTERM the local fleet, then escalate on stragglers."""
        for process in self._workers:
            if process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + max(5.0, 2.0 * self.lease_s)
        for process in self._workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._workers = []

    # -- the supervision loop ----------------------------------------------
    def map_specs(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, ScenarioSpec, RunResult], None]] = None,
        on_failure: Optional[Callable[[int, ScenarioSpec, PointFailure], None]] = None,
        log: Optional[Callable[[str], None]] = None,
        manifest=None,
    ) -> List[Optional[Union[RunResult, PointFailure]]]:
        # External workers are bare spawned interpreters: fail fast on
        # parent-only registrations regardless of the local start method.
        _check_worker_registries(specs, start_method="spawn")
        results: List[Optional[Union[RunResult, PointFailure]]] = (
            [None] * len(specs)
        )
        # The runner dedups upstream, but keys map to index *lists* so a
        # direct caller with duplicate specs still gets every slot filled.
        waiting: Dict[str, Tuple[ScenarioSpec, List[int]]] = {}
        for i, spec in enumerate(specs):
            key = job_key(spec)
            if key in waiting:
                waiting[key][1].append(i)
            else:
                waiting[key] = (spec, [i])
        added = self.queue.enqueue([spec for spec, _ in waiting.values()])
        if log is not None:
            log(
                f"distributed: {added} enqueued, "
                f"{len(waiting) - added} re-adopted, {self.jobs} local "
                f"worker(s), queue {self.queue.root}"
            )
        if manifest is not None:
            manifest.emit(
                "distributed",
                points=len(waiting),
                enqueued=added,
                adopted=len(waiting) - added,
                jobs=self.jobs,
                queue=str(self.queue.root),
            )

        def settle_result(key: str) -> None:
            spec, indices = waiting.pop(key)
            result = hits[spec.cache_key]
            # Close the ledger row: covers the worker that died after
            # the store write but before its commit (and is a no-op on
            # rows already done).
            self.queue.complete(key, "coordinator")
            for i in indices:
                results[i] = result
                if on_result is not None:
                    on_result(i, spec, result)

        def settle_failure(key: str, record: Dict[str, object]) -> None:
            spec, indices = waiting.pop(key)
            failure = PointFailure(
                spec=spec,
                error=str(record.get("error", "point failed")),
                attempts=int(record.get("attempts", 0) or 0),
            )
            _manifest_emit(
                manifest, "failed", indices[0], spec,
                attempt=failure.attempts, error=failure.error,
                kind=record.get("kind", "error"),
            )
            if self.policy.mode == RAISE:
                raise SimulationError(
                    f"distributed point failed "
                    f"({record.get('kind', 'error')}): {failure.error}"
                )
            for i in indices:
                if self.policy.mode == RECORD:
                    results[i] = failure
                if on_failure is not None:
                    on_failure(i, spec, failure)

        start = time.monotonic()
        tick = 0
        try:
            for slot in range(self.jobs):
                self._spawn_worker(plan=self.chaos_plans.get(slot))
            while waiting:
                # 1. Results arriving through the shared store.
                hits = self.store.get_many(
                    [spec.cache_key for spec, _ in waiting.values()]
                )
                if hits:
                    for key in [
                        k for k, (s, _) in waiting.items()
                        if s.cache_key in hits
                    ]:
                        settle_result(key)
                if not waiting:
                    break
                # 2. Terminal failures recorded in the queue. Before
                # settling, offer every failed row a heal: the
                # coordinator holds the authoritative specs, so a row
                # whose *payload* was corrupted on disk is repairable
                # and goes back to pending. Heal never touches rows
                # whose payload still parses — genuine point failures
                # settle normally.
                failures = self.queue.failures()
                terminal = [k for k in waiting if k in failures]
                if terminal:
                    healed = self.queue.heal(
                        [waiting[k][0] for k in terminal]
                    )
                    if healed:
                        if log is not None:
                            log(
                                f"distributed: healed {healed} corrupt "
                                "row(s) back to pending"
                            )
                        failures = self.queue.failures()
                        terminal = [k for k in waiting if k in failures]
                for key in terminal:
                    settle_failure(key, failures[key])
                if not waiting:
                    break
                # 3. Lease-expiry recovery.
                report = self.queue.recover_expired(
                    retries=self.policy.retries,
                    poison_k=self.poison_k,
                )
                if report.total and log is not None:
                    log(
                        f"distributed: recovered {len(report.requeued)} "
                        f"lapsed lease(s), {len(report.failed)} failed, "
                        f"{len(report.quarantined)} quarantined"
                    )
                if report.total and manifest is not None:
                    manifest.emit(
                        "recovered",
                        requeued=len(report.requeued),
                        failed=len(report.failed),
                        quarantined=len(report.quarantined),
                    )
                # 4. Periodic repair of dropped/corrupted rows.
                tick += 1
                if tick % REPAIR_EVERY_TICKS == 0:
                    remaining = [spec for spec, _ in waiting.values()]
                    self.queue.enqueue(remaining)  # restores dropped rows
                    healed = self.queue.heal(remaining)
                    if healed and log is not None:
                        log(f"distributed: healed {healed} corrupt row(s)")
                # 5. Local fleet supervision.
                self._reap_and_respawn(work_remains=True, log=log)
                # 6. Wall-clock backstop.
                if (
                    self.max_wall_s is not None
                    and time.monotonic() - start > self.max_wall_s
                ):
                    raise SimulationError(
                        f"distributed sweep exceeded max_wall_s="
                        f"{self.max_wall_s}s with {len(waiting)} point(s) "
                        "outstanding"
                    )
                time.sleep(self.poll_s)
        finally:
            self._shutdown_workers()
        return results

    def manifest_dir(self) -> Path:
        """Where the fleet's per-worker manifests land (for reports)."""
        return self.queue.manifest_dir()
