"""File/sqlite-backed job queue with atomic time-limited leases.

One ``queue.sqlite`` database inside a *queue directory* holds one row
per deduplicated sweep point. Workers — independent processes, possibly
on other hosts sharing the filesystem — claim rows through **leases**:
a claim atomically flips a ``pending`` row to ``leased`` with an expiry
timestamp, and the worker extends that expiry (its heartbeat) while it
simulates. A worker that dies silently simply stops extending; the
coordinator's recovery pass requeues any lease that lapsed. No row is
ever lost to a crash: every point ends ``done`` (result in the shared
:class:`~repro.store.ResultStore`) or ``failed`` (structured failure
record in the row).

Process safety follows :mod:`repro.store.result_store` exactly: WAL
journal mode so readers never block the writer, a generous busy
timeout, and short-lived connections per operation. Claims additionally
use ``BEGIN IMMEDIATE`` so the select-then-update is one atomic
critical section — two workers racing for the last row cannot both win
it.

Rows move through four states::

    pending --claim--> leased --complete--> done
       ^                  |
       |                  +--fail/expiry (attempts left) --> pending
       +--release---------+  (with backoff: exponential + jitter)
                          |
                          +--fail/expiry (attempts exhausted,
                             or poison: killed K distinct workers)
                                                        --> failed

Retry scheduling uses exponential backoff with **decorrelated jitter**
(each delay drawn from ``[base, 3 * previous]``, capped), so a point
that keeps failing does not hammer the queue in lockstep with its
peers. The jitter is derived from a hash of ``(job key, attempt)``
rather than an RNG: scheduling stays deterministic for tests while
still decorrelating across jobs, and simulation results never depend
on it either way.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sweep.spec import ScenarioSpec

#: Database filename inside the queue directory.
DB_FILENAME = "queue.sqlite"

#: Subdirectory where workers append their per-worker run manifests.
MANIFEST_DIRNAME = "manifests"

#: Job states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, LEASED, DONE, FAILED)

#: Default lease duration granted by :meth:`JobQueue.claim` (seconds).
#: Workers heartbeat at a fraction of this, so transient stalls shorter
#: than a lease never trigger a spurious requeue.
DEFAULT_LEASE_S = 30.0

#: Backoff bounds for requeued failures (seconds).
BACKOFF_BASE_S = 0.25
BACKOFF_CAP_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key            TEXT PRIMARY KEY,
    spec           TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    attempt        INTEGER NOT NULL DEFAULT 0,
    not_before     REAL NOT NULL DEFAULT 0,
    backoff_s      REAL NOT NULL DEFAULT 0,
    lease_owner    TEXT,
    lease_expires  REAL,
    failed_workers TEXT NOT NULL DEFAULT '[]',
    error          TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL
)
"""


def job_key(spec: ScenarioSpec) -> str:
    """Stable queue identity of a spec: sha256 of its canonical cache key.

    Distinct from the store digest on purpose — the store key mixes in
    the code-version salt, while a queue row identifies *work*, not a
    cached artifact. Two coordinators enqueueing the same grid into the
    same directory produce the same rows.
    """
    payload = json.dumps(list(spec.cache_key), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def backoff_s(key: str, attempt: int, previous: float) -> float:
    """Next retry delay: exponential backoff with decorrelated jitter.

    Implements the decorrelated-jitter recurrence ``delay = min(cap,
    uniform(base, 3 * previous))`` with the uniform draw replaced by a
    hash of ``(key, attempt)`` — deterministic per (job, attempt), yet
    spread across jobs so requeued points do not thunder back in
    lockstep. The first retry (``previous == 0``) falls back to the
    plain exponential floor ``base * 2**(attempt-1)``.
    """
    unit = int.from_bytes(
        hashlib.sha256(f"{key}:{attempt}".encode("ascii")).digest()[:8], "big"
    ) / float(1 << 64)
    if previous <= 0:
        low = BACKOFF_BASE_S
        high = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2.0 ** max(0, attempt - 1)))
    else:
        low = BACKOFF_BASE_S
        high = min(BACKOFF_CAP_S, 3.0 * previous)
    if high < low:
        high = low
    return low + unit * (high - low)


@dataclass(frozen=True)
class Job:
    """One claimed unit of work, as handed to a worker."""

    key: str
    spec: Dict[str, object]
    attempt: int
    lease_expires: float


@dataclass(frozen=True)
class JobView:
    """Read-only snapshot of one queue row (coordinator/report side)."""

    key: str
    state: str
    attempt: int
    lease_owner: Optional[str]
    lease_expires: Optional[float]
    not_before: float
    error: Optional[str]
    failed_workers: Tuple[str, ...]


@dataclass
class RecoveryReport:
    """What one :meth:`JobQueue.recover_expired` pass did."""

    requeued: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.requeued) + len(self.failed) + len(self.quarantined)


class JobQueue:
    """Lease-based job queue over one sqlite database (see module docs).

    Args:
        root: queue directory (created if missing). Everything a
            distributed run needs to resume lives here: the database
            plus the per-worker manifest directory.
    """

    def __init__(self, root: str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / DB_FILENAME
        with self._connect() as conn:
            conn.execute(_SCHEMA)

    # -- internals ---------------------------------------------------------
    @contextlib.contextmanager
    def _connect(self, immediate: bool = False) -> Iterator[sqlite3.Connection]:
        """Short-lived connection: commit on success, always close.

        ``immediate=True`` opens the transaction with ``BEGIN
        IMMEDIATE`` so the read half of a read-modify-write (claiming a
        row) already holds the write lock — the atomicity the lease
        protocol rests on.
        """
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            if immediate:
                conn.isolation_level = None  # manual transaction control
                conn.execute("BEGIN IMMEDIATE")
                try:
                    yield conn
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
                conn.execute("COMMIT")
            else:
                with conn:
                    yield conn
        finally:
            conn.close()

    def manifest_dir(self) -> Path:
        """Directory for per-worker run manifests (created on demand)."""
        path = self.root / MANIFEST_DIRNAME
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- producing work ----------------------------------------------------
    def enqueue(self, specs: Sequence[ScenarioSpec]) -> int:
        """Insert one pending row per novel spec; returns rows added.

        ``INSERT OR IGNORE`` keyed on :func:`job_key` makes this
        idempotent: re-invoking a coordinator over the same queue
        directory re-adopts every existing row in whatever state it
        reached — done rows stay done, in-flight leases stay leased —
        which is exactly the resume semantics a crashed run needs.
        """
        now = time.time()
        rows = [
            (
                job_key(spec),
                json.dumps(spec.to_dict(), separators=(",", ":")),
                now,
                now,
            )
            for spec in specs
        ]
        if not rows:
            return 0
        with self._connect() as conn:
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO jobs (key, spec, created_at, updated_at) "
                "VALUES (?, ?, ?, ?)",
                rows,
            )
            return conn.total_changes - before

    def heal(self, specs: Sequence[ScenarioSpec]) -> int:
        """Repair rows whose spec payload was lost or corrupted.

        The coordinator holds the authoritative specs, so it can restore
        what on-disk faults (or the chaos harness) destroy: a row whose
        stored spec JSON no longer parses — flagged ``failed`` with a
        ``corrupt`` record by the worker that tripped over it, or still
        ``pending`` — gets its payload rewritten and is requeued;
        :meth:`enqueue`'s idempotent insert (run it first) restores
        dropped rows. Returns the number of rows repaired.
        """
        healed = 0
        by_key = {job_key(spec): spec for spec in specs}
        with self._connect(immediate=True) as conn:
            rows = conn.execute(
                "SELECT key, spec, state FROM jobs WHERE state IN (?, ?)",
                (PENDING, FAILED),
            ).fetchall()
            now = time.time()
            for key, payload, state in rows:
                spec = by_key.get(key)
                if spec is None:
                    continue
                corrupt = False
                try:
                    ScenarioSpec.from_dict(json.loads(payload))
                except Exception:
                    corrupt = True
                if not corrupt:
                    # Only corrupt payloads are healable; a FAILED row
                    # with an intact spec is a real simulation failure
                    # and stays terminal.
                    continue
                conn.execute(
                    "UPDATE jobs SET spec = ?, state = ?, error = NULL, "
                    "not_before = 0, updated_at = ? WHERE key = ?",
                    (
                        json.dumps(spec.to_dict(), separators=(",", ":")),
                        PENDING,
                        now,
                        key,
                    ),
                )
                healed += 1
        return healed

    # -- worker protocol ---------------------------------------------------
    def claim(
        self,
        worker: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: Optional[float] = None,
    ) -> Optional[Job]:
        """Atomically lease the next ready pending row, or return None.

        Rows are taken oldest-first (stable ``created_at, key`` order)
        among those whose backoff gate ``not_before`` has passed. The
        claim increments the attempt counter — a lease *is* an attempt,
        whether or not the worker survives it.

        A row whose stored spec no longer parses (torn write, chaos
        corruption) is marked ``failed`` with a structured ``corrupt``
        record instead of being handed out, and the scan moves on; the
        coordinator's :meth:`heal` pass can later restore and requeue
        it.
        """
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
        now = time.time() if now is None else now
        while True:
            with self._connect(immediate=True) as conn:
                row = conn.execute(
                    "SELECT key, spec, attempt FROM jobs "
                    "WHERE state = ? AND not_before <= ? "
                    "ORDER BY created_at ASC, key ASC LIMIT 1",
                    (PENDING, now),
                ).fetchone()
                if row is None:
                    return None
                key, payload, attempt = row
                try:
                    spec_dict = json.loads(payload)
                    if not isinstance(spec_dict, dict):
                        raise ValueError("spec row is not a JSON object")
                except ValueError as exc:
                    conn.execute(
                        "UPDATE jobs SET state = ?, error = ?, updated_at = ? "
                        "WHERE key = ?",
                        (
                            FAILED,
                            json.dumps(
                                {
                                    "kind": "corrupt",
                                    "error": f"unreadable spec row: {exc}",
                                    "attempts": attempt,
                                }
                            ),
                            now,
                            key,
                        ),
                    )
                    continue  # next candidate
                expires = now + lease_s
                conn.execute(
                    "UPDATE jobs SET state = ?, attempt = attempt + 1, "
                    "lease_owner = ?, lease_expires = ?, updated_at = ? "
                    "WHERE key = ?",
                    (LEASED, worker, expires, now, key),
                )
                return Job(
                    key=key,
                    spec=spec_dict,
                    attempt=attempt + 1,
                    lease_expires=expires,
                )

    def heartbeat(
        self,
        key: str,
        worker: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: Optional[float] = None,
    ) -> bool:
        """Extend a held lease; False means the lease was lost.

        Ownership is checked in the UPDATE itself, so a worker whose
        lapsed lease was already requeued (and possibly re-claimed by a
        peer) learns it here and must abandon the point — its eventual
        result would be a harmless duplicate write of identical bytes,
        but it no longer owns the row.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ?, updated_at = ? "
                "WHERE key = ? AND state = ? AND lease_owner = ?",
                (now + lease_s, now, key, LEASED, worker),
            )
            return cursor.rowcount == 1

    def complete(self, key: str, worker: str, now: Optional[float] = None) -> bool:
        """Mark a row done (its result is in the shared store).

        Deliberately *not* ownership-gated: simulations are
        deterministic, so whichever executor observed the result in the
        store may settle the row — this is how the coordinator closes
        out a point whose worker died between the store write and the
        commit (the result exists; re-running it would only waste CPU).
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, error = NULL, "
                "updated_at = ? WHERE key = ? AND state != ?",
                (DONE, worker, now, key, DONE),
            )
            return cursor.rowcount == 1

    def release(self, key: str, worker: str, now: Optional[float] = None) -> bool:
        """Gracefully return a leased row to pending (SIGTERM path).

        The attempt counter is decremented — a handed-back lease is an
        operator action, not a failure, and must not eat into
        ``FailurePolicy.retries``.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, attempt = attempt - 1, "
                "lease_owner = NULL, lease_expires = NULL, updated_at = ? "
                "WHERE key = ? AND state = ? AND lease_owner = ?",
                (PENDING, now, key, LEASED, worker),
            )
            return cursor.rowcount == 1

    def fail(
        self,
        key: str,
        worker: str,
        error: str,
        retries: int = 0,
        now: Optional[float] = None,
    ) -> str:
        """Record a worker-side execution failure.

        Honours ``FailurePolicy.retries``: with attempts left the row
        returns to pending behind a :func:`backoff_s` gate and
        ``"requeued"`` is returned; otherwise the row goes terminal with
        a structured failure record and ``"failed"`` is returned.
        """
        now = time.time() if now is None else now
        with self._connect(immediate=True) as conn:
            row = conn.execute(
                "SELECT attempt, backoff_s FROM jobs "
                "WHERE key = ? AND state = ? AND lease_owner = ?",
                (key, LEASED, worker),
            ).fetchone()
            if row is None:
                return "lost"  # lease lapsed and was requeued already
            attempt, previous = row
            if attempt <= retries:
                delay = backoff_s(key, attempt, previous)
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_expires = NULL, not_before = ?, backoff_s = ?, "
                    "error = ?, updated_at = ? WHERE key = ?",
                    (PENDING, now + delay, delay, error, now, key),
                )
                return "requeued"
            conn.execute(
                "UPDATE jobs SET state = ?, lease_owner = NULL, "
                "lease_expires = NULL, error = ?, updated_at = ? WHERE key = ?",
                (
                    FAILED,
                    json.dumps(
                        {"kind": "error", "error": error, "attempts": attempt}
                    ),
                    now,
                    key,
                ),
            )
            return "failed"

    # -- coordinator protocol ----------------------------------------------
    def recover_expired(
        self,
        retries: int = 0,
        poison_k: int = 3,
        now: Optional[float] = None,
    ) -> RecoveryReport:
        """Requeue or quarantine every lapsed lease (coordinator pass).

        A claimed-but-unfinished row whose lease expired means its
        worker died (or froze past its heartbeat): the owner is added to
        the row's distinct ``failed_workers`` set, then the row is

        - **quarantined** (terminal ``failed`` with a ``poison`` record)
          once it has now killed ``poison_k`` distinct workers — a
          poison point must not loop forever chewing through the fleet;
        - **failed** (terminal, ``lease_expired`` record) when its
          attempts exhausted ``retries``;
        - **requeued** otherwise, behind an exponential-backoff-with-
          jitter gate exactly like a reported failure.
        """
        now = time.time() if now is None else now
        report = RecoveryReport()
        with self._connect(immediate=True) as conn:
            rows = conn.execute(
                "SELECT key, attempt, backoff_s, lease_owner, failed_workers "
                "FROM jobs WHERE state = ? AND lease_expires < ?",
                (LEASED, now),
            ).fetchall()
            for key, attempt, previous, owner, failed_workers in rows:
                try:
                    workers = list(json.loads(failed_workers))
                except ValueError:
                    workers = []
                if owner and owner not in workers:
                    workers.append(owner)
                workers_json = json.dumps(workers)
                if len(workers) >= poison_k:
                    conn.execute(
                        "UPDATE jobs SET state = ?, lease_owner = NULL, "
                        "lease_expires = NULL, failed_workers = ?, "
                        "error = ?, updated_at = ? WHERE key = ?",
                        (
                            FAILED,
                            workers_json,
                            json.dumps(
                                {
                                    "kind": "poison",
                                    "error": (
                                        f"poison point: killed {len(workers)} "
                                        "distinct worker(s)"
                                    ),
                                    "attempts": attempt,
                                    "workers": workers,
                                }
                            ),
                            now,
                            key,
                        ),
                    )
                    report.quarantined.append(key)
                elif attempt > retries:
                    conn.execute(
                        "UPDATE jobs SET state = ?, lease_owner = NULL, "
                        "lease_expires = NULL, failed_workers = ?, "
                        "error = ?, updated_at = ? WHERE key = ?",
                        (
                            FAILED,
                            workers_json,
                            json.dumps(
                                {
                                    "kind": "lease_expired",
                                    "error": (
                                        f"lease expired after {attempt} "
                                        f"attempt(s) (last worker: {owner})"
                                    ),
                                    "attempts": attempt,
                                    "workers": workers,
                                }
                            ),
                            now,
                            key,
                        ),
                    )
                    report.failed.append(key)
                else:
                    delay = backoff_s(key, attempt, previous)
                    conn.execute(
                        "UPDATE jobs SET state = ?, lease_owner = NULL, "
                        "lease_expires = NULL, failed_workers = ?, "
                        "not_before = ?, backoff_s = ?, updated_at = ? "
                        "WHERE key = ?",
                        (PENDING, workers_json, now + delay, delay, now, key),
                    )
                    report.requeued.append(key)
        return report

    # -- introspection -----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row counts by state (absent states map to 0)."""
        out = {state: 0 for state in STATES}
        with self._connect() as conn:
            for state, count in conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ):
                out[state] = count
        return out

    def jobs(self) -> List[JobView]:
        """Snapshot of every row, in stable (created_at, key) order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, state, attempt, lease_owner, lease_expires, "
                "not_before, error, failed_workers FROM jobs "
                "ORDER BY created_at ASC, key ASC"
            ).fetchall()
        out = []
        for key, state, attempt, owner, expires, not_before, error, fw in rows:
            try:
                workers = tuple(json.loads(fw))
            except ValueError:
                workers = ()
            out.append(
                JobView(
                    key=key,
                    state=state,
                    attempt=attempt,
                    lease_owner=owner,
                    lease_expires=expires,
                    not_before=not_before,
                    error=error,
                    failed_workers=workers,
                )
            )
        return out

    def states(self) -> Dict[str, str]:
        """``{key: state}`` for every row (one cheap query)."""
        with self._connect() as conn:
            return dict(conn.execute("SELECT key, state FROM jobs"))

    def _parse_error(self, key: str, error: Optional[str]) -> Dict[str, object]:
        if error is None:
            return {"kind": "error", "error": "unknown failure", "attempts": 0}
        try:
            record = json.loads(error)
            if isinstance(record, dict) and "error" in record:
                return record
        except ValueError:
            pass
        return {"kind": "error", "error": str(error), "attempts": 0}

    def failures(self) -> Dict[str, Dict[str, object]]:
        """Structured failure records of every terminal ``failed`` row."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, error FROM jobs WHERE state = ?", (FAILED,)
            ).fetchall()
        return {key: self._parse_error(key, error) for key, error in rows}

    def has_claimable(self, now: Optional[float] = None) -> bool:
        """Whether any pending row is past its backoff gate."""
        now = time.time() if now is None else now
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM jobs WHERE state = ? AND not_before <= ? LIMIT 1",
                (PENDING, now),
            ).fetchone()
        return row is not None

    def is_drained(self, now: Optional[float] = None) -> bool:
        """True when no work remains for a standalone worker.

        No pending rows (ready *or* waiting out a backoff gate) and no
        unexpired lease held by anyone. Expired leases do not count as
        work: without a coordinator to recover them they would park a
        draining worker forever.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM jobs WHERE state = ? "
                "OR (state = ? AND lease_expires >= ?) LIMIT 1",
                (PENDING, LEASED, now),
            ).fetchone()
        return row is None

    def __len__(self) -> int:
        with self._connect() as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobQueue({str(self.root)!r})"
