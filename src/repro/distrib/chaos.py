"""Fault injection for the distributed executor's test harness.

Workers are separate processes, so faults are injected through
environment variables: the coordinator (or a test) sets a chaos plan in
the worker's environment, and the worker loop consults
:meth:`ChaosPlan.from_env` at startup and calls
:meth:`ChaosPlan.maybe_kill` at its three commit-protocol phases:

``claim``
    immediately after the lease is committed to the queue — the row is
    leased but no work has happened; recovery must requeue it.
``compute``
    after the spec is parsed, before the simulation runs — exercises
    mid-flight lease expiry while the point is genuinely in progress.
``commit``
    after the result is written to the shared store but *before* the
    queue row is marked done — the nastiest window: the work exists but
    the ledger says it doesn't. The coordinator's store-poll settles
    the row without re-running the point.

A kill is ``os.kill(os.getpid(), SIGKILL)`` — no atexit hooks, no
flushes, no goodbye — which is exactly what a OOM-kill or a yanked
node looks like to the rest of the fleet.

Queue-level faults (dropping and corrupting rows) are plain functions
a test applies directly to the sqlite database between protocol steps;
they need no process boundary.

Everything here is inert unless explicitly armed: production workers
run with no ``REPRO_CHAOS_*`` variables set and ``ChaosPlan.from_env``
returns the do-nothing plan.
"""

from __future__ import annotations

import os
import signal
import sqlite3
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.distrib.queue import JobQueue

#: Environment variable names (coordinator/test side sets, worker reads).
ENV_KILL_PHASE = "REPRO_CHAOS_KILL_PHASE"
ENV_KILL_AT = "REPRO_CHAOS_KILL_AT"
ENV_KILL_WORKER = "REPRO_CHAOS_KILL_WORKER"
ENV_FREEZE_HEARTBEAT = "REPRO_CHAOS_FREEZE_HEARTBEAT"

#: Recognised kill phases, in protocol order.
PHASES = ("claim", "compute", "commit")


@dataclass(frozen=True)
class ChaosPlan:
    """One worker's armed faults (immutable; parsed once at startup).

    Attributes:
        kill_phase: protocol phase at which to SIGKILL, or None.
        kill_at: 1-based claim index the kill triggers on — ``2`` means
            "survive the first point, die on the second", which makes a
            killed worker leave both completed work *and* a torn lease
            behind.
        kill_worker: only arm the kill in the worker whose id equals
            this (None arms every worker that reads the plan).
        freeze_heartbeat: worker never extends its lease after the
            claim — it keeps simulating, oblivious, while the
            coordinator sees a flatlined heartbeat and requeues.
    """

    kill_phase: Optional[str] = None
    kill_at: int = 1
    kill_worker: Optional[str] = None
    freeze_heartbeat: bool = False

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "ChaosPlan":
        """Parse the plan from ``os.environ`` (or a test-supplied dict)."""
        env = os.environ if env is None else env
        phase = env.get(ENV_KILL_PHASE) or None
        if phase is not None and phase not in PHASES:
            raise ValueError(
                f"{ENV_KILL_PHASE}={phase!r} is not one of {PHASES}"
            )
        return cls(
            kill_phase=phase,
            kill_at=int(env.get(ENV_KILL_AT, "1")),
            kill_worker=env.get(ENV_KILL_WORKER) or None,
            freeze_heartbeat=env.get(ENV_FREEZE_HEARTBEAT, "") == "1",
        )

    def to_env(self) -> dict:
        """Environment fragment that arms this plan in a spawned worker."""
        out = {}
        if self.kill_phase is not None:
            out[ENV_KILL_PHASE] = self.kill_phase
            out[ENV_KILL_AT] = str(self.kill_at)
            if self.kill_worker is not None:
                out[ENV_KILL_WORKER] = self.kill_worker
        if self.freeze_heartbeat:
            out[ENV_FREEZE_HEARTBEAT] = "1"
        return out

    @property
    def armed(self) -> bool:
        return self.kill_phase is not None or self.freeze_heartbeat

    def maybe_kill(self, phase: str, claim_index: int, worker: str) -> None:
        """SIGKILL the current process if this plan says so.

        Called by the worker loop at each protocol phase;
        ``claim_index`` is 1-based over the worker's lifetime.
        """
        if self.kill_phase != phase:
            return
        if self.kill_worker is not None and self.kill_worker != worker:
            return
        if claim_index != self.kill_at:
            return
        os.kill(os.getpid(), signal.SIGKILL)


# -- queue-level faults (test side, no process boundary needed) ------------

def drop_rows(queue: JobQueue, keys: Iterable[str]) -> int:
    """Delete queue rows outright, as if the database lost them.

    The coordinator's idempotent re-enqueue pass restores dropped rows
    from its authoritative spec list. Returns rows deleted.
    """
    keys = list(keys)
    if not keys:
        return 0
    conn = sqlite3.connect(str(queue.path), timeout=30.0)
    try:
        with conn:
            cursor = conn.executemany(
                "DELETE FROM jobs WHERE key = ?", [(k,) for k in keys]
            )
            return conn.total_changes
    finally:
        conn.close()


def corrupt_rows(queue: JobQueue, keys: Iterable[str]) -> int:
    """Mangle the spec payload of queue rows (torn-write simulation).

    A worker that claims such a row marks it ``failed`` with a
    ``corrupt`` record; the coordinator's :meth:`JobQueue.heal` pass
    rewrites the payload from the authoritative spec and requeues.
    Returns rows corrupted.
    """
    keys = list(keys)
    if not keys:
        return 0
    conn = sqlite3.connect(str(queue.path), timeout=30.0)
    try:
        with conn:
            conn.executemany(
                "UPDATE jobs SET spec = '{\"torn' WHERE key = ?",
                [(k,) for k in keys],
            )
            return conn.total_changes
    finally:
        conn.close()
