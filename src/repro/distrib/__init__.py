"""Fault-tolerant distributed sweep execution.

``repro.distrib`` is the step from "my laptop sweeps" to "thousand-point
grids finish over lunch on a fleet". It fans a sweep's deduplicated
:class:`~repro.sweep.spec.ScenarioSpec` points out to N independent
worker *processes* — possibly on other hosts sharing a filesystem —
against ONE shared :class:`~repro.store.ResultStore`, with crash
tolerance designed in rather than bolted on:

- :mod:`repro.distrib.queue` — a file/sqlite-backed :class:`JobQueue`
  (WAL mode, short-lived connections, the same process-safety
  discipline as :mod:`repro.store`) where points are claimed through
  **atomic time-limited leases**;
- :mod:`repro.distrib.worker` — the ``repro worker`` loop: claim a
  point, extend the lease as a heartbeat while simulating, write the
  result to the shared store, commit the job; SIGTERM finishes or
  releases the current lease; SIGKILL is recovered by lease expiry;
- :mod:`repro.distrib.coordinator` — the ``repro sweep --distributed``
  side: a :class:`DistributedExecutor` that enqueues the grid, spawns
  local workers, performs **lease-expiry recovery** (requeue with
  attempt count incremented, exponential backoff with decorrelated
  jitter, :class:`~repro.sweep.runner.FailurePolicy` retries),
  quarantines **poison points** that kill K distinct workers, and
  supports killed-and-restarted resumable runs over the same queue dir;
- :mod:`repro.distrib.chaos` — the fault-injection harness the test
  suite drives: SIGKILL workers at randomized claim/compute/commit
  phases, freeze heartbeats, drop or corrupt queue rows.

Simulations stay deterministic functions of their spec, so every
surviving execution path — any interleaving of crashes, retries and
worker counts — converges to results bit-identical to a serial run.
"""

from repro.distrib.coordinator import DistributedExecutor
from repro.distrib.queue import JobQueue, job_key

__all__ = ["DistributedExecutor", "JobQueue", "job_key"]
