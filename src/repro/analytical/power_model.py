"""The analytical power & performance model (Sec 6.2).

Three equations drive the paper's evaluation:

- **Eq. 2** (baseline): ``AvgP = sum_i P_Ci * R_Ci`` over the measured
  C-state residencies.
- **Eq. 3** (AW): the same sum after (1) rescaling residencies for the
  ~1% power-gate frequency loss (weighted by the workload's frequency
  scalability) and the ~100 ns extra C6A/C6AE transition latency, and
  (2) substituting C1 -> C6A and C1E -> C6AE with their estimated powers.
- **Eq. 4** (Turbo enabled): because Turbo makes C0 power vary, savings
  are computed directly as ``R_C1 (P_C1 - P_C6A) + R_C1E (P_C1E - P_C6AE)``
  against the *measured* baseline average power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import (
    C1E_POWER,
    C1_POWER,
    CStateCatalog,
    skylake_baseline_catalog,
)
from repro.errors import ConfigurationError
from repro.simkit.stats import weighted_mean


def average_power(
    residency: Mapping[str, float],
    catalog: Optional[CStateCatalog] = None,
    power_overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """Eq. 2: residency-weighted average core power.

    Args:
        residency: fraction of time per state name; must sum to ~1.
        catalog: supplies per-state powers (default: Skylake baseline).
        power_overrides: per-state power replacements (e.g. measured C0
            power with Turbo enabled).

    Raises:
        ConfigurationError: if residencies do not sum to ~1 or a state is
            unknown.
    """
    catalog = catalog if catalog is not None else skylake_baseline_catalog()
    total = sum(residency.values())
    if abs(total - 1.0) > 1e-6:
        raise ConfigurationError(f"residencies must sum to 1, got {total}")
    powers = []
    weights = []
    for name, fraction in residency.items():
        if power_overrides and name in power_overrides:
            power = power_overrides[name]
        else:
            power = catalog.get(name).power_watts
        powers.append(power)
        weights.append(fraction)
    return weighted_mean(powers, weights)


@dataclass
class AgileWattsPowerModel:
    """Eq. 3: the AW average-power estimator.

    Args:
        design: the AW design point supplying C6A/C6AE powers, the ~1%
            frequency penalty and the ~100 ns transition overhead.
        frequency_scalability: the workload's performance sensitivity to
            frequency (Sec 6.2 footnote 8); scales how much busy time the
            fmax penalty adds.
    """

    design: AgileWattsDesign = None
    frequency_scalability: float = 0.4

    def __post_init__(self) -> None:
        if self.design is None:
            self.design = AgileWattsDesign()
        if not 0.0 <= self.frequency_scalability <= 1.0:
            raise ConfigurationError("frequency scalability must be in [0, 1]")

    # -- residency rescaling (Sec 6.2 step 1) ------------------------------
    def rescale_residency(
        self,
        residency: Mapping[str, float],
        transitions_per_second: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Rescale baseline residencies for AW's two overheads.

        (i) the ~1% frequency loss inflates busy (C0) time by
        ``penalty * scalability``; (ii) every C6A/C6AE transition adds
        ~100 ns of neither-idle-nor-working time, charged as busy time.
        Idle states shrink proportionally to fund the increase.
        """
        residency = dict(residency)
        c0 = residency.get("C0", 0.0)
        extra_busy = c0 * self.design.frequency_penalty * self.frequency_scalability
        if transitions_per_second:
            replaced = ("C1", "C1E", "C6A", "C6AE")
            rate = sum(transitions_per_second.get(n, 0.0) for n in replaced)
            extra_busy += rate * self.design.transition_overhead
        idle_total = sum(v for k, v in residency.items() if k != "C0")
        if idle_total <= 0 or extra_busy <= 0:
            return residency
        extra_busy = min(extra_busy, idle_total)
        shrink = (idle_total - extra_busy) / idle_total
        rescaled = {
            k: (v * shrink if k != "C0" else v + extra_busy)
            for k, v in residency.items()
        }
        return rescaled

    @staticmethod
    def substitute_states(residency: Mapping[str, float]) -> Dict[str, float]:
        """Step 2: move C1 residency to C6A and C1E residency to C6AE."""
        out: Dict[str, float] = {}
        mapping = {"C1": "C6A", "C1E": "C6AE"}
        for name, fraction in residency.items():
            target = mapping.get(name, name)
            out[target] = out.get(target, 0.0) + fraction
        return out

    # -- Eq. 3 ----------------------------------------------------------------
    def average_power(
        self,
        baseline_residency: Mapping[str, float],
        transitions_per_second: Optional[Mapping[str, float]] = None,
        c0_power_override: Optional[float] = None,
    ) -> float:
        """AW average core power from baseline residencies (Eq. 3)."""
        rescaled = self.rescale_residency(baseline_residency, transitions_per_second)
        substituted = self.substitute_states(rescaled)
        catalog = self.design.catalog(keep_c6=True)
        overrides = {"C0": c0_power_override} if c0_power_override else None
        return average_power(substituted, catalog, overrides)

    def savings_fraction(
        self,
        baseline_residency: Mapping[str, float],
        transitions_per_second: Optional[Mapping[str, float]] = None,
        baseline_power: Optional[float] = None,
    ) -> float:
        """Fractional AvgP reduction of AW vs the baseline hierarchy."""
        base = (
            baseline_power
            if baseline_power is not None
            else average_power(baseline_residency)
        )
        aw = self.average_power(baseline_residency, transitions_per_second)
        if base <= 0:
            return 0.0
        return (base - aw) / base


def turbo_mode_savings(
    residency: Mapping[str, float],
    measured_baseline_power: float,
    design: Optional[AgileWattsDesign] = None,
) -> float:
    """Eq. 4: fractional savings with Turbo enabled.

    With Turbo, C0 power varies with boost activity, so the baseline
    average power is *measured* (RAPL) rather than modelled; the savings
    term only touches the idle states AW replaces::

        savings  = R_C1 (P_C1 - P_C6A) + R_C1E (P_C1E - P_C6AE)
        savings% = savings / AvgP_baseline

    Raises:
        ConfigurationError: on non-positive measured power.
    """
    if measured_baseline_power <= 0:
        raise ConfigurationError("measured baseline power must be positive")
    design = design if design is not None else AgileWattsDesign()
    saved = residency.get("C1", 0.0) * (C1_POWER - design.c6a_power)
    saved += residency.get("C1E", 0.0) * (C1E_POWER - design.c6ae_power)
    return saved / measured_baseline_power
