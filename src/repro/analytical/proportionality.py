"""Energy-proportionality analysis (the Sec 7.1 Google framing).

"Modern servers are not energy proportional: they operate at peak energy
efficiency when they are fully utilized, but have much lower efficiencies
at lower utilizations" [28]. AW's contribution in this framing: it bends
the power-vs-load curve toward the origin precisely in the 5-25%
utilisation band where latency-critical fleets actually run.

Two standard metrics over a (utilisation, power) curve normalised to
peak power:

- **dynamic range**: peak / idle power (bigger is better);
- **proportionality gap**: mean over utilisations of
  (measured - ideal) / peak, where ideal = utilisation * peak
  (smaller is better; 0 = perfectly proportional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProportionalityReport:
    """Metrics of one power-vs-load curve.

    Attributes:
        curve: (utilisation in [0,1], power watts) points, increasing
            utilisation, first point treated as idle, last as peak.
        dynamic_range: peak power / idle power.
        proportionality_gap: mean normalised excess over the ideal line.
    """

    curve: Tuple[Tuple[float, float], ...]
    dynamic_range: float
    proportionality_gap: float


def analyze_curve(curve: Sequence[Tuple[float, float]]) -> ProportionalityReport:
    """Compute proportionality metrics for a power-vs-load curve.

    Raises:
        ConfigurationError: on fewer than 2 points, non-monotone
            utilisation, or non-positive powers.
    """
    if len(curve) < 2:
        raise ConfigurationError("need at least idle and peak points")
    utils = [u for u, _ in curve]
    powers = [p for _, p in curve]
    if any(not 0.0 <= u <= 1.0 for u in utils):
        raise ConfigurationError("utilisations must be in [0, 1]")
    if utils != sorted(utils):
        raise ConfigurationError("curve must have increasing utilisation")
    if any(p <= 0 for p in powers):
        raise ConfigurationError("powers must be positive")

    idle = powers[0]
    peak = powers[-1]
    if peak < idle:
        raise ConfigurationError("peak power below idle power")

    gap = 0.0
    for u, p in curve:
        ideal = u * peak
        gap += max(0.0, p - ideal) / peak
    gap /= len(curve)

    return ProportionalityReport(
        curve=tuple((u, p) for u, p in curve),
        dynamic_range=peak / idle,
        proportionality_gap=gap,
    )


def compare_curves(
    baseline: Sequence[Tuple[float, float]],
    agilewatts: Sequence[Tuple[float, float]],
) -> Tuple[ProportionalityReport, ProportionalityReport]:
    """Analyse both curves; AW should widen the dynamic range and shrink
    the proportionality gap."""
    return analyze_curve(baseline), analyze_curve(agilewatts)


def curve_from_results(results: Sequence) -> List[Tuple[float, float]]:
    """Build a (utilisation, per-core power) curve from RunResults,
    sorted by utilisation."""
    points = sorted(
        ((r.utilization, r.avg_core_power) for r in results), key=lambda t: t[0]
    )
    return list(points)
