"""Analytical request-latency model: M/G/1 with server setup times.

The simulator measures latency; this model *predicts* it, giving an
independent cross-check (and a fast design-space tool that needs no
simulation). Each core behaves as an M/G/1 queue whose server "turns
off" when idle and pays a **setup time** — the C-state exit latency —
when work arrives to an empty system. Welch's classic result for M/G/1
with setup gives the mean wait:

    E[W] = lambda * E[S^2] / (2 (1 - rho))                (Pollaczek-Khinchine)
         + (2 E[R] + lambda * E[R^2]) / (2 (1 + lambda E[R]))

with arrival rate ``lambda`` per core, service time S, setup time R.
Mean response time is then ``E[T] = E[W] + E[S]``.

The setup distribution follows the governor: a mixture over the idle
states' exit latencies weighted by how often each is the state being
woken from. This is exactly the structure of the paper's Fig 8c
worst/expected-case analysis, done in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.cstates import CStateCatalog, skylake_baseline_catalog
from repro.errors import ConfigurationError
from repro.workloads.base import ServiceTimeModel


@dataclass(frozen=True)
class SetupDistribution:
    """First two moments of the wake (setup) time.

    Built from per-state wake shares, e.g. ``{"C1": 0.2, "C1E": 0.8}``
    meaning 80% of wakes come out of C1E.
    """

    mean: float
    second_moment: float

    @classmethod
    def from_wake_shares(
        cls,
        shares: Mapping[str, float],
        catalog: Optional[CStateCatalog] = None,
    ) -> "SetupDistribution":
        """Mixture over exit latencies with the given wake shares.

        Raises:
            ConfigurationError: if shares don't sum to ~1 or are negative.
        """
        catalog = catalog if catalog is not None else skylake_baseline_catalog()
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"wake shares must sum to 1, got {total}")
        if any(v < 0 for v in shares.values()):
            raise ConfigurationError("wake shares must be >= 0")
        mean = 0.0
        second = 0.0
        for name, share in shares.items():
            exit_latency = catalog.get(name).exit_latency
            mean += share * exit_latency
            second += share * exit_latency ** 2
        return cls(mean=mean, second_moment=second)


@dataclass(frozen=True)
class MG1SetupModel:
    """Per-core M/G/1 queue with setup times.

    Attributes:
        arrival_rate: per-core Poisson arrival rate (qps / cores).
        service_mean / service_second_moment: moments of S.
        setup: wake-time distribution (None = always-on server).
    """

    arrival_rate: float
    service_mean: float
    service_second_moment: float
    setup: Optional[SetupDistribution] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.service_mean <= 0 or self.service_second_moment <= 0:
            raise ConfigurationError("service moments must be positive")
        if self.utilization >= 1.0:
            raise ConfigurationError(
                f"unstable queue: rho = {self.utilization:.3f} >= 1"
            )

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_mean

    @property
    def queueing_wait(self) -> float:
        """Pollaczek-Khinchine mean wait (no setup)."""
        rho = self.utilization
        return self.arrival_rate * self.service_second_moment / (2.0 * (1.0 - rho))

    @property
    def setup_wait(self) -> float:
        """Welch's additional mean wait from setup times."""
        if self.setup is None or self.setup.mean == 0.0:
            return 0.0
        lam = self.arrival_rate
        r1, r2 = self.setup.mean, self.setup.second_moment
        return (2.0 * r1 + lam * r2) / (2.0 * (1.0 + lam * r1))

    @property
    def mean_wait(self) -> float:
        return self.queueing_wait + self.setup_wait

    @property
    def mean_response_time(self) -> float:
        """E[T] = E[W] + E[S]: the server-side average latency."""
        return self.mean_wait + self.service_mean

    @classmethod
    def from_workload(
        cls,
        service: ServiceTimeModel,
        qps: float,
        cores: int,
        wake_shares: Optional[Mapping[str, float]] = None,
        catalog: Optional[CStateCatalog] = None,
        service_scv: float = None,
    ) -> "MG1SetupModel":
        """Build the model from library objects.

        Args:
            service: the workload's service-time model (mean from it).
            qps / cores: offered load split per core.
            wake_shares: per-state wake mixture (None = no setups).
            service_scv: squared coefficient of variation of S; if None,
                a log-normal-ish default of 0.45 (matching the Memcached
                parameterisation) is used for the second moment.
        """
        if cores <= 0:
            raise ConfigurationError("core count must be positive")
        mean = service.mean
        scv = 0.45 if service_scv is None else service_scv
        if scv < 0:
            raise ConfigurationError("squared CV must be >= 0")
        second = (scv + 1.0) * mean ** 2
        setup = (
            SetupDistribution.from_wake_shares(wake_shares, catalog)
            if wake_shares
            else None
        )
        return cls(
            arrival_rate=qps / cores,
            service_mean=mean,
            service_second_moment=second,
            setup=setup,
        )


def aw_latency_advantage(
    qps: float,
    cores: int,
    service: ServiceTimeModel,
    legacy_shares: Mapping[str, float],
    catalog_legacy: Optional[CStateCatalog] = None,
    catalog_aw: Optional[CStateCatalog] = None,
) -> float:
    """Closed-form server-side latency gain of AW over a legacy mixture.

    Compares the legacy wake mixture against AW's *recommended*
    configuration (Sec 7.3): C6A only, with C6 and the Pn states
    disabled — every wake pays C6A's ~1 us exit instead of C1E's 5 us or
    C6's 46 us. Positive = AW faster. This is the closed-form version of
    the Fig 10 latency panels.
    """
    from repro.core.cstates import agilewatts_catalog

    catalog_legacy = catalog_legacy or skylake_baseline_catalog()
    catalog_aw = catalog_aw or agilewatts_catalog()
    aw_shares = {"C6A": 1.0}

    legacy = MG1SetupModel.from_workload(
        service, qps, cores, legacy_shares, catalog_legacy
    )
    aw = MG1SetupModel.from_workload(service, qps, cores, aw_shares, catalog_aw)
    return legacy.mean_response_time - aw.mean_response_time
