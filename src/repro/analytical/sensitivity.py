"""Sensitivity analysis of AW's savings to its model parameters.

The Table 3 design point rests on estimated constants (FIVR static loss,
power-gate residual band, cache sleep leakage, C1E residency of the
workload). A reviewer's natural question is *which estimate, if wrong,
moves the conclusion* — this module answers it with one-at-a-time
perturbation (tornado analysis) of the savings at a representative
operating point.

The conclusion it supports: AW's savings are robust. Even the most
influential parameter (the FIVR static loss, which AW pays but C1
doesn't) perturbs savings by only a few points per 25% estimate error;
no plausible single-parameter error flips C6A above C1E, let alone C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

from repro.analytical.power_model import average_power
from repro.core.architecture import AgileWattsDesign
from repro.core.ccsm import CCSMConfig
from repro.core.ufpg import UFPGConfig
from repro.errors import ConfigurationError
from repro.power.clock import ADPLL
from repro.power.pdn import FIVR

#: Representative residency: Memcached-like mid-low load (Fig 8a @ 50K).
DEFAULT_RESIDENCY: Mapping[str, float] = {"C0": 0.10, "C1": 0.10, "C1E": 0.80}


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of perturbing one parameter by +/- ``relative_delta``.

    Attributes:
        parameter: parameter name.
        savings_low / savings_nominal / savings_high: savings fraction at
            the -delta, nominal, +delta parameter values.
    """

    parameter: str
    savings_low: float
    savings_nominal: float
    savings_high: float

    @property
    def swing(self) -> float:
        """Total savings swing across the perturbation (points)."""
        return abs(self.savings_high - self.savings_low)


def _savings_for_design(design: AgileWattsDesign, residency: Mapping[str, float]) -> float:
    """AW savings fraction for a design at a residency profile."""
    base = average_power(residency)
    substituted: Dict[str, float] = {}
    mapping = {"C1": "C6A", "C1E": "C6AE"}
    for name, fraction in residency.items():
        substituted[mapping.get(name, name)] = (
            substituted.get(mapping.get(name, name), 0.0) + fraction
        )
    aw = average_power(substituted, design.catalog())
    return (base - aw) / base


def _design_variants(relative_delta: float) -> Dict[str, Callable[[float], AgileWattsDesign]]:
    """Factories building a design with one parameter scaled by ``f``."""
    return {
        "fivr_static_loss": lambda f: AgileWattsDesign(
            fivr=FIVR(static_loss_watts=0.1 * f)
        ),
        "fivr_efficiency": lambda f: AgileWattsDesign(
            fivr=FIVR(efficiency=min(0.99, 0.80 * f))
        ),
        "gate_residual": lambda f: AgileWattsDesign(
            ufpg_config=UFPGConfig(
                residual_low=0.03 * f, residual_high=0.05 * f
            )
        ),
        "cache_sleep_leakage": lambda f: AgileWattsDesign(
            ccsm_config=CCSMConfig(
                l2_capacity_bytes=1024 * 1024 * f  # capacity scales leakage
            )
        ),
        "adpll_power": lambda f: AgileWattsDesign(
            adpll=ADPLL(power_watts=0.007 * f)
        ),
    }


def tornado(
    residency: Mapping[str, float] = None,
    relative_delta: float = 0.25,
) -> List[SensitivityEntry]:
    """One-at-a-time sensitivity of savings to each model parameter.

    Args:
        residency: baseline residency profile (default: mid-low load).
        relative_delta: fractional perturbation (default +/- 25%).

    Returns:
        Entries sorted by descending swing (tornado order).

    Raises:
        ConfigurationError: for non-positive deltas.
    """
    if relative_delta <= 0 or relative_delta >= 1:
        raise ConfigurationError("relative delta must be in (0, 1)")
    residency = dict(residency) if residency is not None else dict(DEFAULT_RESIDENCY)
    nominal = _savings_for_design(AgileWattsDesign(), residency)

    entries = []
    for name, factory in _design_variants(relative_delta).items():
        low = _savings_for_design(factory(1.0 - relative_delta), residency)
        high = _savings_for_design(factory(1.0 + relative_delta), residency)
        entries.append(
            SensitivityEntry(
                parameter=name,
                savings_low=low,
                savings_nominal=nominal,
                savings_high=high,
            )
        )
    entries.sort(key=lambda e: e.swing, reverse=True)
    return entries


def residency_sensitivity(relative_delta: float = 0.25) -> SensitivityEntry:
    """Sensitivity to the *workload* side: shift C1E residency into C0.

    This is usually the largest lever — savings are proportional to how
    much shallow-idle time exists to convert — which is exactly the
    paper's load-dependence result (Fig 8b).
    """
    if relative_delta <= 0 or relative_delta >= 1:
        raise ConfigurationError("relative delta must be in (0, 1)")
    design = AgileWattsDesign()

    def shifted(toward_busy: float) -> Dict[str, float]:
        r = dict(DEFAULT_RESIDENCY)
        moved = r["C1E"] * toward_busy
        r["C1E"] -= moved
        r["C0"] += moved
        return r

    return SensitivityEntry(
        parameter="c1e_residency_shift",
        savings_low=_savings_for_design(design, shifted(relative_delta)),
        savings_nominal=_savings_for_design(design, dict(DEFAULT_RESIDENCY)),
        savings_high=_savings_for_design(design, shifted(-0.0)),
    )
