"""The Sec 2 motivation analysis (Eq. 1).

Bounds the power saving available to an *ideal* deep idle state with C1's
latency (2 us) and C6's power (0.1 W)::

    AvgP_baseline = sum_{i in {0,1,6}} R_Ci * P_Ci
    AvgP_savings  = R_C1 * (P_C1 - P_C6)
    AvgP_savings% = AvgP_savings / AvgP_baseline * 100

Plugging in the published residencies for a search workload at 50%/25%
load and a key-value store at 20% load yields the paper's 23% / 41% / 55%.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.core.cstates import C0_P1_POWER, C1_POWER, C6_POWER
from repro.errors import ConfigurationError
from repro.workloads.profiles import motivation_profiles

#: Power of each state in the Eq. 1 three-state hierarchy (Table 1).
_EQ1_POWERS: Dict[str, float] = {
    "C0": C0_P1_POWER,
    "C1": C1_POWER,
    "C6": C6_POWER,
}


def baseline_average_power(residency: Mapping[str, float]) -> float:
    """``AvgP_baseline`` of Eq. 1 over the C0/C1/C6 hierarchy."""
    total = sum(residency.values())
    if abs(total - 1.0) > 1e-6:
        raise ConfigurationError(f"residencies must sum to 1, got {total}")
    unknown = set(residency) - set(_EQ1_POWERS)
    if unknown:
        raise ConfigurationError(f"Eq. 1 only covers C0/C1/C6, got extra {unknown}")
    return sum(_EQ1_POWERS[name] * frac for name, frac in residency.items())


def ideal_savings(residency: Mapping[str, float]) -> float:
    """``AvgP_savings%`` of Eq. 1 as a fraction (0.23 for 23%)."""
    base = baseline_average_power(residency)
    saved = residency.get("C1", 0.0) * (C1_POWER - C6_POWER)
    return saved / base


def motivation_table() -> List[Tuple[str, float, float]]:
    """(description, baseline AvgP, savings fraction) for the three
    Sec 2 profiles — reproducing the 23% / 41% / 55% series."""
    rows = []
    for description, residency in motivation_profiles():
        rows.append(
            (
                description,
                baseline_average_power(residency),
                ideal_savings(residency),
            )
        )
    return rows
