"""Snoop-traffic impact bounds (Sec 7.5).

The worst case for AW is a core that is 100% idle while peer cores hammer
it with snoops. The paper bounds the loss by comparing two extremes with
``R_C1 = R_C6A = 100%``:

- **no snoops**:  savings = (P_C1 - P_C6A) / P_C1 ~= 79%
- **continuous snoops**: both systems pay their snoop-service premium —
  the baseline clock-ungates L1/L2 (+~50 mW over C1), AW additionally
  exits sleep-mode (+~170 mW over C6A) — giving
  (1.49 - 0.47) / 1.49 ~= 68%.

So even saturating snoop traffic costs at most ~11 percentage points of
the savings opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.architecture import AgileWattsDesign
from repro.core.cstates import C1_POWER
from repro.errors import ConfigurationError
from repro.uarch.coherence import SnoopModel


@dataclass(frozen=True)
class SnoopBounds:
    """The three Sec 7.5 numbers.

    Attributes:
        savings_no_snoops: fractional AW savings with zero snoop traffic.
        savings_full_snoops: fractional savings under saturating snoops.
        savings_loss: percentage points lost in the worst case.
    """

    savings_no_snoops: float
    savings_full_snoops: float

    @property
    def savings_loss(self) -> float:
        return self.savings_no_snoops - self.savings_full_snoops


def snoop_bounds(
    design: Optional[AgileWattsDesign] = None,
    snoop_model: Optional[SnoopModel] = None,
    snoop_duty_cycle: float = 1.0,
) -> SnoopBounds:
    """Compute the Sec 7.5 bounds for a design point.

    Args:
        design: AW design (supplies P_C6A).
        snoop_model: per-state snoop power premia.
        snoop_duty_cycle: fraction of idle time spent serving snoops in
            the "with snoops" scenario (1.0 reproduces the paper's upper
            bound).

    Raises:
        ConfigurationError: if the duty cycle is outside [0, 1].
    """
    if not 0.0 <= snoop_duty_cycle <= 1.0:
        raise ConfigurationError("snoop duty cycle must be in [0, 1]")
    design = design if design is not None else AgileWattsDesign()
    snoop_model = snoop_model if snoop_model is not None else SnoopModel()

    p_c1 = C1_POWER
    p_c6a = design.c6a_power
    no_snoops = (p_c1 - p_c6a) / p_c1

    p_c1_snoop = p_c1 + snoop_duty_cycle * snoop_model.c1_power_delta
    p_c6a_snoop = p_c6a + snoop_duty_cycle * snoop_model.c6a_power_delta
    full_snoops = (p_c1_snoop - p_c6a_snoop) / p_c1_snoop

    return SnoopBounds(
        savings_no_snoops=no_snoops,
        savings_full_snoops=full_snoops,
    )
