"""Datacenter cost-savings model (Sec 7.6, Table 5).

Cost savings per server per year::

    (Average_Baseline_Power - Average_AW_Power) * Seconds_in_Year * Cost_per_Joule

with electricity at $0.125/kWh [196]. Table 5 reports the result per 100K
servers across the Memcached QPS sweep: $0.33M-$0.59M per year, scaling
proportionally with data-center PUE. AW does *not* reduce cooling capital
expenses — TDP is unchanged — so only the operational (energy) term
appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.units import KWH, YEAR


@dataclass(frozen=True)
class CostModel:
    """Datacenter electricity cost parameters.

    Attributes:
        dollars_per_kwh: electricity price ($0.125/kWh in the paper).
        pue: power usage effectiveness multiplier (1.0 = counting only
            the IT load; savings grow proportionally with PUE).
        servers: fleet size the savings are quoted for (100 000).
        cores_per_server: cores whose savings accrue (2 sockets x 10).
    """

    dollars_per_kwh: float = 0.125
    pue: float = 1.0
    servers: int = 100_000
    cores_per_server: int = 20

    def __post_init__(self) -> None:
        if self.dollars_per_kwh <= 0:
            raise ConfigurationError("electricity price must be positive")
        if self.pue < 1.0:
            raise ConfigurationError("PUE cannot be below 1.0")
        if self.servers <= 0 or self.cores_per_server <= 0:
            raise ConfigurationError("fleet dimensions must be positive")

    @property
    def dollars_per_joule(self) -> float:
        return self.dollars_per_kwh / KWH

    def yearly_savings_per_server(self, power_delta_watts: float) -> float:
        """Dollars saved per server per year for a given power reduction.

        Raises:
            ConfigurationError: on negative power delta.
        """
        if power_delta_watts < 0:
            raise ConfigurationError("power delta must be >= 0")
        energy_joules = power_delta_watts * YEAR
        return energy_joules * self.dollars_per_joule * self.pue

    def yearly_savings_fleet(self, per_core_delta_watts: float) -> float:
        """Dollars saved per year across the fleet for a per-core delta."""
        per_server = self.yearly_savings_per_server(
            per_core_delta_watts * self.cores_per_server
        )
        return per_server * self.servers


def yearly_savings_musd(
    per_core_deltas: Mapping[str, float],
    model: CostModel = CostModel(),
) -> Dict[str, float]:
    """Table 5: millions of dollars saved per year per fleet, keyed by the
    QPS label of the Memcached sweep.

    Args:
        per_core_deltas: per-core average power reduction (watts) at each
            operating point, typically baseline minus AW from the Fig 8
            simulations.
    """
    return {
        label: model.yearly_savings_fleet(delta) / 1e6
        for label, delta in per_core_deltas.items()
    }
