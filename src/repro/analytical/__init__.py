"""The paper's analytical models.

- :mod:`~repro.analytical.power_model` — Eq. 2 (baseline average power),
  Eq. 3 (AW average power with residency rescaling), Eq. 4 (Turbo-mode
  savings).
- :mod:`~repro.analytical.motivation` — Eq. 1 upper-bound savings (Sec 2).
- :mod:`~repro.analytical.validation` — Sec 6.3 model-accuracy check.
- :mod:`~repro.analytical.snoop` — Sec 7.5 snoop-traffic bounds.
- :mod:`~repro.analytical.cost` — Table 5 datacenter cost savings.
"""

from repro.analytical.power_model import (
    AgileWattsPowerModel,
    average_power,
    turbo_mode_savings,
)
from repro.analytical.motivation import ideal_savings, motivation_table
from repro.analytical.validation import ValidationResult, validate_power_model
from repro.analytical.snoop import SnoopBounds, snoop_bounds
from repro.analytical.cost import CostModel, yearly_savings_musd
from repro.analytical.latency_model import (
    MG1SetupModel,
    SetupDistribution,
    aw_latency_advantage,
)
from repro.analytical.proportionality import ProportionalityReport, analyze_curve
from repro.analytical.sensitivity import tornado

__all__ = [
    "AgileWattsPowerModel",
    "average_power",
    "turbo_mode_savings",
    "ideal_savings",
    "motivation_table",
    "ValidationResult",
    "validate_power_model",
    "SnoopBounds",
    "snoop_bounds",
    "CostModel",
    "yearly_savings_musd",
    "MG1SetupModel",
    "SetupDistribution",
    "aw_latency_advantage",
    "ProportionalityReport",
    "analyze_curve",
    "tornado",
]
