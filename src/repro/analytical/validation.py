"""Power-model validation (Sec 6.3).

The paper validates Eq. 2 by running four server workloads (SPECpower,
Nginx, Spark, Hive) at several utilisation levels, measuring average
power with RAPL, estimating it from C-state residencies, and reporting
per-workload accuracy of 96.1% / 95.2% / 94.4% / 94.9%.

Our substitute for the RAPL measurement is the residency profile's
``measurement_gap`` (see :mod:`repro.workloads.profiles`): the 'measured'
power is the model estimate plus the gap the residency-weighted model
cannot see. Accuracy is then computed exactly as the paper does::

    accuracy% = 100 - mean_i( |estimated_i - measured_i| / measured_i * 100 )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analytical.power_model import average_power
from repro.core.cstates import CStateCatalog
from repro.workloads.profiles import ResidencyProfile, validation_profiles


@dataclass(frozen=True)
class ValidationResult:
    """Accuracy of the analytic model for one workload.

    Attributes:
        workload: profile name.
        points: (label, estimated_watts, measured_watts) per level.
        accuracy_percent: 100 - mean absolute percentage error.
    """

    workload: str
    points: Sequence[Tuple[str, float, float]]
    accuracy_percent: float


def _validate_profile(
    profile: ResidencyProfile, catalog: Optional[CStateCatalog] = None
) -> ValidationResult:
    points: List[Tuple[str, float, float]] = []
    errors: List[float] = []
    for level in profile.levels:
        estimated = average_power(level.residency, catalog)
        measured = estimated / (1.0 - level.measurement_gap)
        points.append((level.label, estimated, measured))
        errors.append(abs(estimated - measured) / measured)
    accuracy = 100.0 * (1.0 - sum(errors) / len(errors))
    return ValidationResult(profile.name, tuple(points), accuracy)


def validate_power_model(
    profiles: Optional[Sequence[ResidencyProfile]] = None,
    catalog: Optional[CStateCatalog] = None,
) -> List[ValidationResult]:
    """Validate Eq. 2 against all (default: Sec 6.3) profiles.

    With the default profiles, accuracies land in the paper's 94-96%
    band (SPECpower highest, Spark lowest).
    """
    profiles = profiles if profiles is not None else validation_profiles()
    return [_validate_profile(profile, catalog) for profile in profiles]
