"""Persistent result storage for the sweep subsystem.

- :mod:`repro.store.serialize` — exact JSON-safe encoding of
  :class:`~repro.server.metrics.RunResult` (latency samples packed as
  compressed IEEE-754 doubles, so percentiles survive bit-for-bit).
- :mod:`repro.store.result_store` — :class:`ResultStore`, a process-safe
  sqlite map from ``ScenarioSpec.cache_key`` + code-version salt to
  results, layered under the in-memory memo cache by
  :class:`~repro.sweep.SweepRunner` so repeated CLI invocations reuse
  simulated points across processes.
"""

from repro.store.result_store import (
    ResultStore,
    code_version_salt,
    default_store_dir,
)
from repro.store.serialize import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    decode_samples,
    encode_samples,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "ResultStore",
    "code_version_salt",
    "default_store_dir",
    "result_to_dict",
    "result_from_dict",
    "encode_samples",
    "decode_samples",
]
