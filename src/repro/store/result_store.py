"""Persistent, process-safe on-disk result store.

The in-memory memo cache (:mod:`repro.sweep.runner`) dies with the
process, so every CLI invocation used to re-simulate the whole grid. The
:class:`ResultStore` layers *under* that memo: results are keyed by the
spec's canonical :attr:`ScenarioSpec.cache_key` plus a **code-version
salt**, serialized exactly (:mod:`repro.store.serialize`) and kept in a
single sqlite database, so repeated invocations — and concurrent ones —
reuse each simulated point across processes.

Storage layout: one ``results.sqlite`` under ``--cache-dir``, the
``REPRO_CACHE_DIR`` environment variable, or ``$XDG_CACHE_HOME/repro``
(default ``~/.cache/repro``). sqlite provides the cross-process locking
(WAL journal, busy timeout); each operation uses a short-lived connection
so stores can be shared freely between runner instances and forked
workers.

The salt defaults to a digest of the ``repro`` package sources: any code
change invalidates every cached result, because a result is only
trustworthy for the exact simulator that produced it.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sqlite3
import time
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.server.metrics import RunResult
from repro.simkit import sanitizer as _sanitizer
from repro.store.serialize import result_from_dict, result_to_dict

#: Database filename inside the cache directory.
DB_FILENAME = "results.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    digest      TEXT PRIMARY KEY,
    salt        TEXT NOT NULL,
    spec        TEXT,
    result      TEXT NOT NULL,
    created_at  REAL NOT NULL,
    last_access REAL
)
"""

#: Fixed per-row sqlite overhead estimate used by :meth:`ResultStore.prune_lru`
#: on top of the measured payload text (b-tree cell, rowid, column headers).
_ROW_OVERHEAD_BYTES = 128


def _audit_codec_roundtrip(payload: str) -> None:
    """SAN004 deep audit: every stored row must round-trip the codec.

    Decodes the exact payload about to be written and re-encodes it; the
    two canonical JSON strings must match byte-for-byte. Comparing
    encode(decode(payload)) with the payload catches truncating or lossy
    codecs even when the defect is in *encode* — a truncating encoder
    truncates again on the second pass, and the decoded intermediate no
    longer reproduces the original.
    """
    try:
        decoded = result_from_dict(json.loads(payload))
        again = json.dumps(result_to_dict(decoded), separators=(",", ":"))
    except (ConfigurationError, json.JSONDecodeError, TypeError) as exc:
        raise _sanitizer.violation(
            "SAN004", "store.serialize",
            f"store codec cannot decode the row it just encoded: {exc}",
        ) from exc
    if again != payload:
        raise _sanitizer.violation(
            "SAN004", "store.serialize",
            "store codec round-trip is lossy: re-encoding the decoded "
            "row changed the payload (a field is truncated, dropped, or "
            "decoded inexactly)",
        )


def default_store_dir() -> str:
    """Resolve the cache directory: $REPRO_CACHE_DIR > $XDG_CACHE_HOME/repro
    > ~/.cache/repro."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return str(base / "repro")


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of the installed ``repro`` sources (16 hex chars).

    Hashes every ``.py`` file under the package root by path and content,
    so editing any module yields a new salt and silently invalidates all
    previously stored results.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultStore:
    """sqlite-backed map from (cache key, salt) to :class:`RunResult`.

    Args:
        root: cache directory (created if missing); defaults to
            :func:`default_store_dir`.
        salt: version salt mixed into every key; defaults to
            :func:`code_version_salt`. Records written under a different
            salt are invisible (but kept on disk until :meth:`clear`).
    """

    def __init__(self, root: Optional[str] = None, salt: Optional[str] = None):
        self.root = Path(root) if root else Path(default_store_dir())
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = code_version_salt() if salt is None else str(salt)
        self.path = self.root / DB_FILENAME
        with self._connect() as conn:
            conn.execute(_SCHEMA)
            # Databases written before the LRU column existed: migrate in
            # place (NULL last_access sorts as never-accessed).
            columns = {
                row[1] for row in conn.execute("PRAGMA table_info(results)")
            }
            if "last_access" not in columns:
                conn.execute("ALTER TABLE results ADD COLUMN last_access REAL")

    # -- internals ---------------------------------------------------------
    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """Short-lived connection: commit on success, always close."""
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            # WAL lets concurrent CLI invocations read while one writes.
            conn.execute("PRAGMA journal_mode=WAL")
            with conn:
                yield conn
        finally:
            conn.close()

    def _digest(self, key: Tuple) -> str:
        payload = json.dumps([self.salt, list(key)], separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- mapping API -------------------------------------------------------
    def get(self, key: Tuple) -> Optional[RunResult]:
        """The stored result for ``key`` under this salt, or None.

        Corrupt or format-incompatible rows are dropped and reported as
        misses, so a half-written record can never poison a sweep.
        """
        digest = self._digest(key)
        with self._connect() as conn:
            row = conn.execute(
                "SELECT result FROM results WHERE digest = ?", (digest,)
            ).fetchone()
            if row is not None:
                # Record the hit so LRU eviction keeps hot points.
                conn.execute(
                    "UPDATE results SET last_access = ? WHERE digest = ?",
                    (time.time(), digest),
                )
        if row is None:
            return None
        try:
            return result_from_dict(json.loads(row[0]))
        except (ConfigurationError, json.JSONDecodeError):
            self.delete(key)
            return None

    def get_many(self, keys) -> dict:
        """Stored results for ``keys`` under this salt, batched.

        One connection serves the whole lookup (a warm thousand-point
        grid would otherwise pay a thousand connection setups). Returns
        ``{key: RunResult}`` for the hits only; corrupt rows are dropped
        and omitted, like :meth:`get`.
        """
        keys = list(keys)
        digest_to_key = {self._digest(key): key for key in keys}
        out = {}
        corrupt = []
        digests = list(digest_to_key)
        with self._connect() as conn:
            for start in range(0, len(digests), 500):
                chunk = digests[start:start + 500]
                rows = conn.execute(
                    "SELECT digest, result FROM results WHERE digest IN "
                    f"({','.join('?' * len(chunk))})",
                    chunk,
                ).fetchall()
                hits = []
                for digest, payload in rows:
                    try:
                        out[digest_to_key[digest]] = result_from_dict(
                            json.loads(payload)
                        )
                        hits.append(digest)
                    except (ConfigurationError, json.JSONDecodeError):
                        corrupt.append(digest)
                if hits:
                    # Record the hits so LRU eviction keeps hot points.
                    now = time.time()
                    conn.executemany(
                        "UPDATE results SET last_access = ? WHERE digest = ?",
                        [(now, digest) for digest in hits],
                    )
            if corrupt:
                conn.executemany(
                    "DELETE FROM results WHERE digest = ?",
                    [(d,) for d in corrupt],
                )
        return out

    def put(self, key: Tuple, result: RunResult, spec=None) -> None:
        """Store ``result`` under ``key`` (last writer wins)."""
        spec_json = None
        if spec is not None:
            spec_json = json.dumps(spec.to_dict(), separators=(",", ":"))
        payload = json.dumps(result_to_dict(result), separators=(",", ":"))
        if _sanitizer.is_enabled():
            _audit_codec_roundtrip(payload)
        now = time.time()
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(digest, salt, spec, result, created_at, last_access) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    self._digest(key),
                    self.salt,
                    spec_json,
                    payload,
                    now,
                    now,
                ),
            )

    def put_many(self, items) -> None:
        """Store many ``(key, result, spec_or_None)`` triples at once.

        One connection and one transaction (``executemany``) serve the
        whole batch, amortising sqlite round-trips on thousand-point
        sweeps; semantics per row match :meth:`put` (last writer wins).
        """
        now = time.time()
        sanitize = _sanitizer.is_enabled()
        rows = []
        for key, result, spec in items:
            spec_json = None
            if spec is not None:
                spec_json = json.dumps(spec.to_dict(), separators=(",", ":"))
            payload = json.dumps(
                result_to_dict(result), separators=(",", ":")
            )
            if sanitize:
                _audit_codec_roundtrip(payload)
            rows.append(
                (
                    self._digest(key),
                    self.salt,
                    spec_json,
                    payload,
                    now,
                    now,
                )
            )
        if not rows:
            return
        with self._connect() as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(digest, salt, spec, result, created_at, last_access) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )

    def delete(self, key: Tuple) -> None:
        with self._connect() as conn:
            conn.execute("DELETE FROM results WHERE digest = ?", (self._digest(key),))

    def __contains__(self, key: Tuple) -> bool:
        digest = self._digest(key)
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE digest = ?", (digest,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        """Records visible under this store's salt."""
        with self._connect() as conn:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM results WHERE salt = ?", (self.salt,)
            ).fetchone()
        return count

    def total_records(self) -> int:
        """All records on disk, including ones under stale salts."""
        with self._connect() as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return count

    def stale_records(self) -> int:
        """Records written under other salts (prune candidates)."""
        with self._connect() as conn:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM results WHERE salt != ?", (self.salt,)
            ).fetchone()
        return count

    def size_bytes(self) -> int:
        """On-disk footprint of the database (including WAL sidecars)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total

    def db_bytes(self) -> int:
        """Size of the main database file alone.

        The ``-wal``/``-shm`` sidecars are transient runtime state that
        sqlite recreates at will (and rewrites during VACUUM), so the LRU
        size cap is enforced against this number, not :meth:`size_bytes`.
        """
        return self.path.stat().st_size if self.path.exists() else 0

    def prune_stale(self) -> int:
        """Drop records written under other salts; returns rows removed."""
        with self._connect() as conn:
            removed = conn.execute(
                "DELETE FROM results WHERE salt != ?", (self.salt,)
            ).rowcount
        return removed

    def prune_lru(self, max_bytes: int) -> int:
        """Evict least-recently-accessed records until the store fits.

        Rows are dropped in ascending last-access order (records written
        before access tracking existed fall back to their creation time,
        so the oldest cold data goes first) and the database is VACUUMed
        so the file actually shrinks. Each pass sizes the eviction from
        the row payloads, then re-checks the real file size — sqlite page
        overhead varies — and evicts again if still over, so on return
        the main database file (:meth:`db_bytes`; the transient
        WAL/shared-memory sidecars are excluded) fits ``max_bytes``, or
        the store is empty. Returns the number of rows evicted.

        Raises:
            ConfigurationError: if ``max_bytes`` is negative.
        """
        if max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        evicted = 0
        while self.db_bytes() > max_bytes:
            excess = self.db_bytes() - max_bytes
            victims = []
            with self._connect() as conn:
                rows = conn.execute(
                    "SELECT digest, LENGTH(result) + LENGTH(COALESCE(spec, ''))"
                    "  + LENGTH(digest) + LENGTH(salt) + ? "
                    "FROM results "
                    "ORDER BY COALESCE(last_access, created_at) ASC, "
                    "created_at ASC",
                    (_ROW_OVERHEAD_BYTES,),
                ).fetchall()
                if not rows:
                    break  # empty store: the rest is fixed sqlite overhead
                freed = 0
                for digest, size in rows:
                    if freed >= excess:
                        break
                    victims.append((digest,))
                    freed += size
                conn.executemany("DELETE FROM results WHERE digest = ?", victims)
            evicted += len(victims)
            # VACUUM cannot run inside a transaction; use a bare
            # autocommit connection to return the freed pages to the OS.
            # In WAL mode the vacuum itself writes through the -wal
            # sidecar, so truncate it too or the on-disk footprint this
            # loop measures would *grow* with every pass.
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            try:
                conn.execute("VACUUM")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            finally:
                conn.close()
        return evicted

    def clear(self) -> None:
        """Drop every record (all salts)."""
        with self._connect() as conn:
            conn.execute("DELETE FROM results")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultStore({str(self.path)!r}, salt={self.salt!r})"
