"""Exact, compact serialization of :class:`RunResult` for the result store.

A run's observables must survive a disk round trip bit-for-bit: experiments
compare powers and percentiles for equality across executors, so lossy
*re-encodings* would break the "store hit == fresh simulation" contract.
Exact-mode latency samples are therefore packed as raw IEEE-754 doubles
(``struct``), deflated (``zlib``) and base64-armoured so the whole record
is a single JSON document: ~40 000 samples from a 100 KQPS x 0.4 s point
compress to a few hundred KB.

Sketch-backed results (``sketch_error`` set on the spec) are *already*
bounded-error summaries; the store round-trips the sketch's integer
bucket state exactly (format v3), so a decoded tracker reports the same
percentiles — and merges identically — as the one that was encoded. v2
rows (exact samples only) remain readable.
"""

from __future__ import annotations

import base64
import struct
import zlib
from typing import Any, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.server.metrics import RunResult
from repro.simkit.sketch import DDSketch
from repro.simkit.stats import PercentileTracker

#: Bump when the record layout changes; readers treat other values as a miss.
#: v2: added the events_processed / peak_pending_events perf counters.
#: v3: latency may be a DDSketch state blob instead of raw samples.
#: v4: optional telemetry timeline (null when the run sampled none).
FORMAT_VERSION = 4

#: Formats :func:`result_from_dict` can decode. v2 rows predate the
#: sketch backend and always carry exact samples; v2/v3 rows simply
#: decode with no timeline.
SUPPORTED_VERSIONS = (2, 3, 4)


def encode_samples(samples: Sequence[float]) -> str:
    """Pack floats as little-endian doubles, deflate, base64 (exact)."""
    packed = struct.pack(f"<{len(samples)}d", *samples)
    return base64.b64encode(zlib.compress(packed)).decode("ascii")


def decode_samples(blob: str) -> List[float]:
    """Inverse of :func:`encode_samples`; floats round-trip exactly."""
    packed = zlib.decompress(base64.b64decode(blob.encode("ascii")))
    return list(struct.unpack(f"<{len(packed) // 8}d", packed))


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """JSON-safe dict capturing a :class:`RunResult` exactly.

    Exact-mode latency goes out as a packed sample blob
    (``server_latency_samples``); sketch-mode latency as the sketch's
    integer bucket state (``server_latency_sketch``) — JSON round-trips
    both exactly.
    """
    tracker = result.server_latency
    if tracker.sketch_error is not None:
        latency_fields: Dict[str, object] = {
            "server_latency_sketch": tracker.sketch.to_state(),
        }
    else:
        latency_fields = {
            "server_latency_samples": encode_samples(tracker.samples),
        }
    return {
        "format": FORMAT_VERSION,
        **latency_fields,
        "config_name": result.config_name,
        "workload_name": result.workload_name,
        "qps": result.qps,
        "horizon": result.horizon,
        "cores": result.cores,
        "residency": dict(result.residency),
        "transitions_per_second": dict(result.transitions_per_second),
        "avg_core_power": result.avg_core_power,
        "package_power": result.package_power,
        "completed": result.completed,
        "turbo_grant_rate": result.turbo_grant_rate,
        "network_latency": result.network_latency,
        "snoops_served": result.snoops_served,
        # Cluster runs carry per-node breakdowns; JSON round-trips the
        # floats inside exactly (shortest-repr), preserving bit-identity.
        "node_detail": result.node_detail,
        "hedges_issued": result.hedges_issued,
        "events_processed": result.events_processed,
        "peak_pending_events": result.peak_pending_events,
        # Telemetry timeline (plain JSON floats/lists) or null; JSON
        # round-trips the sampled floats exactly.
        "timeline": result.timeline,
    }


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output.

    Raises:
        ConfigurationError: on a missing/foreign format marker or missing
            fields — callers treat this as a cache miss, not a crash.
    """
    if not isinstance(data, dict) or data.get("format") not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported result record format {data.get('format')!r} "
            f"(expected one of {SUPPORTED_VERSIONS})"
        )
    try:
        sketch_state = data.get("server_latency_sketch")
        if sketch_state is not None:
            tracker = PercentileTracker._from_sketch(
                DDSketch.from_state(sketch_state)
            )
        else:
            tracker = PercentileTracker()
            tracker.add_many(decode_samples(data["server_latency_samples"]))
        return RunResult(
            config_name=data["config_name"],
            workload_name=data["workload_name"],
            qps=data["qps"],
            horizon=data["horizon"],
            cores=data["cores"],
            residency=dict(data["residency"]),
            transitions_per_second=dict(data["transitions_per_second"]),
            avg_core_power=data["avg_core_power"],
            package_power=data["package_power"],
            server_latency=tracker,
            completed=data["completed"],
            turbo_grant_rate=data["turbo_grant_rate"],
            network_latency=data["network_latency"],
            snoops_served=data.get("snoops_served", 0),
            node_detail=data.get("node_detail"),
            hedges_issued=data.get("hedges_issued", 0),
            events_processed=data.get("events_processed", 0),
            peak_pending_events=data.get("peak_pending_events", 0),
            timeline=data.get("timeline"),
        )
    except (KeyError, TypeError, ValueError, struct.error, zlib.error) as exc:
        raise ConfigurationError(f"corrupt result record: {exc}") from exc
