"""Scenario specifications: one frozen, serializable simulation point.

A :class:`ScenarioSpec` captures *everything* that determines a run's
outcome — workload, configuration, rate, core count, horizon, seed,
governor, turbo override and snoop flag — so that two equal specs always
denote the same result. That property backs the shared memo cache
(:mod:`repro.sweep.runner`) and lets specs travel to worker processes as
plain dicts.

:class:`ScenarioGrid` builds sweeps declaratively::

    grid = ScenarioGrid.product(
        workloads=["memcached"],
        configs=["baseline", "AW"],
        qps=[10e3, 100e3, 500e3],
    )
    results = SweepRunner(executor="process", jobs=4).run_grid(grid)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.governor.idle import FixedGovernor, MenuGovernor, ReplayOracleGovernor
from repro.server.config import ServerConfiguration, named_configuration
from repro.server.metrics import RunResult
from repro.workloads import kafka_workload, memcached_workload, mysql_workload
from repro.workloads.base import Workload

#: Default simulation horizon (seconds). Long enough for stable p99 at the
#: lowest Memcached rate (10 KQPS x 0.4 s = 4 000 requests).
DEFAULT_HORIZON = 0.4

#: Default core count: one socket of the Xeon Silver 4114.
DEFAULT_CORES = 10

#: Default seed: every experiment is reproducible bit-for-bit.
DEFAULT_SEED = 42

#: Workload factories by name. Factories return *fresh* instances so each
#: run gets independent RNG streams. Extend via :func:`register_workload`.
WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "memcached": memcached_workload,
    "kafka": kafka_workload,
    "mysql": mysql_workload,
}

#: Governor factories by name. Extend via :func:`register_governor`.
#: Note: worker processes only see factories registered at import time of
#: this module (or of modules they import), not ad-hoc ``__main__`` ones.
GOVERNOR_FACTORIES: Dict[str, Callable[[], object]] = {
    "menu": MenuGovernor,
    "c1_only": lambda: FixedGovernor("C1"),
    "oracle": ReplayOracleGovernor,
}

#: Factories guaranteed to exist in *worker* processes: anything
#: registered (or overridden) after import via
#: register_workload/register_governor lives only in the registering
#: process unless workers are forked from it. The process executor checks
#: specs against these snapshots — by name *and* factory identity, so
#: overriding a built-in name is caught too — before submitting when the
#: multiprocessing start method does not inherit parent memory.
IMPORT_TIME_WORKLOAD_FACTORIES = dict(WORKLOAD_FACTORIES)
IMPORT_TIME_GOVERNOR_FACTORIES = dict(GOVERNOR_FACTORIES)
IMPORT_TIME_WORKLOADS = frozenset(IMPORT_TIME_WORKLOAD_FACTORIES)
IMPORT_TIME_GOVERNORS = frozenset(IMPORT_TIME_GOVERNOR_FACTORIES)


def register_workload(name: str, factory: Callable[[], Workload]) -> None:
    """Register a workload factory under ``name`` for use in specs."""
    WORKLOAD_FACTORIES[name] = factory


def register_governor(name: str, factory: Callable[[], object]) -> None:
    """Register an idle-governor factory under ``name`` for use in specs."""
    GOVERNOR_FACTORIES[name] = factory


#: Canonical cache-key type: a flat tuple of hashable scalars.
CacheKey = Tuple


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-parameterised simulation point.

    Attributes:
        workload: workload name (see :data:`WORKLOAD_FACTORIES`).
        config: named server configuration (see
            :func:`repro.server.config.named_configuration`).
        qps: offered aggregate request rate (queries per second).
        cores: core count.
        horizon: simulated seconds.
        seed: RNG seed; equal seeds give bit-identical results.
        governor: idle-governor name (see :data:`GOVERNOR_FACTORIES`).
        turbo: ``None`` keeps the configuration's turbo setting; True/False
            overrides it.
        snoops: whether background snoop traffic is simulated.
    """

    workload: str
    config: str
    qps: float
    cores: int = DEFAULT_CORES
    horizon: float = DEFAULT_HORIZON
    seed: int = DEFAULT_SEED
    governor: str = "menu"
    turbo: Optional[bool] = None
    snoops: bool = True

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_FACTORIES:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOAD_FACTORIES)}"
            )
        if self.governor not in GOVERNOR_FACTORIES:
            raise ConfigurationError(
                f"unknown governor {self.governor!r}; "
                f"choose from {sorted(GOVERNOR_FACTORIES)}"
            )
        if self.qps <= 0:
            raise ConfigurationError(f"qps must be positive, got {self.qps}")
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")
        # Canonicalise numeric types so 100000 and 100000.0 produce the
        # same frozen spec (and therefore the same cache key).
        object.__setattr__(self, "qps", float(self.qps))
        object.__setattr__(self, "horizon", float(self.horizon))
        object.__setattr__(self, "cores", int(self.cores))
        object.__setattr__(self, "seed", int(self.seed))

    # -- identity ----------------------------------------------------------
    @property
    def cache_key(self) -> CacheKey:
        """Canonical, hashable identity: equal keys mean equal results."""
        return (
            self.workload, self.config, self.qps, self.cores, self.horizon,
            self.seed, self.governor, self.turbo, self.snoops,
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on missing or unknown keys.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"incomplete ScenarioSpec dict: {exc}") from exc

    def with_(self, **overrides) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    # -- materialisation ---------------------------------------------------
    def build_workload(self) -> Workload:
        """Fresh workload instance (fresh RNG streams)."""
        return WORKLOAD_FACTORIES[self.workload]()

    def build_configuration(self) -> ServerConfiguration:
        """The named configuration, with the turbo override applied."""
        configuration = named_configuration(self.config)
        if self.turbo is not None and self.turbo != configuration.turbo_enabled:
            configuration = replace(configuration, turbo_enabled=self.turbo)
        return configuration

    def governor_factory(self) -> Callable[[], object]:
        return GOVERNOR_FACTORIES[self.governor]

    def execute(self) -> RunResult:
        """Run this scenario to completion (uncached; see SweepRunner)."""
        from repro.server.node import ServerNode

        node = ServerNode(
            workload=self.build_workload(),
            configuration=self.build_configuration(),
            qps=self.qps,
            cores=self.cores,
            horizon=self.horizon,
            seed=self.seed,
            snoops_enabled=self.snoops,
            governor_factory=self.governor_factory(),
        )
        return node.run()


class ScenarioGrid:
    """An ordered collection of :class:`ScenarioSpec` points.

    Deterministic order matters: runners return results positionally and
    memo caches warm in a predictable sequence.
    """

    def __init__(self, specs: Sequence[ScenarioSpec]):
        self._specs: Tuple[ScenarioSpec, ...] = tuple(specs)

    # -- builders ----------------------------------------------------------
    @classmethod
    def product(
        cls,
        workloads: Sequence[str] = ("memcached",),
        configs: Sequence[str] = ("baseline",),
        qps: Sequence[float] = (),
        cores: Sequence[int] = (DEFAULT_CORES,),
        horizons: Sequence[float] = (DEFAULT_HORIZON,),
        seeds: Sequence[int] = (DEFAULT_SEED,),
        governors: Sequence[str] = ("menu",),
        turbo: Optional[bool] = None,
        snoops: bool = True,
    ) -> "ScenarioGrid":
        """Cartesian product over the given axes.

        Iteration order is the nesting order of the arguments (workload
        outermost, governor innermost), matching how the paper's figures
        sweep rate within configuration within workload.

        Raises:
            ConfigurationError: if ``qps`` is empty.
        """
        if not qps:
            raise ConfigurationError("ScenarioGrid.product needs at least one qps")
        specs = [
            ScenarioSpec(
                workload=w, config=c, qps=q, cores=n, horizon=h, seed=s,
                governor=g, turbo=turbo, snoops=snoops,
            )
            for w in workloads
            for c in configs
            for q in qps
            for n in cores
            for h in horizons
            for s in seeds
            for g in governors
        ]
        return cls(specs)

    @classmethod
    def from_dicts(cls, dicts: Sequence[Dict[str, object]]) -> "ScenarioGrid":
        return cls([ScenarioSpec.from_dict(d) for d in dicts])

    def to_dicts(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self._specs]

    # -- collection protocol ----------------------------------------------
    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __getitem__(self, index):
        return self._specs[index]

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        return ScenarioGrid(self._specs + tuple(other))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScenarioGrid({len(self._specs)} specs)"
